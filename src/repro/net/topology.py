"""Deterministic, seeded P2P graph builders — the topology suite.

The paper's stabilization story is reproduced on small uniform random
meshes (``Network.bootstrap_mesh``), but measurement work shows the real
Ethereum P2P graph is nothing like that: heavy degree skew (Gencer et
al., *Decentralization in Bitcoin and Ethereum Networks*) and strong
geographic clustering, with topology recoverable from marked
transactions (*DEthna*).  This module makes topology a first-class,
serializable scenario axis:

* :class:`TopologySpec` — a frozen, JSON-able description (kind +
  parameters + seed) with a ``to_dict``/``from_dict`` contract, so a
  topology can ride inside a job spec and participate in
  content-addressed caching.
* :func:`build_topology` — deterministic builders for five families:
  ``uniform`` (G(n, m) parity with the random mesh), ``powerlaw``
  (configuration model with a discrete power-law degree sequence,
  exponent calibrated to the measurement papers' 2–2.5 range), ``geo``
  (region placement + intra-region edge bias, regions matching
  :class:`~repro.net.latency.GeographicLatency`), ``ring`` (k-regular
  lattice) and ``smallworld`` (Watts–Strogatz rewiring of the ring).
* :class:`BuiltTopology` — the realized graph: sorted edge list, region
  assignment, degree statistics, and a canonical-JSON SHA-256 digest.

Every builder is a pure function of the spec: same spec ⇒ byte-identical
edges, regions, and digest, in-process or in a spawned worker.  All
builders guarantee a connected graph (components are stitched with
seeded bridge edges), so reachability metrics measure the protocol, not
builder luck.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "TOPOLOGY_KINDS",
    "TopologySpec",
    "BuiltTopology",
    "build_topology",
    "default_names",
]

#: The graph families :func:`build_topology` understands.
TOPOLOGY_KINDS: Tuple[str, ...] = (
    "uniform",
    "powerlaw",
    "geo",
    "ring",
    "smallworld",
)

#: Default region mix for ``geo`` specs — the three-continent layout of
#: :class:`~repro.net.latency.GeographicLatency.DEFAULT_BASE`, weighted
#: roughly like the measured node distribution (NA/EU-heavy, AS tail).
DEFAULT_REGIONS: Tuple[str, ...] = ("na", "eu", "as")
DEFAULT_REGION_WEIGHTS: Tuple[float, ...] = (0.4, 0.35, 0.25)


def _canonical_digest(payload: object) -> str:
    data = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def default_names(num_nodes: int) -> Tuple[str, ...]:
    """Node names matching the scenarios' ``n000`` convention.

    Zero-padded so lexicographic order equals index order at any size.
    """
    width = max(3, len(str(max(num_nodes - 1, 0))))
    return tuple(f"n{index:0{width}d}" for index in range(num_nodes))


@dataclass(frozen=True)
class TopologySpec:
    """A serializable description of a graph to build.

    ``target_degree`` is the mean degree for ``uniform``/``geo``, the
    lattice degree for ``ring``/``smallworld``, and sets the minimum
    degree (``target_degree // 2``, floor 2) of the power-law sequence.
    """

    kind: str
    num_nodes: int
    target_degree: int = 8
    seed: int = 0
    #: Power-law exponent (``powerlaw`` only); measurements put the real
    #: network in the 2–2.5 range.
    gamma: float = 2.2
    #: Degree cap for the power-law sequence; ``0`` means "auto"
    #: (half the population, at least the minimum degree + 1).
    max_degree: int = 0
    #: Region labels assigned by ``geo`` placement.
    regions: Tuple[str, ...] = DEFAULT_REGIONS
    #: Placement weights, parallel to ``regions`` (``geo`` only).
    region_weights: Tuple[float, ...] = DEFAULT_REGION_WEIGHTS
    #: Probability a ``geo`` edge endpoint is drawn from the same region.
    intra_bias: float = 0.7
    #: Watts–Strogatz rewiring probability (``smallworld`` only).
    rewire_p: float = 0.1

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGY_KINDS:
            raise ValueError(
                f"unknown topology kind {self.kind!r}; "
                f"expected one of {TOPOLOGY_KINDS}"
            )
        if self.num_nodes < 2:
            raise ValueError("num_nodes must be at least 2")
        if not 1 <= self.target_degree < self.num_nodes:
            raise ValueError(
                "target_degree must satisfy 1 <= degree < num_nodes"
            )
        if self.gamma <= 1.0:
            raise ValueError("gamma must exceed 1 for a normalizable tail")
        if self.max_degree < 0:
            raise ValueError("max_degree must be >= 0 (0 means auto)")
        if not self.regions:
            raise ValueError("regions must be non-empty")
        if len(self.region_weights) != len(self.regions):
            raise ValueError("region_weights must parallel regions")
        if any(weight <= 0 for weight in self.region_weights):
            raise ValueError("region weights must be positive")
        if not 0.0 <= self.intra_bias <= 1.0:
            raise ValueError("intra_bias must lie in [0, 1]")
        if not 0.0 <= self.rewire_p <= 1.0:
            raise ValueError("rewire_p must lie in [0, 1]")
        # Normalize sequence fields so equal specs hash/compare equal
        # regardless of list-vs-tuple input.
        object.__setattr__(self, "regions", tuple(self.regions))
        object.__setattr__(
            self, "region_weights", tuple(float(w) for w in self.region_weights)
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "num_nodes": self.num_nodes,
            "target_degree": self.target_degree,
            "seed": self.seed,
            "gamma": self.gamma,
            "max_degree": self.max_degree,
            "regions": list(self.regions),
            "region_weights": list(self.region_weights),
            "intra_bias": self.intra_bias,
            "rewire_p": self.rewire_p,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TopologySpec":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown TopologySpec fields: {sorted(unknown)}")
        kwargs = dict(payload)
        for key in ("regions", "region_weights"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]

    def digest(self) -> str:
        return _canonical_digest(self.to_dict())


@dataclass(frozen=True)
class BuiltTopology:
    """A realized graph: names, sorted undirected edges, regions."""

    spec: TopologySpec
    names: Tuple[str, ...]
    #: Sorted tuples ``(a, b)`` with ``a < b`` — one entry per link.
    edges: Tuple[Tuple[str, str], ...]
    #: Region per node (``geo`` family), else empty.
    regions: Dict[str, str] = field(default_factory=dict)

    def neighbors(self) -> Dict[str, List[str]]:
        """Adjacency lists, names in sorted order."""
        adjacency: Dict[str, List[str]] = {name: [] for name in self.names}
        for a, b in self.edges:
            adjacency[a].append(b)
            adjacency[b].append(a)
        for peers in adjacency.values():
            peers.sort()
        return adjacency

    def degrees(self) -> Dict[str, int]:
        counts: Dict[str, int] = {name: 0 for name in self.names}
        for a, b in self.edges:
            counts[a] += 1
            counts[b] += 1
        return counts

    def degree_stats(self) -> Dict[str, float]:
        """Mean/min/max degree plus a Gini coefficient for skew."""
        degrees = sorted(self.degrees().values())
        n = len(degrees)
        total = sum(degrees)
        if n == 0 or total == 0:
            return {
                "nodes": float(n),
                "edges": float(len(self.edges)),
                "degree_mean": 0.0,
                "degree_min": 0.0,
                "degree_max": 0.0,
                "degree_gini": 0.0,
            }
        weighted = sum(rank * degree for rank, degree in enumerate(degrees, 1))
        gini = (2.0 * weighted) / (n * total) - (n + 1.0) / n
        return {
            "nodes": float(n),
            "edges": float(len(self.edges)),
            "degree_mean": total / n,
            "degree_min": float(degrees[0]),
            "degree_max": float(degrees[-1]),
            "degree_gini": gini,
        }

    def is_connected(self) -> bool:
        if not self.names:
            return True
        adjacency = self.neighbors()
        seen = {self.names[0]}
        frontier = [self.names[0]]
        while frontier:
            current = frontier.pop()
            for peer in adjacency[current]:
                if peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
        return len(seen) == len(self.names)

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec.to_dict(),
            "names": list(self.names),
            "edges": [[a, b] for a, b in self.edges],
            "regions": dict(sorted(self.regions.items())),
        }

    def digest(self) -> str:
        return _canonical_digest(self.to_dict())


# -- builders (index space: 0..n-1, converted to names at the end) -----------


def _pick_other(members: Sequence[int], avoid: int, rng: random.Random) -> int:
    """A uniform member of ``members`` other than ``avoid``, in one draw."""
    index = rng.randrange(len(members) - 1)
    choice = members[index]
    return choice if choice != avoid else members[-1]


def _connect_components(
    n: int, edges: List[Tuple[int, int]], rng: random.Random
) -> None:
    """Stitch disconnected components with seeded bridge edges."""
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in edges:
        parent[find(a)] = find(b)
    components: Dict[int, List[int]] = {}
    for index in range(n):
        components.setdefault(find(index), []).append(index)
    if len(components) <= 1:
        return
    # Deterministic order: components sorted by smallest member; each is
    # bridged into the first with one seeded edge per component.
    ordered = sorted(components.values(), key=lambda members: members[0])
    anchor = ordered[0]
    for members in ordered[1:]:
        a = anchor[rng.randrange(len(anchor))]
        b = members[rng.randrange(len(members))]
        edges.append((min(a, b), max(a, b)))
        anchor.extend(members)


def _build_uniform(spec: TopologySpec, rng: random.Random) -> List[Tuple[int, int]]:
    """G(n, m) with m = n * degree / 2 — parity with the random mesh."""
    n = spec.num_nodes
    target_edges = min(round(n * spec.target_degree / 2), n * (n - 1) // 2)
    edge_set = set()
    attempts = 0
    limit = 50 * max(target_edges, 1)
    while len(edge_set) < target_edges and attempts < limit:
        attempts += 1
        a = rng.randrange(n)
        b = _pick_other(range(n), a, rng)
        edge_set.add((min(a, b), max(a, b)))
    edges = sorted(edge_set)
    _connect_components(n, edges, rng)
    return edges


def _powerlaw_degrees(spec: TopologySpec, rng: random.Random) -> List[int]:
    n = spec.num_nodes
    k_min = max(2, spec.target_degree // 2)
    k_min = min(k_min, n - 1)
    if spec.max_degree:
        k_max = min(spec.max_degree, n - 1)
    else:
        k_max = min(n - 1, max(k_min + 1, n // 2))
    k_max = max(k_max, k_min)
    support = list(range(k_min, k_max + 1))
    weights = [k ** (-spec.gamma) for k in support]
    total = sum(weights)
    cumulative: List[float] = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)
    cumulative[-1] = 1.0
    degrees: List[int] = []
    for _ in range(n):
        u = rng.random()
        for k, bound in zip(support, cumulative):
            if u <= bound:
                degrees.append(k)
                break
    if sum(degrees) % 2:
        # Parity fix: bump the first node below the cap.
        for index in range(n):
            if degrees[index] < n - 1:
                degrees[index] += 1
                break
    return degrees


def _build_powerlaw(spec: TopologySpec, rng: random.Random) -> List[Tuple[int, int]]:
    """Configuration model over a discrete power-law degree sequence.

    Self-loops and multi-edges from the stub matching are dropped, which
    trims hub degrees slightly — the standard simple-graph projection.
    """
    degrees = _powerlaw_degrees(spec, rng)
    stubs: List[int] = []
    for index, degree in enumerate(degrees):
        stubs.extend([index] * degree)
    rng.shuffle(stubs)
    edge_set = set()
    for position in range(0, len(stubs) - 1, 2):
        a, b = stubs[position], stubs[position + 1]
        if a != b:
            edge_set.add((min(a, b), max(a, b)))
    edges = sorted(edge_set)
    _connect_components(spec.num_nodes, edges, rng)
    return edges


def _assign_regions(spec: TopologySpec, rng: random.Random) -> List[str]:
    total = sum(spec.region_weights)
    cumulative: List[float] = []
    acc = 0.0
    for weight in spec.region_weights:
        acc += weight / total
        cumulative.append(acc)
    cumulative[-1] = 1.0
    assignment: List[str] = []
    for _ in range(spec.num_nodes):
        u = rng.random()
        for region, bound in zip(spec.regions, cumulative):
            if u <= bound:
                assignment.append(region)
                break
    return assignment


def _build_geo(
    spec: TopologySpec, rng: random.Random
) -> Tuple[List[Tuple[int, int]], List[str]]:
    """Geo-clustered placement: intra-region edges preferred."""
    n = spec.num_nodes
    assignment = _assign_regions(spec, rng)
    members: Dict[str, List[int]] = {}
    for index, region in enumerate(assignment):
        members.setdefault(region, []).append(index)
    target_edges = min(round(n * spec.target_degree / 2), n * (n - 1) // 2)
    edge_set = set()
    everyone = list(range(n))
    attempts = 0
    limit = 50 * max(target_edges, 1)
    while len(edge_set) < target_edges and attempts < limit:
        attempts += 1
        a = rng.randrange(n)
        local = members[assignment[a]]
        if len(local) > 1 and rng.random() < spec.intra_bias:
            b = _pick_other(local, a, rng)
        else:
            b = _pick_other(everyone, a, rng)
        edge_set.add((min(a, b), max(a, b)))
    edges = sorted(edge_set)
    _connect_components(n, edges, rng)
    return edges, assignment


def _ring_lattice(n: int, degree: int) -> List[Tuple[int, int]]:
    half = max(1, degree // 2)
    edge_set = set()
    for index in range(n):
        for offset in range(1, half + 1):
            other = (index + offset) % n
            if other != index:
                edge_set.add((min(index, other), max(index, other)))
    return sorted(edge_set)


def _build_smallworld(
    spec: TopologySpec, rng: random.Random
) -> List[Tuple[int, int]]:
    """Watts–Strogatz: ring lattice + seeded rewiring."""
    n = spec.num_nodes
    edges = _ring_lattice(n, spec.target_degree)
    edge_set = set(edges)
    everyone = list(range(n))
    for a, b in edges:
        if rng.random() >= spec.rewire_p:
            continue
        candidate = _pick_other(everyone, a, rng)
        new_edge = (min(a, candidate), max(a, candidate))
        if candidate == b or new_edge in edge_set:
            continue
        edge_set.discard((a, b))
        edge_set.add(new_edge)
    result = sorted(edge_set)
    _connect_components(n, result, rng)
    return result


def build_topology(
    spec: TopologySpec, names: Optional[Sequence[str]] = None
) -> BuiltTopology:
    """Build the graph a spec describes — pure function of the spec.

    ``names`` defaults to the scenarios' ``n000`` convention; when given
    it must contain exactly ``spec.num_nodes`` unique names.
    """
    if names is None:
        names = default_names(spec.num_nodes)
    names = tuple(names)
    if len(names) != spec.num_nodes:
        raise ValueError(
            f"expected {spec.num_nodes} names, got {len(names)}"
        )
    if len(set(names)) != len(names):
        raise ValueError("topology names must be unique")
    rng = random.Random(spec.seed ^ 0x7090106F)  # decouple from scenario RNGs
    regions: Dict[str, str] = {}
    if spec.kind == "uniform":
        index_edges = _build_uniform(spec, rng)
    elif spec.kind == "powerlaw":
        index_edges = _build_powerlaw(spec, rng)
    elif spec.kind == "geo":
        index_edges, assignment = _build_geo(spec, rng)
        regions = {names[index]: region for index, region in enumerate(assignment)}
    elif spec.kind == "ring":
        index_edges = _ring_lattice(spec.num_nodes, spec.target_degree)
    elif spec.kind == "smallworld":
        index_edges = _build_smallworld(spec, rng)
    else:  # pragma: no cover — __post_init__ already validates
        raise ValueError(f"unknown topology kind {spec.kind!r}")
    edges = tuple(
        sorted(
            (min(names[a], names[b]), max(names[a], names[b]))
            for a, b in index_edges
        )
    )
    return BuiltTopology(spec=spec, names=names, edges=edges, regions=regions)
