"""A calendar-queue event scheduler, trajectory-identical to the heap.

:class:`BucketSimulator` replaces the binary heap of
:class:`~repro.net.simulator.Simulator` with a calendar queue: events
hash into fixed-width time buckets (``index = int(time / width)``), a
small min-heap orders only the *bucket indices*, and the earliest bucket
is drained as a sorted list with a position pointer.  At
partition-scenario event rates many events share a bucket, so the
per-event cost is an append plus an amortized O(b log b) sort at bucket
load — cheaper than maintaining heap discipline across the whole queue
on every push and pop.  In sparse tails each event lands in its own
bucket and the engine degrades gracefully to exactly one small-heap push
and pop per event, i.e. the ``heapq`` discipline it replaced.

Ordering is identical to the heap engine — global ``(time, seq)`` order
with FIFO ties — by three invariants:

1. While a bucket is draining, every other bucket on the index heap has
   a strictly larger index (so strictly later times).  Schedules into
   the draining bucket insert via :func:`bisect.insort` bounded below by
   the drain position; a new entry's time is ``>= now`` and every entry
   behind the pointer fired at (or was cancelled before) a time
   ``<= now``, so the insertion point never falls in the consumed
   prefix.
2. A callback can never schedule into an *earlier* bucket than the one
   draining, because delays are non-negative and ``now`` lies inside
   the draining bucket.  Scheduling into an earlier bucket is only
   possible *between* runs, after a horizon pause parked ``now`` before
   the loaded bucket's span — that case unloads the remainder back onto
   the calendar before filing the new entry, restoring invariant 1.
3. Within a bucket, entries sort by the same ``(time, seq)`` tuples the
   heap used, so simultaneous events keep schedule-order FIFO.

Opt in via the class switch
:attr:`~repro.net.simulator.Simulator.use_bucket_queue` (the same
pattern as :attr:`repro.net.network.Network.use_fast_path`) or
construct :class:`BucketSimulator` directly, e.g. through the
scenarios' ``simulator_factory`` seam.
"""

from __future__ import annotations

from bisect import insort
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from .simulator import (
    EventHandle,
    SimulationError,
    Simulator,
    _callback_label,
    _heappop,
    _heappush,
    _INF,
    _new_handle,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import Observability

__all__ = ["BucketSimulator"]

#: Entries are the same ``(time, seq, handle)`` tuples the heap engine
#: uses, so bucket sorting reproduces heap order exactly.
_Entry = Tuple[float, int, EventHandle]


class BucketSimulator(Simulator):
    """Calendar-queue drop-in for :class:`~repro.net.simulator.Simulator`.

    ``bucket_width`` is in simulated seconds.  The default (0.25 s) puts
    a few dozen events per bucket at 40-node partition-scenario rates;
    the optimum is flat — anything within an order of magnitude of the
    mean event spacing times ~10 works, because per-event costs are an
    append/insort on one side and an amortized sort on the other.
    """

    __slots__ = (
        "_width",
        "_buckets",
        "_bucket_heap",
        "_cur",
        "_cur_pos",
        "_cur_index",
    )

    def __init__(
        self,
        start_time: float = 0.0,
        obs: Optional["Observability"] = None,
        bucket_width: float = 0.25,
    ) -> None:
        if not 0.0 < bucket_width < _INF:
            raise SimulationError(
                f"bucket_width must be finite and positive, got {bucket_width!r}"
            )
        if not 0.0 <= start_time < _INF:
            # Bucket indices are non-negative (int() truncates toward
            # zero, which would fold negative times into the "no bucket
            # loaded" sentinel); the scenarios all start at t=0.
            raise SimulationError(
                f"BucketSimulator start_time must be >= 0, got {start_time!r}"
            )
        super().__init__(start_time, obs)
        self._width = bucket_width
        # Future buckets: index -> unsorted entry list.  The index heap
        # holds each index exactly once (pushed when its bucket is
        # created, popped when it is loaded for draining).
        self._buckets: Dict[int, List[_Entry]] = {}
        self._bucket_heap: List[int] = []
        # The draining bucket: sorted entries with a consumption pointer.
        # ``_cur_index = -1`` marks "no bucket loaded" (real indices are
        # non-negative because event times are).
        self._cur: List[_Entry] = []
        self._cur_pos = 0
        self._cur_index = -1

    def schedule(
        self, delay: float, callback: Callable, *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` simulated seconds.

        Validation is identical to the heap engine's (one chained
        comparison rejecting negative, NaN, and +inf), so the
        differential tests can feed both engines the same poison.
        """
        if not 0.0 <= delay < _INF:
            if delay != delay or delay == _INF:
                raise SimulationError(
                    f"event delay must be finite, got {delay!r}"
                )
            raise SimulationError(f"cannot schedule into the past ({delay})")
        seq = next(self._sequence)
        handle = _new_handle(EventHandle)
        handle.time = time = self.now + delay
        handle.callback = callback
        handle.args = args
        handle.cancelled = False
        handle.seq = seq
        entry = (time, seq, handle)
        index = int(time / self._width)
        cur_index = self._cur_index
        if index == cur_index:
            # Into the draining bucket: keep it sorted.  Bounding the
            # search at the drain position is safe (the entry's time is
            # >= now >= every consumed entry's time) and keeps the
            # insort cost proportional to the *unconsumed* suffix.
            insort(self._cur, entry, self._cur_pos)
        else:
            if index < cur_index:
                # Only reachable between runs: a horizon pause left a
                # loaded bucket whose span lies beyond ``now``, and this
                # entry lands before it.  Put the remainder back on the
                # calendar so the index heap regains the global minimum.
                self._unload_current()
            buckets = self._buckets
            bucket = buckets.get(index)
            if bucket is None:
                buckets[index] = [entry]
                _heappush(self._bucket_heap, index)
            else:
                bucket.append(entry)
        if self.obs is not None:
            if self._ctr_scheduled is not None:
                self._ctr_scheduled.inc()
            if self._tracer is not None:
                self._tracer.emit(
                    self.now,
                    "event.scheduled",
                    at=time,
                    fn=_callback_label(callback),
                    seq=seq,
                )
        return handle

    def _unload_current(self) -> None:
        """Return the draining bucket's unconsumed suffix to the calendar."""
        rest = self._cur[self._cur_pos :]
        if rest:
            index = self._cur_index
            # The index was popped off the heap at load time and
            # schedules route equal indices into ``_cur``, so re-adding
            # cannot duplicate it.
            self._buckets[index] = rest
            _heappush(self._bucket_heap, index)
        self._cur = []
        self._cur_pos = 0
        self._cur_index = -1

    def _load_next_bucket(self) -> bool:
        """Promote the earliest future bucket to draining; False if none."""
        heap = self._bucket_heap
        if not heap:
            return False
        index = _heappop(heap)
        bucket = self._buckets.pop(index)
        # Tuples compare by (time, seq); seq is unique so the handle is
        # never compared.  Timsort on a mostly-appended list is cheap.
        bucket.sort()
        self._cur = bucket
        self._cur_pos = 0
        self._cur_index = index
        return True

    @property
    def pending(self) -> int:
        """Events still queued (including cancelled ones not yet drained)."""
        n = len(self._cur) - self._cur_pos
        for bucket in self._buckets.values():
            n += len(bucket)
        return n

    def step(self) -> bool:
        """Process the next event; returns False when the queue is empty."""
        obs = self.obs
        while True:
            cur = self._cur
            pos = self._cur_pos
            if pos >= len(cur):
                if not self._load_next_bucket():
                    return False
                continue
            self._cur_pos = pos + 1
            entry = cur[pos]
            handle = entry[2]
            if handle.cancelled:
                if obs is not None:
                    self._note_cancelled(handle)
                continue
            self.now = entry[0]
            self.events_processed += 1
            if obs is not None:
                self._note_fired(handle)
            args = handle.args
            if args:
                handle.callback(*args)
            else:
                handle.callback()
            return True

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Advance the clock to ``end_time``; returns events processed.

        Same contract as the heap engine: events at exactly ``end_time``
        run, ``max_events`` raises without consuming the offending
        entry, and a horizon pause leaves the queue resumable.
        """
        if self.obs is not None:
            return self._run_until_observed(end_time, max_events)
        processed = 0
        try:
            cur = self._cur
            pos = self._cur_pos
            n = len(cur)
            while True:
                if pos >= n:
                    if not self._load_next_bucket():
                        self._cur_pos = pos if cur is self._cur else 0
                        break
                    cur = self._cur
                    pos = 0
                    n = len(cur)
                    continue
                entry = cur[pos]
                time = entry[0]
                if time > end_time:
                    self._cur_pos = pos
                    break
                handle = entry[2]
                if handle.cancelled:
                    pos += 1
                    continue
                if max_events is not None and processed >= max_events:
                    self._cur_pos = pos
                    raise SimulationError(
                        f"exceeded {max_events} events before t={end_time}"
                    )
                # Persist the pointer before dispatch: the callback may
                # insort into this bucket, and the lower bound must
                # exclude everything consumed so far.
                pos += 1
                self._cur_pos = pos
                self.now = time
                args = handle.args
                if args:
                    handle.callback(*args)
                else:
                    handle.callback()
                processed += 1
                # The callback may have inserted into the draining
                # bucket (changing its length) or advanced the pointer
                # via a nested run: re-read all three locals.
                cur = self._cur
                pos = self._cur_pos
                n = len(cur)
        finally:
            self.events_processed += processed
        if self.now < end_time:
            self.now = end_time
        return processed

    def _run_until_observed(
        self, end_time: float, max_events: Optional[int] = None
    ) -> int:
        """The observability-instrumented loop, bucket edition.

        Fires and accounts events in exactly the order of the heap
        engine's observed loop, so obs trace digests match across
        engines (the differential tests assert this).
        """
        processed = 0
        while True:
            cur = self._cur
            pos = self._cur_pos
            if pos >= len(cur):
                if not self._load_next_bucket():
                    break
                continue
            entry = cur[pos]
            time = entry[0]
            if time > end_time:
                break
            handle = entry[2]
            if handle.cancelled:
                self._cur_pos = pos + 1
                if self.obs is not None:
                    self._note_cancelled(handle)
                continue
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"exceeded {max_events} events before t={end_time}"
                )
            self._cur_pos = pos + 1
            self.now = time
            self.events_processed += 1
            if self.obs is not None:
                self._note_fired(handle)
            handle.callback(*handle.args)
            processed += 1
        self.now = max(self.now, end_time)
        return processed

    def _has_live_pending(self) -> bool:
        cur = self._cur
        for i in range(self._cur_pos, len(cur)):
            if not cur[i][2].cancelled:
                return True
        for bucket in self._buckets.values():
            for entry in bucket:
                if not entry[2].cancelled:
                    return True
        return False

    def run_all(self, max_events: int = 10_000_000) -> int:
        """Drain the queue completely (bounded by ``max_events``).

        Mirrors the heap engine: one integer comparison per event, a
        single live-event scan only when the budget is actually reached,
        and a final drain of any trailing cancelled entries (with obs
        cancellation accounting) before returning.
        """
        processed = 0
        step = self.step
        while True:
            if processed >= max_events:
                if self._has_live_pending():
                    raise SimulationError(f"exceeded {max_events} events")
                step()
                break
            if not step():
                break
            processed += 1
        return processed
