"""A discrete-event simulation engine.

The message-level experiments (node-count collapse at the fork, gossip
propagation, transient-fork races) run on this engine: every network
message, mining event, and node decision is a scheduled callback on one
shared virtual clock.  Virtual time is in seconds; nothing here sleeps.

The engine is deliberately minimal — a monotonic clock, a binary-heap event
queue with stable FIFO ordering for simultaneous events, and cancellable
handles — because determinism is the property the experiments lean on:
a seeded scenario replays identically down to the block hashes.

Observability (:mod:`repro.obs`) is opt-in: construct with ``obs=`` to
record ``event.scheduled`` / ``event.fired`` / ``event.cancelled`` trace
events and ``sim.events.*`` counters.  With ``obs=None`` (the default)
the hot loop pays a single attribute test per event — trajectories are
identical either way because nothing here touches RNG state.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import Observability

__all__ = ["Simulator", "EventHandle", "SimulationError"]

_INF = float("inf")


def _callback_label(callback: Callable) -> str:
    """A stable, JSON-safe name for a scheduled callable."""
    name = getattr(callback, "__qualname__", None)
    if name is None:  # pragma: no cover - exotic callables
        name = type(callback).__name__
    return name


class SimulationError(Exception):
    pass


class EventHandle:
    """A scheduled event; ``cancel()`` prevents a pending callback.

    ``seq`` is the queue's FIFO tiebreaker and doubles as the event's
    identity in trace streams (``event.scheduled`` / ``event.fired`` /
    ``event.cancelled`` for one handle share one ``seq``).
    """

    __slots__ = ("time", "callback", "args", "cancelled", "seq")

    def __init__(
        self, time: float, callback: Callable, args: tuple, seq: int = -1
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.seq = seq

    def cancel(self) -> None:
        self.cancelled = True


_heappush = heapq.heappush
_heappop = heapq.heappop
_new_handle = EventHandle.__new__


class Simulator:
    """The virtual clock and event queue.

    The queue is a binary heap by default.  Setting the class switch
    :attr:`use_bucket_queue` makes ``Simulator(...)`` construct a
    :class:`~repro.net.bucketqueue.BucketSimulator` instead — a
    calendar-queue engine that amortizes heap discipline over time
    buckets (see :mod:`repro.net.bucketqueue`).  Both engines fire
    events in identical ``(time, seq)`` order; the switch follows the
    same opt-in pattern as :attr:`repro.net.network.Network.use_fast_path`.
    """

    #: Class-level switch: when True, ``Simulator(...)`` builds a
    #: :class:`~repro.net.bucketqueue.BucketSimulator`.  Subclasses are
    #: never redirected (the benchmark's ReferenceSimulator stays put).
    use_bucket_queue = False

    def __new__(cls, *args, **kwargs):
        if cls is Simulator and cls.use_bucket_queue:
            from .bucketqueue import BucketSimulator

            return object.__new__(BucketSimulator)
        return object.__new__(cls)

    # ``self.now`` is written once per event and the queue/sequence are
    # read on every ``schedule``: slot storage keeps those accesses off
    # the instance dict.
    __slots__ = (
        "now",
        "_queue",
        "_sequence",
        "events_processed",
        "obs",
        "_tracer",
        "_ctr_scheduled",
        "_ctr_fired",
        "_ctr_cancelled",
        "__weakref__",
    )

    def __init__(
        self,
        start_time: float = 0.0,
        obs: Optional["Observability"] = None,
    ) -> None:
        self.now = start_time
        self._queue: List[Tuple[float, int, EventHandle]] = []
        self._sequence = itertools.count()
        self.events_processed = 0
        self.obs = obs
        self._tracer = obs.tracer if obs is not None else None
        if obs is not None and obs.metrics is not None:
            self._ctr_scheduled = obs.metrics.counter("sim.events.scheduled")
            self._ctr_fired = obs.metrics.counter("sim.events.fired")
            self._ctr_cancelled = obs.metrics.counter("sim.events.cancelled")
        else:
            self._ctr_scheduled = None
            self._ctr_fired = None
            self._ctr_cancelled = None

    def schedule(
        self, delay: float, callback: Callable, *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` simulated seconds.

        ``delay`` must be a finite, non-negative number.  NaN is the
        insidious case: it fails every comparison, so a NaN-timed entry
        silently corrupts the heap invariant and events start firing out
        of order — reject it loudly here instead.
        """
        # One chained comparison rejects negative, NaN (fails both
        # sides), and +inf together; the slow branch sorts out which
        # error to raise.  ``schedule`` runs once per event, so its
        # constant factor shows up directly in events/sec.
        if not 0.0 <= delay < _INF:
            if delay != delay or delay == _INF:
                raise SimulationError(
                    f"event delay must be finite, got {delay!r}"
                )
            raise SimulationError(f"cannot schedule into the past ({delay})")
        seq = next(self._sequence)
        # Inline EventHandle construction: filling the slots here skips
        # the per-event __init__ frame.
        handle = _new_handle(EventHandle)
        handle.time = time = self.now + delay
        handle.callback = callback
        handle.args = args
        handle.cancelled = False
        handle.seq = seq
        _heappush(self._queue, (time, seq, handle))
        if self.obs is not None:
            if self._ctr_scheduled is not None:
                self._ctr_scheduled.inc()
            if self._tracer is not None:
                self._tracer.emit(
                    self.now,
                    "event.scheduled",
                    at=time,
                    fn=_callback_label(callback),
                    seq=seq,
                )
        return handle

    def schedule_at(
        self, time: float, callback: Callable, *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` at absolute virtual ``time``.

        Past times clamp to "now".  NaN must be rejected *before* the
        clamp: ``max(0.0, nan)`` returns ``0.0`` (NaN loses every
        comparison), which would silently turn a poisoned timestamp into
        an immediate event instead of an error.
        """
        if time != time:
            raise SimulationError(f"event time must be finite, got {time!r}")
        return self.schedule(max(0.0, time - self.now), callback, *args)

    @property
    def pending(self) -> int:
        """Events still queued (including cancelled ones not yet drained)."""
        return len(self._queue)

    def _note_cancelled(self, handle: EventHandle) -> None:
        """Account for a cancelled handle as it drains off the heap."""
        if self._ctr_cancelled is not None:
            self._ctr_cancelled.inc()
        if self._tracer is not None:
            self._tracer.emit(self.now, "event.cancelled", seq=handle.seq)

    def _note_fired(self, handle: EventHandle) -> None:
        if self._ctr_fired is not None:
            self._ctr_fired.inc()
        if self._tracer is not None:
            self._tracer.emit(
                self.now,
                "event.fired",
                fn=_callback_label(handle.callback),
                seq=handle.seq,
            )

    def step(self) -> bool:
        """Process the next event; returns False when the queue is empty.

        Shares the hot ``run_until`` dispatch discipline: cancelled
        entries drain with one attribute test, no-arg callbacks skip the
        empty-tuple unpack, and ``heappop`` is bound once at module
        import instead of per call.
        """
        queue = self._queue
        obs = self.obs
        while queue:
            time, _, handle = _heappop(queue)
            if handle.cancelled:
                if obs is not None:
                    self._note_cancelled(handle)
                continue
            self.now = time
            self.events_processed += 1
            if obs is not None:
                self._note_fired(handle)
            args = handle.args
            if args:
                handle.callback(*args)
            else:
                handle.callback()
            return True
        return False

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Advance the clock to ``end_time``; returns events processed.

        Events scheduled exactly at ``end_time`` run.  ``max_events`` is a
        safety valve against event storms (a real hazard when simulating
        gossip meshes); exceeding it raises so a runaway scenario fails
        loudly instead of hanging.
        """
        if self.obs is not None:
            return self._run_until_observed(end_time, max_events)
        # Obs-disabled hot loop: the heap, pop, and counters live in
        # locals; cancelled entries drain with a single attribute test;
        # ``events_processed`` flushes once at exit (the ``finally``
        # keeps it right even if a callback raises).  Trajectory is
        # identical to the observed loop — nothing here touches RNG
        # state or event order.
        queue = self._queue
        heappop = heapq.heappop
        processed = 0
        try:
            if max_events is None:
                # Pop-first: one heap operation per event instead of a
                # peek plus a pop; the one overshooting entry is pushed
                # back when the horizon is reached.  No-arg callbacks
                # (timers, retries — the majority in pure event-loop
                # workloads) dispatch through a plain call instead of
                # unpacking an empty tuple.
                while queue:
                    entry = heappop(queue)
                    time = entry[0]
                    if time > end_time:
                        _heappush(queue, entry)
                        break
                    handle = entry[2]
                    if handle.cancelled:
                        continue
                    self.now = time
                    args = handle.args
                    if args:
                        handle.callback(*args)
                    else:
                        handle.callback()
                    processed += 1
                    # Batched same-timestamp dispatch: a run of events
                    # with exactly this timestamp (census fan-outs,
                    # schedule_at bursts, simultaneous timeouts) drains
                    # in an inner loop — no horizon re-check and no
                    # clock store per event.  Heap pops in a tie come
                    # off in ``seq`` order, so FIFO is preserved, and
                    # events a callback schedules *at* the running
                    # timestamp land behind the tie run in the heap
                    # (larger seq), exactly as the reference loop
                    # orders them.
                    while queue and queue[0][0] == time:
                        handle = heappop(queue)[2]
                        if handle.cancelled:
                            continue
                        args = handle.args
                        if args:
                            handle.callback(*args)
                        else:
                            handle.callback()
                        processed += 1
            else:
                while queue:
                    entry = heappop(queue)
                    time = entry[0]
                    if time > end_time:
                        _heappush(queue, entry)
                        break
                    handle = entry[2]
                    if handle.cancelled:
                        continue
                    if processed >= max_events:
                        _heappush(queue, entry)
                        raise SimulationError(
                            f"exceeded {max_events} events before "
                            f"t={end_time}"
                        )
                    self.now = time
                    args = handle.args
                    if args:
                        handle.callback(*args)
                    else:
                        handle.callback()
                    processed += 1
                    # Same-timestamp drain, with the storm guard kept
                    # per event (a tie run must not overshoot the
                    # budget unnoticed).
                    while queue and queue[0][0] == time:
                        entry = heappop(queue)
                        handle = entry[2]
                        if handle.cancelled:
                            continue
                        if processed >= max_events:
                            _heappush(queue, entry)
                            raise SimulationError(
                                f"exceeded {max_events} events before "
                                f"t={end_time}"
                            )
                        args = handle.args
                        if args:
                            handle.callback(*args)
                        else:
                            handle.callback()
                        processed += 1
        finally:
            self.events_processed += processed
        if self.now < end_time:
            self.now = end_time
        return processed

    def _run_until_observed(
        self, end_time: float, max_events: Optional[int] = None
    ) -> int:
        """The pre-optimization :meth:`run_until` body, used whenever
        observability is attached (and kept verbatim as the oracle the
        trajectory-equality tests compare the hot loop against)."""
        processed = 0
        while self._queue:
            time, _, handle = self._queue[0]
            if time > end_time:
                break
            if handle.cancelled:
                heapq.heappop(self._queue)
                if self.obs is not None:
                    self._note_cancelled(handle)
                continue
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"exceeded {max_events} events before t={end_time}"
                )
            heapq.heappop(self._queue)
            self.now = time
            self.events_processed += 1
            if self.obs is not None:
                self._note_fired(handle)
            handle.callback(*handle.args)
            processed += 1
        self.now = max(self.now, end_time)
        return processed

    def run_all(self, max_events: int = 10_000_000) -> int:
        """Drain the queue completely (bounded by ``max_events``).

        The per-event cost of the budget is one integer comparison; the
        full-queue scan for a live (non-cancelled) event runs at most
        once, when the budget is actually reached — the seed version
        re-scanned the whole queue on every event past the budget,
        which made a storm's failure path itself O(n²).
        """
        processed = 0
        step = self.step
        while self._queue:
            if processed >= max_events:
                if any(
                    not handle.cancelled for _, _, handle in self._queue
                ):
                    raise SimulationError(f"exceeded {max_events} events")
                # Only cancelled entries remain: drain them (keeping the
                # obs cancellation accounting) and stop, exactly as the
                # seed loop's final step() did.
                step()
                break
            if not step():
                break
            processed += 1
        return processed
