"""Full-node behaviour: handshakes, sync, gossip, mining, and upgrades.

A :class:`FullNode` owns a :class:`~repro.chain.chainstore.Blockchain`, a
:class:`~repro.net.mempool.Mempool`, a Kademlia routing table, and a peer
set.  The behaviours that produce the paper's observations all live here:

* **handshake fork check** — peers that disagree about the canonical block
  at the DAO fork height disconnect (``INCOMPATIBLE_FORK``).  When most of
  the network upgrades at the fork, un-upgraded nodes watch their peer
  lists evaporate: Observation 1's "sudden loss of roughly 90% of the
  nodes".
* **two-tier block gossip** and pull-based catch-up sync;
* **transaction gossip** feeding per-node mempools;
* **mining attachment** — an optional Poisson mining process that
  assembles blocks from the local mempool and broadcasts wins;
* **upgrade** — switching the node's :class:`ChainConfig` mid-simulation,
  the mechanical act of "taking the fork".
"""

from __future__ import annotations

import random
import zlib
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

from ..chain.block import Block, BlockHeader, ommers_root, transactions_root
from ..chain.chainstore import Blockchain
from ..chain.config import ChainConfig
from ..chain.processor import apply_block
from ..chain.transaction import SignedTransaction
from ..chain.types import Address, Hash32
from ..perf.soa import NodeStats
from .gossip import SeenCache, split_push_announce
from .kademlia import RoutingTable
from .mempool import Mempool
from .messages import (
    Blocks,
    Disconnect,
    DisconnectReason,
    FindNode,
    GetBlocks,
    Message,
    Neighbors,
    NewBlock,
    NewBlockHashes,
    Ping,
    Pong,
    Status,
    Transactions,
)

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network

__all__ = ["FullNode", "ResiliencePolicy", "PROTOCOL_VERSION"]

PROTOCOL_VERSION = 63


@dataclass(frozen=True)
class ResiliencePolicy:
    """Opt-in peer-level resilience knobs.

    ``None`` (the default everywhere) preserves the seed behaviour
    byte-for-byte: no dial bookkeeping, no pings, no scoring — so the
    calibrated partition scenario and its pinned observations are
    untouched.  Chaos runs construct nodes with a policy, which enables:

    * **dial timeouts with exponential backoff and a retry budget** — an
      unanswered dial backs the peer off ``backoff_base * 2^(n-1)``
      seconds (capped); after ``dial_retry_budget`` consecutive
      timeouts the peer is dropped from the routing table.  Any message
      later received from it resets the slate (it proved liveness).
      This is what keeps crash/restart churn from degenerating into a
      redial storm.
    * **liveness pings** — peers that miss a Pong deadline are evicted
      from the peer set instead of being silently retained.
    * **peer scoring with a ban list** — protocol breaches and invalid
      blocks cost ``penalty_*`` points; at ``ban_threshold`` the peer is
      disconnected, de-routed, and refused for ``ban_seconds``.
    * **gossip degradation** — periodic head re-announcement and a
      bounded pending-transaction re-relay (driven by the network's
      heal loop) so gossip converges under sustained loss.
    """

    dial_timeout: float = 10.0
    dial_backoff_base: float = 30.0
    dial_backoff_cap: float = 960.0
    dial_retry_budget: int = 6
    ping_timeout: float = 10.0
    ban_threshold: float = -10.0
    ban_seconds: float = 600.0
    penalty_invalid_block: float = -10.0
    penalty_breach: float = -10.0
    penalty_incompatible: float = -4.0
    penalty_ping_timeout: float = -1.0
    tx_rebroadcast_limit: int = 16

    def __post_init__(self) -> None:
        if self.dial_timeout <= 0 or self.ping_timeout <= 0:
            raise ValueError("timeouts must be positive")
        if self.dial_backoff_base <= 0 or self.dial_backoff_cap < self.dial_backoff_base:
            raise ValueError("need 0 < backoff_base <= backoff_cap")
        if self.dial_retry_budget < 1:
            raise ValueError("dial_retry_budget must be >= 1")
        if self.ban_threshold >= 0 or self.ban_seconds <= 0:
            raise ValueError("ban_threshold must be negative, ban_seconds positive")

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ResiliencePolicy":
        return cls(**payload)


class FullNode:
    """One participant in the simulated peer-to-peer network."""

    def __init__(
        self,
        name: str,
        chain: Blockchain,
        max_peers: int = 25,
        region: str = "eu",
        mining_hashrate: float = 0.0,
        coinbase: Optional[Address] = None,
        rng_seed: Optional[int] = None,
        resilience: Optional[ResiliencePolicy] = None,
    ) -> None:
        self.name = name
        self.chain = chain
        self.max_peers = max_peers
        self.region = region
        # Seed derives from the name via a stable digest, NOT hash():
        # Python's per-process string-hash randomization would make every
        # simulation run unique, killing reproducibility.
        self.rng = random.Random(
            rng_seed if rng_seed is not None else zlib.crc32(name.encode("utf-8"))
        )

        self.network: Optional["Network"] = None
        self.online = True
        self.peers: Set[str] = set()
        self.routing = RoutingTable(name)
        self.mempool = Mempool(chain.config)
        self.seen_blocks = SeenCache()
        self.seen_txs = SeenCache()
        #: Parent hash -> request time.  A batch of N orphans costs one
        #: ancestor request instead of N (which would amplify 33x per
        #: round-trip and melt the simulator); entries expire so a lost
        #: response (peer disconnected mid-sync) retries instead of
        #: wedging the ancestor walk forever.
        self._requested_parents: Dict[bytes, float] = {}

        self.mining_hashrate = mining_hashrate
        self.coinbase = coinbase or Address.zero()
        self._mining_event = None

        #: ``None`` keeps the exact legacy behaviour; chaos runs pass a
        #: :class:`ResiliencePolicy` to enable dial backoff, liveness
        #: pings, and peer scoring.
        self.resilience = resilience
        #: peer -> time the outstanding dial was sent.
        self._dial_pending: Dict[str, float] = {}
        #: peer -> consecutive dial timeouts.
        self._dial_failures: Dict[str, int] = {}
        #: peer -> earliest time we may dial it again.
        self._dial_blocked_until: Dict[str, float] = {}
        #: peer -> time the outstanding ping was sent.
        self._ping_pending: Dict[str, float] = {}
        #: peer -> accumulated misbehaviour score (<= 0).
        self._peer_scores: Dict[str, float] = {}
        #: peer -> time its ban lapses.
        self._banned_until: Dict[str, float] = {}

        # Telemetry the experiments read.  Slot-backed struct-of-arrays
        # counters: the hot paths bump fixed slots, while readers keep
        # the mapping interface (``node.stats["blocks_mined"]``).
        self.stats = NodeStats()

    # -- identity ------------------------------------------------------------

    @property
    def config(self) -> ChainConfig:
        return self.chain.config

    @property
    def network_name(self) -> str:
        return self.chain.config.name

    def fork_block_hash(self) -> Optional[Hash32]:
        """Canonical hash at the DAO fork height (None below it)."""
        if self.chain.height < self.config.dao_fork_block:
            return None
        return self.chain.canonical_hash(self.config.dao_fork_block)

    def status_message(self) -> Status:
        return Status(
            sender_id=self.name,
            protocol_version=PROTOCOL_VERSION,
            network_name=self.network_name,
            genesis_hash=self.chain.genesis.block_hash,
            head_hash=self.chain.head.block_hash,
            total_difficulty=self.chain.total_difficulty,
            fork_block_hash=self.fork_block_hash(),
        )

    # -- connectivity ----------------------------------------------------------

    def compatible_with(self, status: Status) -> Tuple[bool, str]:
        """Apply the handshake admission rules to a peer's Status."""
        if status.protocol_version != PROTOCOL_VERSION:
            return False, DisconnectReason.BREACH_OF_PROTOCOL
        if status.genesis_hash != self.chain.genesis.block_hash:
            return False, DisconnectReason.INCOMPATIBLE_FORK
        mine = self.fork_block_hash()
        theirs = status.fork_block_hash
        if mine is not None and theirs is not None and mine != theirs:
            return False, DisconnectReason.INCOMPATIBLE_FORK
        return True, ""

    def dial(self, peer_name: str) -> None:
        """Initiate a connection (send our Status).

        With a :class:`ResiliencePolicy`, dials are bookkept: a peer with
        an outstanding dial, an unexpired backoff, or an active ban is
        skipped, and every dial arms a timeout check.  Without a policy
        this is the legacy fire-and-forget send.
        """
        if not self.online or peer_name == self.name:
            return
        if peer_name in self.peers or len(self.peers) >= self.max_peers:
            return
        policy = self.resilience
        if policy is not None:
            now = self._now()
            if (
                peer_name in self._dial_pending
                or now < self._dial_blocked_until.get(peer_name, 0.0)
                or now < self._banned_until.get(peer_name, 0.0)
            ):
                return
            self._dial_pending[peer_name] = now
            self.stats.dials_started += 1
            if self.network is not None:
                self.network.sim.schedule(
                    policy.dial_timeout, self._check_dial, peer_name, now
                )
        self._send(peer_name, self.status_message())

    def _check_dial(self, peer_name: str, dialed_at: float) -> None:
        """Dial-timeout bookkeeping: back off, and eventually give up.

        Fires ``dial_timeout`` seconds after the dial.  If the handshake
        completed (or the dial entry was superseded) this is a no-op;
        otherwise the peer earns exponential backoff —
        ``backoff_base * 2^(failures-1)`` capped at ``backoff_cap`` —
        and, once the retry budget is spent, removal from the routing
        table so discovery stops re-suggesting a corpse.
        """
        policy = self.resilience
        if policy is None or not self.online:
            return
        if self._dial_pending.get(peer_name) != dialed_at:
            return
        del self._dial_pending[peer_name]
        if peer_name in self.peers:
            return
        self.stats.dials_timed_out += 1
        failures = self._dial_failures.get(peer_name, 0) + 1
        self._dial_failures[peer_name] = failures
        backoff = min(
            policy.dial_backoff_base * (2 ** (failures - 1)),
            policy.dial_backoff_cap,
        )
        self._dial_blocked_until[peer_name] = self._now() + backoff
        if failures >= policy.dial_retry_budget:
            self.routing.remove(peer_name)

    def _note_alive(self, peer_name: str) -> None:
        """Any inbound message proves liveness: reset the dial slate."""
        self._dial_pending.pop(peer_name, None)
        self._dial_failures.pop(peer_name, None)
        self._dial_blocked_until.pop(peer_name, None)

    def disconnect(self, peer_name: str, reason: str) -> None:
        if peer_name in self.peers:
            self.peers.discard(peer_name)
            self._send(peer_name, Disconnect(sender_id=self.name, reason=reason))

    def drop_all_peers(self, reason: str = DisconnectReason.CLIENT_QUITTING) -> None:
        for peer_name in sorted(self.peers):
            self.disconnect(peer_name, reason)

    # -- lifecycle ---------------------------------------------------------------

    def go_offline(self) -> None:
        self.online = False
        self.stop_mining()
        self.peers.clear()
        # In-flight dial/ping state dies with the process; scores and
        # bans survive a bounce (they model the operator's node database).
        self._dial_pending.clear()
        self._ping_pending.clear()

    def go_online(self) -> None:
        self.online = True

    def upgrade(self, new_config: ChainConfig) -> None:
        """Adopt a new protocol version (take — or refuse — a fork).

        The block database is retained; only the rules change.  Existing
        peers are re-evaluated at the next fork-boundary import, exactly
        like restarting geth with different fork flags.
        """
        self.chain.config = new_config
        self.mempool.config = new_config
        if self.network is not None:
            self.network.note_upgrade(self.name)

    # -- mining --------------------------------------------------------------

    def start_mining(self) -> None:
        if self.mining_hashrate <= 0 or self.network is None or not self.online:
            return
        self.stop_mining()
        interval = self.network.sim_rng.expovariate(
            self.mining_hashrate / self.chain.head.difficulty
        )
        self._mining_event = self.network.sim.schedule(interval, self._mine_block)

    def stop_mining(self) -> None:
        if self._mining_event is not None:
            self._mining_event.cancel()
            self._mining_event = None

    def _mine_block(self) -> None:
        if not self.online:
            return
        parent = self.chain.head
        timestamp = max(int(self.network.sim.now), parent.timestamp + 1)
        difficulty = self.config.compute_difficulty(
            parent.difficulty, parent.timestamp, timestamp, parent.number + 1
        )

        # Reference any eligible orphaned siblings as uncles: the losing
        # side of a transient fork still earns, which is why real miners
        # always include them (and why our uncle-rate experiment works).
        ommers = tuple(self.chain.candidate_ommers())

        transactions: Tuple[SignedTransaction, ...] = ()
        state_root = parent.header.state_root
        if self.chain.execute_transactions:
            parent_state = self.chain.state_at(parent.block_hash)
            scratch = parent_state.fork()
            selected = self.mempool.select_for_block(
                parent_state, parent.number + 1, parent.header.gas_limit
            )
            transactions = tuple(selected)
            trial = Block(
                header=BlockHeader(
                    parent_hash=parent.block_hash,
                    number=parent.number + 1,
                    timestamp=timestamp,
                    difficulty=difficulty,
                    coinbase=self.coinbase,
                    state_root=Hash32.zero(),
                    tx_root=transactions_root(transactions),
                    gas_limit=parent.header.gas_limit,
                    gas_used=0,
                    ommers_hash=ommers_root(ommers),
                ),
                transactions=transactions,
                ommers=ommers,
            )
            apply_block(scratch, trial, self.config, self.chain.irregular_transfers)
            state_root = scratch.state_root

        block = Block(
            header=BlockHeader(
                parent_hash=parent.block_hash,
                number=parent.number + 1,
                timestamp=timestamp,
                difficulty=difficulty,
                coinbase=self.coinbase,
                state_root=state_root,
                tx_root=transactions_root(transactions),
                gas_limit=parent.header.gas_limit,
                gas_used=0,
                nonce=self.rng.getrandbits(64),
                extra_data=self.config.dao_extra_data(parent.number + 1) or b"",
                ommers_hash=ommers_root(ommers),
            ),
            transactions=transactions,
            ommers=ommers,
        )
        self.stats.blocks_mined += 1
        if self.network is not None and self.network.obs is not None:
            if self.network._ctr_blk_produced is not None:
                self.network._ctr_blk_produced.inc()
            if self.network._tracer is not None:
                self.network._tracer.emit(
                    self.network.sim.now,
                    "block.produced",
                    miner=self.name,
                    number=block.number,
                    hash=block.block_hash.hex(),
                )
        self._adopt_block(block, origin=None)
        self.start_mining()  # schedule the next attempt from the new head

    # -- block handling ------------------------------------------------------

    def _adopt_block(
        self, block: Block, origin: Optional[str], request_missing: bool = True
    ) -> str:
        """Import a block (mined or received) and relay on success.

        Returns the import status.  ``request_missing=False`` suppresses
        the orphan follow-up (batch handlers issue one request per batch).
        """
        self.seen_blocks.add(block.block_hash)
        result = self.chain.import_block(block)
        if self.network is not None and self.network.obs is not None:
            self._observe_import(block, result)
        if result.status == "imported":
            self.stats.blocks_imported += 1
            self.mempool.remove_included(block.transactions)
            self._relay_block(block, exclude=origin)
            if self.chain.head.block_hash == block.block_hash:
                # Head advanced: restart the miner against the new parent.
                if self._mining_event is not None:
                    self.start_mining()
        elif result.status == "orphan" and origin is not None and request_missing:
            self._request_ancestor(origin, block.parent_hash)
        elif result.status == "invalid" and origin is not None:
            # A peer feeding us consensus-invalid blocks is either broken
            # or on the other side of a hard fork; drop it.  This is the
            # disconnection cascade that empties the minority network's
            # peer lists at the fork moment.
            if result.reason == "dao-extra-data":
                self.stats.disconnects_incompatible += 1
                self.disconnect(origin, DisconnectReason.INCOMPATIBLE_FORK)
                self._punish(origin, "penalty_incompatible")
            else:
                self.disconnect(origin, DisconnectReason.BREACH_OF_PROTOCOL)
                self._punish(origin, "penalty_invalid_block")
        return result.status

    def _observe_import(self, block: Block, result) -> None:
        """Metrics + trace events for one import (obs-enabled runs only)."""
        net = self.network
        if result.status == "imported":
            if net._ctr_blk_imported is not None:
                net._ctr_blk_imported.inc()
            if result.reorged and net._ctr_reorgs is not None:
                net._ctr_reorgs.inc()
        elif result.status == "orphan":
            if net._ctr_blk_orphaned is not None:
                net._ctr_blk_orphaned.inc()
        tracer = net._tracer
        if tracer is None:
            return
        now = net.sim.now
        if result.status == "imported":
            tracer.emit(
                now,
                "block.imported",
                node=self.name,
                number=block.number,
                hash=block.block_hash.hex(),
                reorg=bool(result.reorged),
            )
            if result.reorged:
                tracer.emit(
                    now,
                    "reorg",
                    node=self.name,
                    head=block.block_hash.hex(),
                    number=block.number,
                )
        elif result.status == "orphan":
            tracer.emit(
                now,
                "block.orphaned",
                node=self.name,
                number=block.number,
                hash=block.block_hash.hex(),
            )

    #: Seconds before an unanswered ancestor request may be retried.
    ANCESTOR_RETRY_SECONDS = 20.0

    def _request_ancestor(self, origin: str, parent_hash: Hash32) -> None:
        """Pull a missing ancestor, at most once per hash per retry window."""
        now = self.network.sim.now if self.network is not None else 0.0
        key = bytes(parent_hash)
        last = self._requested_parents.get(key)
        if last is not None and now - last < self.ANCESTOR_RETRY_SECONDS:
            return
        self._requested_parents[key] = now
        if len(self._requested_parents) > 50_000:
            self._requested_parents.clear()
        self._send(
            origin, GetBlocks(sender_id=self.name, hashes=(parent_hash,))
        )

    def _relay_block(self, block: Block, exclude: Optional[str]) -> None:
        # Sorted so simulations replay identically regardless of Python's
        # per-process set-hash randomization.  The push/announce split
        # draws from ``self.rng`` before any network check, exactly as
        # the per-send loop did, so detached nodes keep the same RNG
        # trajectory.  Each tier goes out as one delivery wave.
        targets = sorted(self.peers)
        if exclude is not None:
            try:
                targets.remove(exclude)
            except ValueError:
                pass
        push, announce = split_push_announce(targets, self.rng)
        full = NewBlock(
            sender_id=self.name,
            block=block,
            total_difficulty=self.chain.total_difficulty_of(block.block_hash)
            or 0,
        )
        network = self.network
        if network is not None:
            network.send_wave(self.name, push, full)
        if announce:
            hashes_msg = NewBlockHashes(
                sender_id=self.name, hashes=(block.block_hash,)
            )
            if network is not None:
                network.send_wave(self.name, announce, hashes_msg)

    # -- transactions ---------------------------------------------------------

    def submit_transaction(self, tx: SignedTransaction) -> bool:
        """Entry point for local users (wallets) — validate and gossip."""
        state = (
            self.chain.head_state() if self.chain.execute_transactions else None
        )
        result = self.mempool.add(tx, state, self.chain.height + 1)
        self.seen_txs.add(bytes(tx.tx_hash))
        if result.admitted:
            self.stats.txs_admitted += 1
            self._relay_transactions((tx,), exclude=None)
            return True
        return False

    def _relay_transactions(
        self, txs: Tuple[SignedTransaction, ...], exclude: Optional[str]
    ) -> None:
        if not txs:
            return
        message = Transactions(sender_id=self.name, transactions=txs)
        network = self.network
        if network is None:
            return
        if exclude is None:
            targets = sorted(self.peers)
        else:
            targets = [p for p in sorted(self.peers) if p != exclude]
        network.send_wave(self.name, targets, message)

    # -- message dispatch ---------------------------------------------------------

    def receive(self, message: Message) -> None:
        """Transport delivery point; dispatches on message type.

        The hot path replaces the seed's nine-branch ``isinstance``
        ladder with one exact-type dict probe (messages are final
        dataclasses, so ``type(message)`` is the ladder's answer); a
        subclassed message — none exist in the repo, but the contract
        allows them — falls back to the ladder.  Handler order and
        side effects are identical to :meth:`receive_reference`, the
        seed body kept verbatim for the benchmark reference arm.
        """
        if not self.online:
            return
        sender = message.sender_id
        if self.resilience is not None:
            if self._now() < self._banned_until.get(sender, 0.0):
                return  # banned peers get silence, not service
            self._note_alive(sender)
            if isinstance(message, Ping):
                self._send(sender, Pong(sender_id=self.name))
                return
            if isinstance(message, Pong):
                self._ping_pending.pop(sender, None)
                return
        self.routing.observe(sender)
        handler = _DISPATCH_GET(type(message))
        if handler is not None:
            handler(self, message)
        else:
            self._dispatch_ladder(message)

    def receive_reference(self, message: Message) -> None:
        """The seed-state :meth:`receive` body, verbatim.

        :func:`repro.perf.reference.reference_event_loop` swaps this in
        class-wide so the benchmark reference arm dispatches through the
        original ``isinstance`` ladder.
        """
        if not self.online:
            return
        sender = message.sender_id
        if self.resilience is not None:
            if self._now() < self._banned_until.get(sender, 0.0):
                return  # banned peers get silence, not service
            self._note_alive(sender)
            if isinstance(message, Ping):
                self._send(sender, Pong(sender_id=self.name))
                return
            if isinstance(message, Pong):
                self._ping_pending.pop(sender, None)
                return
        self.routing.observe(sender)
        self._dispatch_ladder(message)

    def _dispatch_ladder(self, message: Message) -> None:
        """The seed dispatch ladder (shared by the reference arm and the
        fast path's subclassed-message fallback)."""
        if isinstance(message, Status):
            self._on_status(message)
        elif isinstance(message, Disconnect):
            self._on_disconnect(message)
        elif isinstance(message, NewBlock):
            self._on_new_block(message)
        elif isinstance(message, NewBlockHashes):
            self._on_new_block_hashes(message)
        elif isinstance(message, GetBlocks):
            self._on_get_blocks(message)
        elif isinstance(message, Blocks):
            self._on_blocks(message)
        elif isinstance(message, Transactions):
            self._on_transactions(message)
        elif isinstance(message, FindNode):
            self._on_find_node(message)
        elif isinstance(message, Neighbors):
            self._on_neighbors(message)

    def _on_disconnect(self, message: Disconnect) -> None:
        self.peers.discard(message.sender_id)
        if message.reason == DisconnectReason.INCOMPATIBLE_FORK:
            self.stats.disconnects_incompatible += 1

    def _on_find_node(self, message: FindNode) -> None:
        self._send(
            message.sender_id,
            Neighbors(
                sender_id=self.name,
                node_ids=tuple(self.routing.closest(message.target)),
            ),
        )

    def _on_neighbors(self, message: Neighbors) -> None:
        observe = self.routing.observe
        for node_id in message.node_ids:
            observe(node_id)

    def _on_status(self, status: Status) -> None:
        sender = status.sender_id
        already_connected = sender in self.peers
        compatible, reason = self.compatible_with(status)
        if not compatible:
            self.stats.handshakes_refused += 1
            self.peers.discard(sender)
            self._send(sender, Disconnect(sender_id=self.name, reason=reason))
            return
        if already_connected:
            return
        if len(self.peers) >= self.max_peers:
            self._send(
                sender,
                Disconnect(
                    sender_id=self.name, reason=DisconnectReason.TOO_MANY_PEERS
                ),
            )
            return
        self.peers.add(sender)
        self._send(sender, self.status_message())
        # If the peer is ahead, pull toward their head.
        if status.total_difficulty > self.chain.total_difficulty:
            self._send(
                sender, GetBlocks(sender_id=self.name, hashes=(status.head_hash,))
            )

    def _on_blocks(self, message: Blocks) -> None:
        """Import a served batch (ascending order), then follow up once.

        Batches arrive oldest-first, so later blocks usually find their
        parents in the same batch; if the whole batch is still orphaned we
        are mid ancestor-walk and ask for the first block's parent only.

        Most served blocks are already known or still orphaned (ancestor
        walks re-serve descendant runs), and ``import_block`` settles both
        with dict probes before any validation — so on the obs-disabled
        path those verdicts are pre-checked inline and only blocks with a
        known parent pay the full import machinery.  Outcome-identical to
        :meth:`_on_blocks_reference`: the pre-check reproduces exactly the
        "known" and "unknown-parent" early returns of
        :meth:`~repro.chain.chainstore.Blockchain.import_block`.
        """
        net = self.network
        if net is None or net.obs is not None:
            # Orphan/import trace events must still fire per block.
            self._on_blocks_reference(message)
            return
        sender = message.sender_id
        block_index = self.chain.block_index
        seen_add = self.seen_blocks.add
        first_orphan: Optional[Block] = None
        for block in message.blocks:
            header = block.header
            block_hash = header.block_hash
            seen_add(block_hash)
            if block_hash in block_index:
                continue  # "known"
            if header.parent_hash not in block_index:
                if first_orphan is None:
                    first_orphan = block
                continue  # "orphan" (unknown parent)
            status = self._adopt_block(
                block, origin=sender, request_missing=False
            )
            if status == "orphan" and first_orphan is None:
                first_orphan = block  # parent known but its state pruned
        if first_orphan is not None:
            self._request_ancestor(sender, first_orphan.parent_hash)

    def _on_blocks_reference(self, message: Blocks) -> None:
        """The seed-state :meth:`_on_blocks` body, verbatim — swapped in
        class-wide by :func:`repro.perf.reference.reference_event_loop`,
        and the obs-enabled fallback of the fast path."""
        first_orphan: Optional[Block] = None
        for block in message.blocks:
            status = self._adopt_block(
                block, origin=message.sender_id, request_missing=False
            )
            if status == "orphan" and first_orphan is None:
                first_orphan = block
        if first_orphan is not None:
            self._request_ancestor(message.sender_id, first_orphan.parent_hash)

    def _on_new_block(self, message: NewBlock) -> None:
        block = message.block
        block_hash = block.header.block_hash
        if block_hash in self.seen_blocks:
            return
        net = self.network
        if net is None or net.obs is not None:
            self._adopt_block(block, origin=message.sender_id)
            return
        # Obs-disabled: settle "known" and "unknown-parent orphan" with
        # dict probes (exactly import_block's own early returns) before
        # paying the _adopt_block/import_block call chain.
        block_index = self.chain.block_index
        if block_hash in block_index:
            self.seen_blocks.add(block_hash)
            return
        if block.header.parent_hash not in block_index:
            self.seen_blocks.add(block_hash)
            self._request_ancestor(message.sender_id, block.parent_hash)
            return
        self._adopt_block(block, origin=message.sender_id)

    def _on_new_block_reference(self, message: NewBlock) -> None:
        """The seed-state :meth:`_on_new_block` body, verbatim — swapped
        in class-wide by
        :func:`repro.perf.reference.reference_event_loop`."""
        if bytes(message.block.block_hash) in self.seen_blocks:
            return
        self._adopt_block(message.block, origin=message.sender_id)

    def _on_new_block_hashes(self, message: NewBlockHashes) -> None:
        # Announcements are the highest-volume message and almost always
        # already seen: probe the dedup set and block index directly
        # (identical membership semantics — Hash32 hashes as its bytes).
        hashes = message.hashes
        seen = self.seen_blocks._seen
        block_index = self.chain.block_index
        if len(hashes) == 1:
            # The dominant shape by far (block announcements carry one
            # hash): test membership directly instead of building a
            # generator plus a filtered tuple for a 0/1-element result.
            head = hashes[0]
            if head in seen or head in block_index:
                return
            unknown = hashes
        else:
            unknown = tuple(
                h for h in hashes if h not in seen and h not in block_index
            )
        if unknown:
            self._send(
                message.sender_id,
                GetBlocks(sender_id=self.name, hashes=unknown),
            )

    def _on_new_block_hashes_reference(self, message: NewBlockHashes) -> None:
        """The seed-state :meth:`_on_new_block_hashes` body, verbatim —
        swapped in class-wide by
        :func:`repro.perf.reference.reference_event_loop`."""
        unknown = tuple(
            h
            for h in message.hashes
            if bytes(h) not in self.seen_blocks and h not in self.chain
        )
        if unknown:
            self._send(
                message.sender_id,
                GetBlocks(sender_id=self.name, hashes=unknown),
            )

    def _on_get_blocks(self, message: GetBlocks) -> None:
        # The descendant walk below re-reads the canonical and block
        # indices once per served block; going through the dict aliases
        # instead of block_by_hash/block_by_number halves the call count
        # on the busiest sync path.
        chain = self.chain
        blocks_get = chain.block_index.get
        canonical_get = chain.canonical_index.get
        found: List[Block] = []
        append = found.append
        for block_hash in message.hashes:
            block = blocks_get(block_hash)
            if block is not None:
                append(block)
                # Serve a short run of descendants to accelerate catch-up.
                cursor = block.header
                for _ in range(31):
                    nxt_hash = canonical_get(cursor.number + 1)
                    nxt = blocks_get(nxt_hash) if nxt_hash else None
                    if nxt is None or nxt.header.parent_hash != cursor.block_hash:
                        break
                    append(nxt)
                    cursor = nxt.header
        if found:
            self._send(
                message.sender_id,
                Blocks(sender_id=self.name, blocks=tuple(found)),
            )

    def _on_get_blocks_reference(self, message: GetBlocks) -> None:
        """The seed-state :meth:`_on_get_blocks` body, verbatim — swapped
        in class-wide by
        :func:`repro.perf.reference.reference_event_loop`."""
        found: List[Block] = []
        for block_hash in message.hashes:
            block = self.chain.block_by_hash(block_hash)
            if block is not None:
                found.append(block)
                # Serve a short run of descendants to accelerate catch-up.
                cursor = block
                for _ in range(31):
                    nxt = self.chain.block_by_number(cursor.number + 1)
                    if nxt is None or nxt.parent_hash != cursor.block_hash:
                        break
                    found.append(nxt)
                    cursor = nxt
        if found:
            self._send(
                message.sender_id,
                Blocks(sender_id=self.name, blocks=tuple(found)),
            )

    def _on_transactions(self, message: Transactions) -> None:
        fresh: List[SignedTransaction] = []
        state = (
            self.chain.head_state() if self.chain.execute_transactions else None
        )
        for tx in message.transactions:
            if not self.seen_txs.add(bytes(tx.tx_hash)):
                continue
            result = self.mempool.add(tx, state, self.chain.height + 1)
            if result.admitted:
                self.stats.txs_admitted += 1
                fresh.append(tx)
        if fresh:
            self._relay_transactions(tuple(fresh), exclude=message.sender_id)

    # -- resilience ----------------------------------------------------------

    def _now(self) -> float:
        return self.network.sim.now if self.network is not None else 0.0

    def _punish(self, peer_name: str, penalty_key: str) -> None:
        """Dock a peer's score; at the ban threshold, cut it loose.

        Banning disconnects (``USELESS_PEER``), drops the peer from the
        routing table, and refuses its messages and our dials to it for
        ``ban_seconds``.  No-op without a policy.
        """
        policy = self.resilience
        if policy is None:
            return
        score = self._peer_scores.get(peer_name, 0.0) + getattr(
            policy, penalty_key
        )
        self._peer_scores[peer_name] = score
        if score <= policy.ban_threshold:
            self.disconnect(peer_name, DisconnectReason.USELESS_PEER)
            self.peers.discard(peer_name)
            self.routing.remove(peer_name)
            self._banned_until[peer_name] = self._now() + policy.ban_seconds
            self._peer_scores.pop(peer_name, None)
            self.stats.peers_banned += 1

    def ping_peers(self) -> None:
        """Liveness sweep: ping every peer, arm an eviction deadline.

        Called by the network's liveness loop.  A peer that already has
        an outstanding ping is not pinged again — its pending check will
        evict it.  No-op without a policy (legacy nodes keep crashed
        peers forever, as the seed behaviour did).
        """
        policy = self.resilience
        if policy is None or not self.online or self.network is None:
            return
        now = self._now()
        for peer_name in sorted(self.peers):
            if peer_name in self._ping_pending:
                continue
            self._ping_pending[peer_name] = now
            self._send(peer_name, Ping(sender_id=self.name))
            self.network.sim.schedule(
                policy.ping_timeout, self._check_ping, peer_name, now
            )

    def _check_ping(self, peer_name: str, pinged_at: float) -> None:
        """Evict a peer whose Pong never came back."""
        policy = self.resilience
        if policy is None or not self.online:
            return
        if self._ping_pending.get(peer_name) != pinged_at:
            return
        del self._ping_pending[peer_name]
        if peer_name in self.peers:
            self.peers.discard(peer_name)
            self.stats.peers_evicted_unresponsive += 1
            self._punish(peer_name, "penalty_ping_timeout")

    def announce_head(self) -> None:
        """Re-announce the head hash to every peer (gossip repair).

        Peers that missed the original push/announce — the message was
        lost, or they were mid-crash — pull the body via ``GetBlocks``.
        Driven by the network's heal loop; no-op without a policy.
        """
        if self.resilience is None or not self.online or not self.peers:
            return
        message = NewBlockHashes(
            sender_id=self.name, hashes=(self.chain.head.block_hash,)
        )
        network = self.network
        if network is not None:
            network.send_wave(self.name, sorted(self.peers), message)
        self.stats.head_reannounces += 1

    def rebroadcast_transactions(self) -> None:
        """Re-relay a bounded, deterministic slice of the mempool.

        Degraded-mode gossip under loss: bounded by
        ``tx_rebroadcast_limit`` so healing chatter cannot melt the
        simulator, ordered by tx hash so replays are identical.
        """
        policy = self.resilience
        if policy is None or not self.online or not self.peers:
            return
        hashes = sorted(self.mempool.all_hashes(), key=bytes)
        txs = tuple(
            tx
            for tx in (
                self.mempool.get(h)
                for h in hashes[: policy.tx_rebroadcast_limit]
            )
            if tx is not None
        )
        if txs:
            self._relay_transactions(txs, exclude=None)

    # -- transport ------------------------------------------------------------

    def _send(self, peer_name: str, message: Message) -> None:
        if self.network is not None:
            self.network.send(self.name, peer_name, message)


#: Exact-type dispatch table for :meth:`FullNode.receive`.  Keys are the
#: final message classes; values are the unbound handler functions.  The
#: resilience-gated types (Ping/Pong) are deliberately absent — they are
#: consumed by the preamble when a policy is armed and ignored otherwise,
#: exactly as the ladder ignored them.
_DISPATCH = {
    Status: FullNode._on_status,
    Disconnect: FullNode._on_disconnect,
    NewBlock: FullNode._on_new_block,
    NewBlockHashes: FullNode._on_new_block_hashes,
    GetBlocks: FullNode._on_get_blocks,
    Blocks: FullNode._on_blocks,
    Transactions: FullNode._on_transactions,
    FindNode: FullNode._on_find_node,
    Neighbors: FullNode._on_neighbors,
}
_DISPATCH_GET = _DISPATCH.get
