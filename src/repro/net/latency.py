"""Link latency models for the P2P simulator.

Block propagation time relative to the block interval controls the
transient-fork rate (Section 2.1): two miners fork when both solve within
one propagation delay.  The models here span what the experiments need —
a constant for unit tests, a uniform band for quick scenarios, and a
lognormal geographic model calibrated to the ~100-300 ms inter-continental
RTTs measured for the real Ethereum network.
"""

from __future__ import annotations

import math
import random
from typing import Protocol

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LognormalLatency",
    "GeographicLatency",
]


class LatencyModel(Protocol):
    """Anything that can produce a one-way message delay in seconds."""

    def sample(self, rng: random.Random) -> float: ...


class ConstantLatency:
    """Every message takes exactly ``delay`` seconds (tests, debugging)."""

    def __init__(self, delay: float = 0.1) -> None:
        if delay < 0:
            raise ValueError("latency must be non-negative")
        self.delay = delay

    def sample(self, rng: random.Random) -> float:
        return self.delay


class UniformLatency:
    """Delay uniform in [low, high] seconds."""

    def __init__(self, low: float = 0.05, high: float = 0.3) -> None:
        if not 0 <= low <= high:
            raise ValueError("need 0 <= low <= high")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


class LognormalLatency:
    """Heavy-tailed delays: most links fast, a tail of slow ones.

    Parameterized by the median delay and a shape sigma; the lognormal
    matches measured peer-to-peer block propagation distributions (Decker &
    Wattenhofer's Bitcoin measurements, cited by the paper as [18]).
    """

    def __init__(self, median: float = 0.12, sigma: float = 0.6) -> None:
        if median <= 0 or sigma <= 0:
            raise ValueError("median and sigma must be positive")
        self.mu = math.log(median)
        self.sigma = sigma

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)


class GeographicLatency:
    """Region-pair base delays plus lognormal jitter.

    Nodes carry a region tag; the model looks up the base one-way delay for
    the (region, region) pair and multiplies by jitter.  Regions default to
    a three-continent layout with realistic inter-region delays.
    """

    DEFAULT_BASE = {
        ("na", "na"): 0.04,
        ("eu", "eu"): 0.03,
        ("as", "as"): 0.05,
        ("na", "eu"): 0.09,
        ("na", "as"): 0.15,
        ("eu", "as"): 0.13,
    }

    def __init__(
        self,
        base=None,
        jitter_sigma: float = 0.25,
        strict: bool = False,
        default_delay: float = 0.12,
    ) -> None:
        if jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")
        if default_delay < 0:
            raise ValueError("default_delay must be non-negative")
        self.base = dict(base or self.DEFAULT_BASE)
        for pair, delay in self.base.items():
            if delay < 0:
                raise ValueError(
                    f"base delay for {pair!r} must be non-negative, "
                    f"got {delay}"
                )
        # Symmetrize, refusing to guess which direction wins when the
        # caller supplied both (a, b) and (b, a) with different delays.
        for (a, b), delay in list(self.base.items()):
            reverse = self.base.get((b, a))
            if reverse is None:
                self.base[(b, a)] = delay
            elif reverse != delay:
                raise ValueError(
                    f"conflicting base delays for region pair "
                    f"({a!r}, {b!r}): {delay} vs {reverse}"
                )
        self.jitter_sigma = jitter_sigma
        self.strict = strict
        self.default_delay = default_delay

    def delay_between(
        self, region_a: str, region_b: str, rng: random.Random
    ) -> float:
        base = self.base.get((region_a, region_b))
        if base is None:
            if self.strict:
                raise KeyError(
                    f"no base delay for region pair "
                    f"({region_a!r}, {region_b!r})"
                )
            base = self.default_delay
        return base * rng.lognormvariate(0.0, self.jitter_sigma)

    def sample(self, rng: random.Random) -> float:
        """Region-agnostic fallback: a mid-range intercontinental delay."""
        return 0.1 * rng.lognormvariate(0.0, self.jitter_sigma)
