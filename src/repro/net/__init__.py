"""Message-level P2P network simulation (discovery, gossip, full nodes)."""

from .gossip import SeenCache, split_push_announce
from .kademlia import RoutingTable, bucket_index, node_id_digest, xor_distance
from .latency import (
    ConstantLatency,
    GeographicLatency,
    LognormalLatency,
    UniformLatency,
)
from .mempool import AdmissionResult, Mempool
from .messages import (
    Blocks,
    Disconnect,
    DisconnectReason,
    FindNode,
    GetBlocks,
    Neighbors,
    NewBlock,
    NewBlockHashes,
    Ping,
    Pong,
    Status,
    Transactions,
)
from .network import Network, NetworkCensus
from .node import PROTOCOL_VERSION, FullNode, ResiliencePolicy
from .simulator import EventHandle, SimulationError, Simulator
from .topology import (
    TOPOLOGY_KINDS,
    BuiltTopology,
    TopologySpec,
    build_topology,
    default_names,
)

__all__ = [
    "Simulator",
    "EventHandle",
    "SimulationError",
    "Network",
    "NetworkCensus",
    "FullNode",
    "ResiliencePolicy",
    "PROTOCOL_VERSION",
    "Mempool",
    "AdmissionResult",
    "RoutingTable",
    "node_id_digest",
    "xor_distance",
    "bucket_index",
    "SeenCache",
    "split_push_announce",
    "ConstantLatency",
    "UniformLatency",
    "LognormalLatency",
    "GeographicLatency",
    "Status",
    "Disconnect",
    "DisconnectReason",
    "NewBlock",
    "NewBlockHashes",
    "GetBlocks",
    "Blocks",
    "Transactions",
    "FindNode",
    "Neighbors",
    "Ping",
    "Pong",
    "TOPOLOGY_KINDS",
    "TopologySpec",
    "BuiltTopology",
    "build_topology",
    "default_names",
]
