"""Per-node transaction pools.

The mempool enforces per-chain admission (signature, chain id, nonce,
balance) and orders transactions for block inclusion.  It is also the stage
where echoes become real: a rebroadcast transaction arriving from the
sibling network passes these exact checks whenever the paper's replay
condition holds ("if the source account still had sufficient credit"), so
the echo pipeline needs no special-casing — replays are just transactions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..chain.config import ChainConfig
from ..chain.processor import validate_transaction_for_chain
from ..chain.state import StateDB
from ..chain.transaction import SignedTransaction
from ..chain.types import Address, Hash32

__all__ = ["Mempool", "AdmissionResult"]


class AdmissionResult:
    """Outcome of offering a transaction to the pool."""

    ADMITTED = "admitted"
    KNOWN = "known"
    REJECTED = "rejected"

    def __init__(self, status: str, reason: str = "") -> None:
        self.status = status
        self.reason = reason

    @property
    def admitted(self) -> bool:
        return self.status == self.ADMITTED

    def __repr__(self) -> str:  # pragma: no cover
        return f"AdmissionResult({self.status}, {self.reason!r})"


class Mempool:
    """Pending transactions, indexed by hash and by (sender, nonce).

    Admission validates against a *state view* (the chain head's state);
    ``select_for_block`` returns an executable, nonce-contiguous prefix per
    sender, price-ordered across senders like geth's default miner policy.
    """

    def __init__(self, config: ChainConfig, capacity: int = 4096) -> None:
        self.config = config
        self.capacity = capacity
        self._by_hash: Dict[Hash32, SignedTransaction] = {}
        self._by_sender: Dict[Address, Dict[int, SignedTransaction]] = {}

    def __len__(self) -> int:
        return len(self._by_hash)

    def __contains__(self, tx_hash: Hash32) -> bool:
        return tx_hash in self._by_hash

    def add(
        self,
        tx: SignedTransaction,
        state: Optional[StateDB],
        block_number: int,
    ) -> AdmissionResult:
        """Validate and admit ``tx``.

        ``state`` may be None for header-only nodes, in which case only
        stateless checks (signature, chain id) run — mirroring light
        clients that relay without executing.
        """
        if tx.tx_hash in self._by_hash:
            return AdmissionResult(AdmissionResult.KNOWN)
        if len(self._by_hash) >= self.capacity:
            return AdmissionResult(AdmissionResult.REJECTED, "pool-full")

        if state is not None:
            reason = validate_transaction_for_chain(
                state, tx, self.config, block_number
            )
            # A nonce gap is allowed into the pool (it may become valid
            # when earlier transactions land); everything else rejects.
            if reason is not None and reason != "nonce-too-high":
                return AdmissionResult(AdmissionResult.REJECTED, reason)
        else:
            if not tx.verify():
                return AdmissionResult(
                    AdmissionResult.REJECTED, "invalid-signature"
                )
            if not self.config.accepts_transaction_chain_id(
                tx.payload.chain_id, block_number
            ):
                return AdmissionResult(AdmissionResult.REJECTED, "wrong-chain-id")

        sender = tx.sender
        per_sender = self._by_sender.setdefault(sender, {})
        existing = per_sender.get(tx.nonce)
        if existing is not None:
            # Replace-by-fee: keep the higher-paying transaction.
            if tx.gas_price <= existing.gas_price:
                return AdmissionResult(AdmissionResult.REJECTED, "nonce-occupied")
            del self._by_hash[existing.tx_hash]
        per_sender[tx.nonce] = tx
        self._by_hash[tx.tx_hash] = tx
        return AdmissionResult(AdmissionResult.ADMITTED)

    def remove_included(self, txs: Tuple[SignedTransaction, ...]) -> None:
        """Drop transactions that landed in a block (ours or a peer's)."""
        for tx in txs:
            stored = self._by_hash.pop(tx.tx_hash, None)
            sender_map = self._by_sender.get(tx.sender)
            if sender_map is not None:
                sender_map.pop(tx.nonce, None)
                if not sender_map:
                    del self._by_sender[tx.sender]
            if stored is None:
                # Same (sender, nonce) may be pending under a different
                # hash (RBF sibling); it is now stale either way.
                continue

    def select_for_block(
        self,
        state: StateDB,
        block_number: int,
        gas_limit: int,
    ) -> List[SignedTransaction]:
        """Choose an executable transaction list for a new block.

        Per sender, transactions must start at the account nonce and be
        contiguous; across senders, higher gas price goes first.  Gas is
        budgeted by declared limit, matching miner behaviour.
        """
        candidates: List[SignedTransaction] = []
        for sender, per_sender in self._by_sender.items():
            nonce = state.nonce_of(sender)
            while nonce in per_sender:
                candidates.append(per_sender[nonce])
                nonce += 1

        candidates.sort(key=lambda tx: (-tx.gas_price, tx.nonce))
        selected: List[SignedTransaction] = []
        gas_budget = gas_limit
        # Re-validate in selection order against a scratch state so the
        # block we assemble is guaranteed executable.
        scratch = state.fork()
        for tx in candidates:
            if tx.gas_limit > gas_budget:
                continue
            reason = validate_transaction_for_chain(
                scratch, tx, self.config, block_number
            )
            if reason is not None:
                continue
            scratch.increment_nonce(tx.sender)
            scratch.debit(
                tx.sender,
                min(
                    tx.value + tx.gas_limit * tx.gas_price,
                    scratch.balance_of(tx.sender),
                ),
            )
            selected.append(tx)
            gas_budget -= tx.gas_limit
        return selected

    def all_hashes(self) -> List[Hash32]:
        return list(self._by_hash)

    def get(self, tx_hash: Hash32) -> Optional[SignedTransaction]:
        return self._by_hash.get(tx_hash)

    def drop_invalid(self, state: StateDB, block_number: int) -> int:
        """Evict transactions no longer valid at the new head; returns the
        eviction count (post-reorg hygiene)."""
        evicted = 0
        for tx_hash in list(self._by_hash):
            tx = self._by_hash[tx_hash]
            reason = validate_transaction_for_chain(
                state, tx, self.config, block_number
            )
            if reason is not None and reason != "nonce-too-high":
                del self._by_hash[tx_hash]
                sender_map = self._by_sender.get(tx.sender)
                if sender_map is not None:
                    sender_map.pop(tx.nonce, None)
                    if not sender_map:
                        del self._by_sender[tx.sender]
                evicted += 1
        return evicted
