"""The network harness: transport, bootstrap, churn, and measurement.

:class:`Network` wires :class:`~repro.net.node.FullNode` instances to the
discrete-event :class:`~repro.net.simulator.Simulator` through a latency
model, and provides the census the partition experiments read: how many
nodes currently belong to each (handshake-compatible) network, and how
well-connected each side's mesh is.

The census is the reproduction's analogue of the authors' node crawls:
they counted reachable ETC nodes before/after the fork and saw ~90%
disappear; we count nodes whose fork-block hash matches each branch.
"""

from __future__ import annotations

import math
import random
import warnings
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from ..chain.types import Hash32
from .latency import GeographicLatency, LatencyModel, LognormalLatency
from .messages import Message, NewBlock
from .node import FullNode
from .simulator import (
    EventHandle,
    Simulator,
    _heappush,
    _INF,
    _new_handle,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import Observability

__all__ = ["Network", "NetworkCensus"]

_log = math.log
_exp = math.exp
#: CPython's ``random.NV_MAGICCONST`` — the Kinderman-Monahan ratio
#: constant used by ``Random.normalvariate``.
_NV_MAGICCONST = 4 * math.exp(-0.5) / math.sqrt(2.0)


def _inline_lognorm_matches() -> bool:
    """Probe: does the inlined lognormal sampler reproduce CPython's?

    The delivery-wave kernels inline ``Random.lognormvariate`` —
    ``exp(mu + z*sigma)`` with ``z`` from the Kinderman-Monahan
    accept/reject loop — to skip two call frames per message.  The RNG
    contract is *byte-identical trajectories*: every draw must equal the
    library's and consume the same number of ``random()`` calls.  This
    probe drives both samplers from identically-seeded generators and
    compares values *and* generator states; on any mismatch (a
    hypothetical future CPython changing the algorithm, or an exotic
    Random subclass semantics change) the kernels fall back to calling
    the library sampler — slower, still trajectory-exact.
    """
    probe = random.Random(0xC0FFEE)
    ref = random.Random(0xC0FFEE)
    probe_random = probe.random
    for mu, sigma in ((0.0, 0.25), (math.log(0.12), 0.6)):
        for _ in range(8):
            while True:
                u1 = probe_random()
                u2 = 1.0 - probe_random()
                z = _NV_MAGICCONST * (u1 - 0.5) / u2
                if z * z / 4.0 <= -_log(u2):
                    break
            if _exp(mu + z * sigma) != ref.lognormvariate(mu, sigma):
                return False
            if probe.getstate() != ref.getstate():
                return False
    return True


#: Computed once at import; guards every inline-sampler fast path.
_INLINE_LOGNORM_OK = _inline_lognorm_matches()


class NetworkCensus:
    """A point-in-time snapshot of who is on which side."""

    def __init__(
        self,
        time: float,
        members: Dict[str, List[str]],
        peer_counts: Dict[str, float],
    ) -> None:
        self.time = time
        #: network name -> node names.
        self.members = members
        #: network name -> mean peer count among its members.
        self.peer_counts = peer_counts

    def count(self, network_name: str) -> int:
        return len(self.members.get(network_name, []))

    def fraction(self, network_name: str) -> float:
        total = sum(len(nodes) for nodes in self.members.values())
        if total == 0:
            return 0.0
        return self.count(network_name) / total


class Network:
    """Transport + membership for one simulated P2P universe."""

    #: Class-level switch for the :meth:`send` fast path.  The benchmark
    #: reference arm (:mod:`repro.perf.reference`) flips this to False to
    #: time the pre-optimization transport; trajectories are identical
    #: either way.
    use_fast_path = True

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        loss_rate: float = 0.0,
        obs: Optional["Observability"] = None,
    ) -> None:
        if not 0 <= loss_rate < 1:
            raise ValueError("loss rate must be in [0, 1)")
        self.sim = sim
        # Observability defaults to the simulator's bundle so scenarios
        # only have to thread `obs` through one constructor.
        if obs is None:
            obs = getattr(sim, "obs", None)
        self.obs = obs
        self._tracer = obs.tracer if obs is not None else None
        if obs is not None and obs.metrics is not None:
            metrics = obs.metrics
            self._ctr_sent = metrics.counter("net.messages.sent")
            self._ctr_lost = metrics.counter("net.messages.lost")
            self._ctr_undeliverable = metrics.counter(
                "net.messages.undeliverable"
            )
            self._ctr_blocked = metrics.counter("net.messages.blocked")
            self._hist_delay = metrics.histogram("net.delivery_delay_s")
            # Block-lifecycle counters are owned here (one per universe)
            # and incremented by the member FullNodes.
            self._ctr_blk_produced = metrics.counter("chain.blocks.produced")
            self._ctr_blk_imported = metrics.counter("chain.blocks.imported")
            self._ctr_blk_orphaned = metrics.counter("chain.blocks.orphaned")
            self._ctr_reorgs = metrics.counter("chain.reorgs")
        else:
            self._ctr_sent = None
            self._ctr_lost = None
            self._ctr_undeliverable = None
            self._ctr_blocked = None
            self._hist_delay = None
            self._ctr_blk_produced = None
            self._ctr_blk_imported = None
            self._ctr_blk_orphaned = None
            self._ctr_reorgs = None
        self.latency = latency or GeographicLatency()
        #: Hoisted ``isinstance`` for the per-message latency dispatch.
        self._geo_latency = isinstance(self.latency, GeographicLatency)
        # Inline-sampler parameters, cached like ``_geo_latency`` (the
        # latency model is fixed at construction).  ``None`` routes the
        # kernels to the library sampler — either the model isn't the
        # exact class the inline code reproduces, or the import-time
        # probe found the inlined algorithm diverging from the library.
        lat = self.latency
        if _INLINE_LOGNORM_OK and type(lat) is LognormalLatency:
            self._ln_params: Optional[Tuple[float, float]] = (lat.mu, lat.sigma)
        else:
            self._ln_params = None
        if (
            _INLINE_LOGNORM_OK
            and type(lat) is GeographicLatency
            and not lat.strict
        ):
            # Strict models stay on the ``delay_between`` path so an
            # unknown region pair raises KeyError before any jitter draw,
            # exactly like the per-send path.
            self._geo_jitter: Optional[float] = lat.jitter_sigma
        else:
            self._geo_jitter = None
        #: True when no tracer and no metrics are attached — together
        #: with ``faults is None`` and propagation tracking off, this
        #: routes :meth:`send` through the plain fast path.
        self._plain_obs = self._tracer is None and self._ctr_sent is None
        self.sim_rng = random.Random(seed)
        self.loss_rate = loss_rate
        self.nodes: Dict[str, FullNode] = {}
        self.messages_sent = 0
        #: Drops from sampled packet loss (base ``loss_rate`` plus any
        #: fault-injected link loss).
        self.messages_lost = 0
        #: Drops because the destination is offline or unknown.
        self.messages_undeliverable = 0
        #: Drops from scheduled fault cuts (network splits, byzantine
        #: withholding) — see :mod:`repro.faults`.
        self.messages_blocked = 0
        #: Fault hook: an object with ``judge(src, src_region, dst,
        #: dst_region, message) -> (verdict, scale, extra)`` — attached
        #: by :class:`repro.faults.injector.FaultInjector`; ``None``
        #: keeps the transport on the exact pre-fault code path.
        self.faults = None
        #: When True, record block first-transmission and delivery times
        #: for the RobustnessReport's propagation-delay metric.
        self.track_block_propagation = False
        self._block_first_sent: Dict[bytes, float] = {}
        self._block_delivery_delays: List[float] = []
        self._upgrade_log: List[Tuple[float, str]] = []

    # -- membership -----------------------------------------------------------

    def add_node(self, node: FullNode) -> FullNode:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        node.network = self
        return node

    def remove_node(self, name: str) -> None:
        node = self.nodes.pop(name, None)
        if node is None:
            return
        node.go_offline()
        node.network = None
        # Evict the departed name from every live peer set and routing
        # table: a census must not count links to a node that no longer
        # exists (the old behaviour silently retained them).
        for other in self.nodes.values():
            other.peers.discard(name)
            other.routing.remove(name)

    @property
    def messages_dropped(self) -> int:
        """Deprecated aggregate of every drop class.

        Kept for callers that predate the split into
        :attr:`messages_lost` / :attr:`messages_undeliverable` /
        :attr:`messages_blocked`; new code (the fault-sweep metrics in
        particular) should read the specific counters.
        """
        warnings.warn(
            "Network.messages_dropped is deprecated; read messages_lost, "
            "messages_undeliverable, and messages_blocked instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return (
            self.messages_lost
            + self.messages_undeliverable
            + self.messages_blocked
        )

    def note_upgrade(self, node_name: str) -> None:
        self._upgrade_log.append((self.sim.now, node_name))

    @property
    def upgrade_log(self) -> List[Tuple[float, str]]:
        return list(self._upgrade_log)

    # -- transport --------------------------------------------------------------

    def _trace_drop(
        self, kind: str, source: str, destination: str, message: Message
    ) -> None:
        self._tracer.emit(
            self.sim.now,
            kind,
            src=source,
            dst=destination,
            type=type(message).__name__,
        )

    def _traced_receive(self, target: FullNode, message: Message) -> None:
        """Delivery trampoline used only when a tracer is attached.

        Scheduled in place of ``target.receive`` so ``msg.deliver`` is
        emitted at the *delivery* timestamp; the simulator trajectory is
        identical either way (same delay, same RNG draws).
        """
        self._tracer.emit(
            self.sim.now,
            "msg.deliver",
            dst=target.name,
            type=type(message).__name__,
        )
        target.receive(message)

    def send(self, source: str, destination: str, message: Message) -> None:
        """Deliver ``message`` after a sampled latency (maybe drop it)."""
        if (
            self.use_fast_path
            and self._plain_obs
            and self.faults is None
            and not self.loss_rate
            and not self.track_block_propagation
        ):
            # Plain fast path: no faults, tracing, metrics, loss, or
            # propagation bookkeeping installed.  Same lookups, same
            # single latency draw on ``sim_rng`` (the inline sampler is
            # probe-verified to consume draws exactly like the library
            # one), same (time, seq) enqueue — trajectory-identical to
            # the full path below, minus a dozen dead branch tests and
            # up to three call frames per message.
            nodes = self.nodes
            target = nodes.get(destination)
            if target is None or not target.online:
                self.messages_undeliverable += 1
                return
            self.messages_sent += 1
            rng = self.sim_rng
            ln = self._ln_params
            if ln is not None:
                random_ = rng.random
                while True:
                    u1 = random_()
                    u2 = 1.0 - random_()
                    z = _NV_MAGICCONST * (u1 - 0.5) / u2
                    if z * z / 4.0 <= -_log(u2):
                        break
                delay = _exp(ln[0] + z * ln[1])
            else:
                source_node = nodes.get(source)
                if self._geo_latency and source_node:
                    delay = self.latency.delay_between(
                        source_node.region, target.region, rng
                    )
                else:
                    delay = self.latency.sample(rng)
            sim = self.sim
            if type(sim) is Simulator and sim.obs is None and 0.0 <= delay < _INF:
                # Inline Simulator.schedule's obs-disabled hot body.
                # Only for the exact base class — subclasses and the
                # calendar-queue engine own their insert discipline.
                seq = next(sim._sequence)
                handle = _new_handle(EventHandle)
                handle.time = time = sim.now + delay
                handle.callback = target.receive
                handle.args = (message,)
                handle.cancelled = False
                handle.seq = seq
                _heappush(sim._queue, (time, seq, handle))
            else:
                sim.schedule(delay, target.receive, message)
            return
        target = self.nodes.get(destination)
        if target is None or not target.online:
            self.messages_undeliverable += 1
            if self._ctr_undeliverable is not None:
                self._ctr_undeliverable.inc()
            if self._tracer is not None:
                self._trace_drop("msg.undeliverable", source, destination, message)
            return
        if self.loss_rate and self.sim_rng.random() < self.loss_rate:
            self.messages_lost += 1
            if self._ctr_lost is not None:
                self._ctr_lost.inc()
            if self._tracer is not None:
                self._trace_drop("msg.lost", source, destination, message)
            return
        source_node = self.nodes.get(source)
        scale, extra = 1.0, 0.0
        if self.faults is not None:
            verdict, scale, extra = self.faults.judge(
                source,
                source_node.region if source_node is not None else "",
                destination,
                target.region,
                message,
            )
            if verdict == "blocked":
                self.messages_blocked += 1
                if self._ctr_blocked is not None:
                    self._ctr_blocked.inc()
                if self._tracer is not None:
                    self._trace_drop("msg.blocked", source, destination, message)
                return
            if verdict == "lost":
                self.messages_lost += 1
                if self._ctr_lost is not None:
                    self._ctr_lost.inc()
                if self._tracer is not None:
                    self._trace_drop("msg.lost", source, destination, message)
                return
        self.messages_sent += 1
        if self._ctr_sent is not None:
            self._ctr_sent.inc()
        if self._geo_latency and source_node:
            delay = self.latency.delay_between(
                source_node.region, target.region, self.sim_rng
            )
        else:
            delay = self.latency.sample(self.sim_rng)
        delay = delay * scale + extra
        if self._hist_delay is not None:
            self._hist_delay.observe(delay)
        if self.track_block_propagation and isinstance(message, NewBlock):
            key = bytes(message.block.block_hash)
            first = self._block_first_sent.setdefault(key, self.sim.now)
            self._block_delivery_delays.append(self.sim.now + delay - first)
        if self._tracer is not None:
            self._tracer.emit(
                self.sim.now,
                "msg.send",
                src=source,
                dst=destination,
                type=type(message).__name__,
                delay=delay,
            )
            self.sim.schedule(delay, self._traced_receive, target, message)
            return
        self.sim.schedule(delay, target.receive, message)

    # -- delivery-wave kernels ---------------------------------------------------

    def send_wave(
        self, source: str, destinations: Iterable[str], message: Message
    ) -> None:
        """Deliver one ``message`` to many recipients in one kernel call.

        Semantically identical to ``for d in destinations: send(source,
        d, message)`` — same per-recipient drop ladder, same counters,
        and the same RNG draws in the same order (loss draw, fault
        judgement, latency draw, per recipient, in iteration order) —
        but with every invariant lookup hoisted out of the loop: the
        node map, the RNG's ``random`` method, the latency parameters,
        the fault judge, the ``isinstance(message, NewBlock)`` test, and
        the counter flushes (accumulated locally, written back once per
        wave).  Gossip fan-outs (block relay, announcements, tx relay)
        are the hot waves; at 40-node partition rates this is most of
        the transport's per-message overhead.

        With the fast path disabled (the benchmark reference arm) or
        any tracer/metrics attached, it literally *is* the send loop,
        so observed runs and the reference arm keep the seed-state
        behaviour to the byte.
        """
        if not destinations:
            return
        if not (self.use_fast_path and self._plain_obs):
            for destination in destinations:
                self.send(source, destination, message)
            return
        if (
            self.faults is None
            and not self.loss_rate
            and not self.track_block_propagation
        ):
            self._send_wave_plain(source, destinations, message)
        else:
            self._send_wave_general(source, destinations, message)

    def _send_wave_plain(
        self, source: str, destinations: Iterable[str], message: Message
    ) -> None:
        """Wave kernel for the no-loss / no-faults / no-tracking case."""
        nodes = self.nodes
        sim = self.sim
        rng = self.sim_rng
        random_ = rng.random
        latency = self.latency
        ln = self._ln_params
        geo_jitter = self._geo_jitter
        source_node = nodes.get(source)
        geo = self._geo_latency and source_node is not None
        src_region = source_node.region if geo else ""
        base_map = latency.base if geo else None
        geo_default = latency.default_delay if geo else 0.12
        sample = latency.sample
        inline_sched = type(sim) is Simulator and sim.obs is None
        if inline_sched:
            queue = sim._queue
            seq_iter = sim._sequence
            now = sim.now
            # One shared args tuple per wave: handles never mutate it.
            args = (message,)
        sent = 0
        undeliverable = 0
        try:
            for destination in destinations:
                target = nodes.get(destination)
                if target is None or not target.online:
                    undeliverable += 1
                    continue
                sent += 1
                if ln is not None:
                    while True:
                        u1 = random_()
                        u2 = 1.0 - random_()
                        z = _NV_MAGICCONST * (u1 - 0.5) / u2
                        if z * z / 4.0 <= -_log(u2):
                            break
                    delay = _exp(ln[0] + z * ln[1])
                elif geo:
                    if geo_jitter is not None:
                        # delay_between == base * lognormvariate(0, jitter);
                        # exp(0.0 + z*jitter) is bit-equal to the library's
                        # exp(mu + z*sigma) with mu = 0.0.
                        while True:
                            u1 = random_()
                            u2 = 1.0 - random_()
                            z = _NV_MAGICCONST * (u1 - 0.5) / u2
                            if z * z / 4.0 <= -_log(u2):
                                break
                        delay = base_map.get(
                            (src_region, target.region), geo_default
                        ) * _exp(z * geo_jitter)
                    else:
                        delay = latency.delay_between(
                            src_region, target.region, rng
                        )
                else:
                    delay = sample(rng)
                if inline_sched and 0.0 <= delay < _INF:
                    seq = next(seq_iter)
                    handle = _new_handle(EventHandle)
                    handle.time = time = now + delay
                    handle.callback = target.receive
                    handle.args = args
                    handle.cancelled = False
                    handle.seq = seq
                    _heappush(queue, (time, seq, handle))
                else:
                    # Degenerate delay or a non-base-class engine:
                    # schedule() validates and raises exactly like the
                    # per-send path would.
                    sim.schedule(delay, target.receive, message)
        finally:
            # Counter writes batched per wave; the finally keeps the
            # tallies exact even if a sampler overflows mid-wave.
            if sent:
                self.messages_sent += sent
            if undeliverable:
                self.messages_undeliverable += undeliverable

    def _send_wave_general(
        self, source: str, destinations: Iterable[str], message: Message
    ) -> None:
        """Wave kernel for the loss / faults / propagation-tracking case.

        The chaos scenarios live here: ``faults`` stays attached for the
        whole run and block-propagation tracking is on, so the plain
        kernel never fires.  The ladder below is the full :meth:`send`
        branch ladder with the per-message invariants hoisted — the
        fault judge, loss rate, ``NewBlock`` test, and the propagation
        book-keeping dict — drawing from ``sim_rng`` and the fault
        injector's RNG in exactly the per-send order.
        """
        nodes = self.nodes
        sim = self.sim
        rng = self.sim_rng
        random_ = rng.random
        loss_rate = self.loss_rate
        faults = self.faults
        judge = faults.judge if faults is not None else None
        latency = self.latency
        ln = self._ln_params
        sample = latency.sample
        source_node = nodes.get(source)
        src_region = source_node.region if source_node is not None else ""
        geo = self._geo_latency and source_node is not None
        schedule = sim.schedule
        now = sim.now
        track = self.track_block_propagation and isinstance(message, NewBlock)
        if track:
            key = bytes(message.block.block_hash)
            first_sent = self._block_first_sent
            delivery_delays = self._block_delivery_delays
        inline_sched = type(sim) is Simulator and sim.obs is None
        if inline_sched:
            queue = sim._queue
            seq_iter = sim._sequence
            # One shared args tuple per wave: handles never mutate it.
            args = (message,)
        sent = 0
        lost = 0
        undeliverable = 0
        blocked = 0
        try:
            for destination in destinations:
                target = nodes.get(destination)
                if target is None or not target.online:
                    undeliverable += 1
                    continue
                if loss_rate and random_() < loss_rate:
                    lost += 1
                    continue
                scale, extra = 1.0, 0.0
                if judge is not None:
                    verdict, scale, extra = judge(
                        source, src_region, destination, target.region, message
                    )
                    if verdict == "blocked":
                        blocked += 1
                        continue
                    if verdict == "lost":
                        lost += 1
                        continue
                sent += 1
                if ln is not None:
                    while True:
                        u1 = random_()
                        u2 = 1.0 - random_()
                        z = _NV_MAGICCONST * (u1 - 0.5) / u2
                        if z * z / 4.0 <= -_log(u2):
                            break
                    delay = _exp(ln[0] + z * ln[1])
                elif geo:
                    delay = latency.delay_between(
                        src_region, target.region, rng
                    )
                else:
                    delay = sample(rng)
                delay = delay * scale + extra
                if track:
                    first = first_sent.setdefault(key, now)
                    delivery_delays.append(now + delay - first)
                if inline_sched and 0.0 <= delay < _INF:
                    seq = next(seq_iter)
                    handle = _new_handle(EventHandle)
                    handle.time = time = now + delay
                    handle.callback = target.receive
                    handle.args = args
                    handle.cancelled = False
                    handle.seq = seq
                    _heappush(queue, (time, seq, handle))
                else:
                    # Degenerate delay or a non-base-class engine:
                    # schedule() validates and raises exactly like the
                    # per-send path would.
                    schedule(delay, target.receive, message)
        finally:
            if sent:
                self.messages_sent += sent
            if lost:
                self.messages_lost += lost
            if undeliverable:
                self.messages_undeliverable += undeliverable
            if blocked:
                self.messages_blocked += blocked

    # -- bootstrap ---------------------------------------------------------------

    def bootstrap_mesh(self, target_degree: int = 8) -> None:
        """Seed routing tables and dial an initial random mesh.

        Every node learns a random subset of the population (as if from
        bootnodes + discovery walks) and dials up to ``target_degree``
        peers.  Handshakes then run through the simulator.
        """
        names = list(self.nodes)
        for node in self.nodes.values():
            sample_size = min(len(names) - 1, max(target_degree * 3, 16))
            for peer_name in self.sim_rng.sample(names, min(len(names), sample_size + 1)):
                if peer_name != node.name:
                    node.routing.observe(peer_name)
        for node in self.nodes.values():
            candidates = node.routing.random_peers(target_degree, node.rng)
            for peer_name in candidates:
                node.dial(peer_name)

    def bootstrap_from_topology(
        self,
        topology,
        extra_routing: int = 16,
        apply_regions: bool = True,
    ) -> None:
        """Dial an explicit edge list instead of a random mesh.

        ``topology`` is a :class:`repro.net.topology.BuiltTopology`: its
        edges are dialed once each (from the lexicographically smaller
        endpoint; the handshake makes the link mutual), and its region
        assignment — if any — overrides each node's ``region`` so
        geo-clustered graphs line up with :class:`GeographicLatency`.

        Routing tables are seeded with each node's topology neighbors
        plus ``extra_routing`` random *other* nodes, sampled from the
        population **excluding the node itself** — unlike
        :meth:`bootstrap_mesh`, which samples ``sample_size + 1`` names
        including the node and so hands nodes that don't draw themselves
        one extra candidate.  Here every node observes exactly its
        neighbors plus ``extra_routing`` extras (fewer only when the
        population is too small), which keeps later redial-driven
        discovery comparable across topology families.

        Nodes named by the topology must already be registered; network
        nodes *not* named by the topology (observers, monitors) are left
        untouched.
        """
        names = list(topology.names)
        missing = [name for name in names if name not in self.nodes]
        if missing:
            raise ValueError(
                f"topology names absent from network: {missing[:5]!r}"
            )
        regions = topology.regions if apply_regions else None
        if regions:
            for name in names:
                self.nodes[name].region = regions[name]
        neighbors = topology.neighbors()
        for name in names:
            node = self.nodes[name]
            for peer_name in neighbors.get(name, ()):
                node.routing.observe(peer_name)
            others = [other for other in names if other != name]
            for peer_name in self.sim_rng.sample(
                others, min(len(others), extra_routing)
            ):
                node.routing.observe(peer_name)
        for a, b in topology.edges:
            self.nodes[a].dial(b)

    def schedule_redial_loop(self, interval: float = 30.0) -> None:
        """Keep under-connected nodes dialing — models discovery churn.

        This loop is why ETC's node count *recovers* over the two weeks
        after the fork in the scenario: once like-minded peers exist,
        discovery (which is fork-blind) eventually finds them.
        """

        def redial() -> None:
            for node in self.nodes.values():
                if not node.online:
                    continue
                deficit = node.max_peers // 2 - len(node.peers)
                if deficit > 0:
                    for peer_name in node.routing.random_peers(
                        deficit, node.rng
                    ):
                        node.dial(peer_name)
            self.sim.schedule(interval, redial)

        self.sim.schedule(interval, redial)

    # -- resilience loops -------------------------------------------------------

    def schedule_liveness_loop(self, interval: float = 45.0) -> None:
        """Periodic peer liveness: each node pings its peers and evicts
        the unresponsive (see :meth:`FullNode.ping_peers`).

        Without this, a crashed peer is retained in ``peers`` forever:
        the census over-counts mesh degree and gossip keeps wasting
        sends into a dead link.  Nodes without a
        :class:`~repro.net.node.ResiliencePolicy` ignore the tick, so
        arming the loop on a legacy population is a no-op.
        """

        def tick() -> None:
            for name in sorted(self.nodes):
                self.nodes[name].ping_peers()
            self.sim.schedule(interval, tick)

        self.sim.schedule(interval, tick)

    def schedule_gossip_heal_loop(self, interval: float = 120.0) -> None:
        """Periodic gossip repair under sustained loss.

        Each node re-announces its head hash (peers that missed the
        push pull the body) and re-relays a bounded sample of pending
        transactions — degraded-mode gossip: slower and chattier, but
        convergent while messages keep vanishing.  Policy-less nodes
        ignore the tick.
        """

        def tick() -> None:
            for name in sorted(self.nodes):
                node = self.nodes[name]
                node.announce_head()
                node.rebroadcast_transactions()
            self.sim.schedule(interval, tick)

        self.sim.schedule(interval, tick)

    # -- measurement ---------------------------------------------------------------

    def mean_block_propagation_delay(self) -> Optional[float]:
        """Mean seconds from first transmission to each full-block
        delivery, or None when tracing was off / nothing propagated."""
        if not self._block_delivery_delays:
            return None
        return sum(self._block_delivery_delays) / len(self._block_delivery_delays)

    def census(self) -> NetworkCensus:
        """Group online nodes by their current network allegiance.

        Below the fork height all nodes share one group (the pre-fork
        network); above it, nodes group by canonical fork-block hash —
        i.e. by which chain they actually follow, not by what their
        configuration claims.
        """
        members: Dict[str, List[str]] = {}
        peer_totals: Dict[str, int] = {}
        for node in self.nodes.values():
            if not node.online:
                continue
            fork_hash = node.fork_block_hash()
            if fork_hash is None:
                group = "pre-fork"
            else:
                group = node.network_name
            members.setdefault(group, []).append(node.name)
            peer_totals[group] = peer_totals.get(group, 0) + len(node.peers)
        peer_means = {
            group: peer_totals[group] / len(names)
            for group, names in members.items()
            if names
        }
        return NetworkCensus(self.sim.now, members, peer_means)

    def census_by_fork_hash(self) -> Dict[Optional[Hash32], int]:
        """Raw partition map: fork-block hash -> node count."""
        counts: Dict[Optional[Hash32], int] = {}
        for node in self.nodes.values():
            if node.online:
                key = node.fork_block_hash()
                counts[key] = counts.get(key, 0) + 1
        return counts

    def mean_peer_count(self) -> float:
        online = [n for n in self.nodes.values() if n.online]
        if not online:
            return 0.0
        return sum(len(n.peers) for n in online) / len(online)

    def start_all_miners(self) -> None:
        for node in self.nodes.values():
            if node.mining_hashrate > 0:
                node.start_mining()
