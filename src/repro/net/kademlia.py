"""Kademlia routing: XOR-metric node discovery.

The paper notes (Section 2.2) that "Ethereum does use Kademlia's
peer-to-peer protocol to find peers to communicate with, but this is not a
part of the blockchain consensus protocol."  That separation matters for
the fork analysis: *discovery* keeps returning peers from both sides of the
partition (the DHT is fork-blind), and the split is enforced one layer up,
at the ``eth`` handshake.  Our :class:`RoutingTable` reproduces the real
structure — 256 k-buckets by XOR-distance prefix, least-recently-seen
eviction candidates, iterative lookups — so the post-fork churn (ETC nodes
repeatedly dialing ETH nodes found via discovery, only to be dropped at
handshake) emerges in the simulator the same way operators observed it.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..chain.crypto import keccak256

__all__ = ["node_id_digest", "xor_distance", "bucket_index", "RoutingTable"]

#: Bucket width (Kademlia's "k"): max peers retained per distance bucket.
BUCKET_SIZE = 16

_ID_BITS = 256


def node_id_digest(node_name: str) -> bytes:
    """The 256-bit DHT identity of a node (hash of its public name)."""
    return bytes(keccak256(b"node-id:" + node_name.encode("utf-8")))


def xor_distance(id_a: bytes, id_b: bytes) -> int:
    """Kademlia's metric: the ids XORed, read as an integer."""
    return int.from_bytes(id_a, "big") ^ int.from_bytes(id_b, "big")


def bucket_index(own_id: bytes, other_id: bytes) -> int:
    """Which k-bucket ``other_id`` falls in: floor(log2(distance)).

    Bucket i holds peers at distance [2^i, 2^(i+1)).  Raises for the
    self-distance (zero), which has no bucket.
    """
    distance = xor_distance(own_id, other_id)
    if distance == 0:
        raise ValueError("a node does not bucket itself")
    return distance.bit_length() - 1


class RoutingTable:
    """One node's view of the DHT: 256 k-buckets of peer names.

    Peers are stored by name; digests are derived on demand.  Buckets are
    kept in least-recently-seen order (index 0 = stalest), matching the
    eviction policy of the Kademlia paper the protocol cites.
    """

    def __init__(self, own_name: str, bucket_size: int = BUCKET_SIZE) -> None:
        self.own_name = own_name
        self.own_id = node_id_digest(own_name)
        self.bucket_size = bucket_size
        self._buckets: Dict[int, List[str]] = {}
        self._digests: Dict[str, bytes] = {}
        #: name -> bucket index.  ``observe`` runs once per received
        #: message, and the seed recomputed two 256-bit ``int.from_bytes``
        #: conversions, an XOR, and a ``bit_length`` on every call even
        #: though name -> index is immutable (both ids are digests of
        #: fixed names).  Never invalidated, same as ``_digests``.
        self._indices: Dict[str, int] = {}

    def _digest(self, name: str) -> bytes:
        digest = self._digests.get(name)
        if digest is None:
            digest = node_id_digest(name)
            self._digests[name] = digest
        return digest

    def observe(self, name: str) -> bool:
        """Record contact with ``name``; returns False if the bucket is
        full and the peer was not admitted (classic Kademlia keeps the
        old, long-lived entry — a Sybil defence)."""
        index = self._indices.get(name)
        if index is None:
            if name == self.own_name:
                return False
            index = bucket_index(self.own_id, self._digest(name))
            self._indices[name] = index
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = self._buckets[index] = []
        elif bucket and bucket[-1] == name:
            return True  # already most-recently-seen; refresh is a no-op
        if name in bucket:
            bucket.remove(name)
            bucket.append(name)  # refresh to most-recently-seen
            return True
        if len(bucket) < self.bucket_size:
            bucket.append(name)
            return True
        return False

    def observe_reference(self, name: str) -> bool:
        """The seed-state :meth:`observe` body, verbatim (modulo the
        digest memo it always had) — swapped in class-wide by
        :func:`repro.perf.reference.reference_event_loop` so the
        benchmark reference arm pays the original per-call index math."""
        if name == self.own_name:
            return False
        index = bucket_index(self.own_id, self._digest(name))
        bucket = self._buckets.setdefault(index, [])
        if name in bucket:
            bucket.remove(name)
            bucket.append(name)  # refresh to most-recently-seen
            return True
        if len(bucket) < self.bucket_size:
            bucket.append(name)
            return True
        return False

    def remove(self, name: str) -> None:
        for bucket in self._buckets.values():
            if name in bucket:
                bucket.remove(name)
                return

    def __contains__(self, name: str) -> bool:
        return any(name in bucket for bucket in self._buckets.values())

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def all_peers(self) -> List[str]:
        peers: List[str] = []
        for bucket in self._buckets.values():
            peers.extend(bucket)
        return peers

    def closest(self, target: bytes, count: int = BUCKET_SIZE) -> List[str]:
        """The ``count`` known peers closest to ``target`` (FindNode)."""
        return sorted(
            self.all_peers(),
            key=lambda name: xor_distance(self._digest(name), target),
        )[:count]

    def random_peers(self, count: int, rng: random.Random) -> List[str]:
        """A uniform sample for dialing (discovery walks approximate this)."""
        peers = self.all_peers()
        if len(peers) <= count:
            return peers
        return rng.sample(peers, count)

    def bucket_fill(self) -> Dict[int, int]:
        """bucket index -> occupancy (topology diagnostics in tests)."""
        return {index: len(bucket) for index, bucket in self._buckets.items() if bucket}
