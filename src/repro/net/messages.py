"""Wire-protocol messages (devp2p ``eth`` subprotocol, simplified).

The message set mirrors the real ``eth/63`` protocol closely enough that
the partition mechanics are faithful:

* :class:`Status` is exchanged at handshake and carries the genesis hash,
  protocol version, total difficulty, head hash — and, critically, the
  node's **fork block hash**: its canonical block at the DAO fork height.
  Real geth added exactly this check (``--support-dao-fork``) so that ETH
  and ETC nodes would drop each other instead of wasting sync bandwidth;
  this check is what turns a rule disagreement into a *network* partition.
* Blocks propagate by the two-tier announce scheme (full ``NewBlock`` to a
  random subset, ``NewBlockHashes`` to the rest) that Ethereum inherited
  from Bitcoin's relay behaviour.
* Transactions gossip via :class:`Transactions` — including, after the
  fork, transactions "echoed" from the sibling network (Figure 4), which
  travel as perfectly ordinary messages; nothing at the wire level marks a
  replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..chain.block import Block
from ..chain.transaction import SignedTransaction
from ..chain.types import Hash32

__all__ = [
    "Message",
    "Status",
    "Disconnect",
    "NewBlock",
    "NewBlockHashes",
    "GetBlocks",
    "Blocks",
    "Transactions",
    "Ping",
    "Pong",
    "FindNode",
    "Neighbors",
    "DisconnectReason",
]


@dataclass(frozen=True)
class Message:
    """Base class; ``sender_id`` is stamped by the transport."""

    sender_id: str


class DisconnectReason:
    USELESS_PEER = "useless-peer"
    BREACH_OF_PROTOCOL = "breach-of-protocol"
    INCOMPATIBLE_FORK = "incompatible-fork"
    TOO_MANY_PEERS = "too-many-peers"
    CLIENT_QUITTING = "client-quitting"


@dataclass(frozen=True)
class Status(Message):
    """Handshake: capability + chain identity advertisement."""

    protocol_version: int
    network_name: str
    genesis_hash: Hash32
    head_hash: Hash32
    total_difficulty: int
    #: Canonical hash at the DAO fork height, or None if the node has not
    #: reached it yet.  Nodes that have both passed the fork height and
    #: disagree on this hash disconnect with INCOMPATIBLE_FORK.
    fork_block_hash: Optional[Hash32] = None


@dataclass(frozen=True)
class Disconnect(Message):
    reason: str = DisconnectReason.CLIENT_QUITTING


@dataclass(frozen=True)
class NewBlock(Message):
    """Full block push (sent to a subset of peers)."""

    block: Block
    total_difficulty: int


@dataclass(frozen=True)
class NewBlockHashes(Message):
    """Hash announcement (sent to the remaining peers)."""

    hashes: Tuple[Hash32, ...]


@dataclass(frozen=True)
class GetBlocks(Message):
    """Request full blocks by hash (follow-up to an announcement)."""

    hashes: Tuple[Hash32, ...]


@dataclass(frozen=True)
class Blocks(Message):
    blocks: Tuple[Block, ...]


@dataclass(frozen=True)
class Transactions(Message):
    transactions: Tuple[SignedTransaction, ...]


# -- discovery (Kademlia / discv4) -----------------------------------------


@dataclass(frozen=True)
class Ping(Message):
    pass


@dataclass(frozen=True)
class Pong(Message):
    pass


@dataclass(frozen=True)
class FindNode(Message):
    """Ask for the peers closest (XOR metric) to ``target``."""

    target: bytes


@dataclass(frozen=True)
class Neighbors(Message):
    """Response to FindNode: up to k node ids."""

    node_ids: Tuple[str, ...]
