"""Gossip policy: how blocks and transactions fan out.

Ethereum propagates a new block by pushing the *full block* to a random
``sqrt(peers)`` subset and announcing just the *hash* to the rest, who pull
on demand.  The two-tier scheme bounds redundant bandwidth while keeping
propagation latency near the network diameter; it also sets the transient
fork rate that Section 2.1 describes, since two blocks found within one
propagation interval race each other across the mesh.

Transactions fan out to every peer not already known to have the
transaction.  After the July 2016 split this same mechanism is the carrier
of the replay attack: nothing distinguishes an echoed transaction from a
fresh one at the gossip layer.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Deque, Iterable, List, Sequence, Set, Tuple

__all__ = ["split_push_announce", "SeenCache"]


def split_push_announce(
    peer_names: Sequence[str], rng: random.Random
) -> Tuple[List[str], List[str]]:
    """Partition peers into (full-push targets, hash-announce targets).

    The push set is a uniform random sample of ceil(sqrt(n)) peers — the
    strategy geth uses for NewBlock vs NewBlockHashes.
    """
    peers = list(peer_names)
    if not peers:
        return [], []
    push_count = max(1, math.isqrt(len(peers)))
    if push_count * push_count < len(peers):
        push_count += 1  # ceil
    push = rng.sample(peers, min(push_count, len(peers)))
    push_set = set(push)
    announce = [name for name in peers if name not in push_set]
    return push, announce


class SeenCache:
    """A bounded set remembering recently seen identities (blocks/txs).

    Prevents gossip loops: a node relays an item at most once.  Eviction is
    FIFO, sized so that items older than any plausible propagation window
    fall out — matching the LRU caches real clients keep per peer.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._seen: Set[bytes] = set()
        self._order: Deque[bytes] = deque()

    def add(self, item: bytes) -> bool:
        """Record ``item``; returns True if it was new."""
        if item in self._seen:
            # bytes subclasses (Hash32) hash and compare as their value,
            # so membership needs no normalizing copy; only stored keys
            # are canonicalized below.
            return False
        key = bytes(item)
        self._seen.add(key)
        self._order.append(key)
        if len(self._order) > self.capacity:
            oldest = self._order.popleft()
            self._seen.discard(oldest)
        return True

    def __contains__(self, item: bytes) -> bool:
        return item in self._seen

    def __len__(self) -> int:
        return len(self._seen)

    def update(self, items: Iterable[bytes]) -> int:
        """Add many; returns how many were new."""
        return sum(1 for item in items if self.add(item))
