"""The sweep ledger: durable per-chunk state for resumable sweeps.

A chunked sweep (:mod:`repro.harness.sweeprun`) is only as survivable as
the record of what already happened.  The ledger is that record: one
WAL-mode SQLite file (same stack and idiom as
:class:`repro.data.resultstore.ResultStore`) holding one row per chunk
with a small state machine::

    pending ──claim──▶ leased ──complete──▶ done
       ▲                  │
       │                  ├──fail (attempts left)──▶ pending
       │                  └──fail (exhausted)──────▶ quarantined
       └──lease expiry / release / corrupt-artifact demotion

Claims are atomic (``BEGIN IMMEDIATE`` serialises writers), carry a
**lease** with an expiry timestamp, and pick the lowest-``seq`` claimable
chunk of the lowest unfinished stage — so several processes pointed at
the same ledger directory cooperate without coordination: each claims a
disjoint chunk, a crashed claimant's lease lapses and the chunk returns
to the claimable pool, and stage barriers (``run-all`` waves) are
respected because a stage opens only once every earlier stage is
terminal.

Nothing in here is part of the deterministic artifact surface: lease
timestamps and attempt counts are wall-clock bookkeeping.  The
determinism contract lives one level up — the per-chunk artifact digests
the ledger records are what the combine step verifies.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Sequence, Union

__all__ = [
    "SweepLedger",
    "ChunkRow",
    "ChunkDef",
    "ClaimedChunk",
    "LedgerError",
    "LedgerMismatch",
    "LedgerNeedsResume",
    "CHUNK_STATES",
    "LEDGER_SCHEMA_VERSION",
]

#: Bump on any table/column change; refuse files from a newer layout.
LEDGER_SCHEMA_VERSION = 1

#: Every state a chunk row may be in.
CHUNK_STATES = ("pending", "leased", "done", "failed", "quarantined")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    name  TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS chunks (
    chunk_id      TEXT PRIMARY KEY,     -- content address (sha-256 hex)
    seq           INTEGER NOT NULL,     -- canonical combine order
    stage         INTEGER NOT NULL,     -- barrier stage (run-all wave)
    label         TEXT NOT NULL,
    state         TEXT NOT NULL,        -- pending|leased|done|failed|quarantined
    owner         TEXT,                 -- current/last lease holder
    lease_expires REAL,                 -- wall-clock expiry of the lease
    attempts      INTEGER NOT NULL DEFAULT 0,  -- execution attempts begun
    failures      INTEGER NOT NULL DEFAULT 0,  -- attempts that ended in error
    digest        TEXT,                 -- artifact digest (done only)
    error         TEXT,                 -- last failure detail
    updated_at    REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS chunks_by_state ON chunks (state, stage, seq);
"""

_CHUNK_COLUMNS = (
    "chunk_id", "seq", "stage", "label", "state", "owner", "lease_expires",
    "attempts", "failures", "digest", "error", "updated_at",
)


class LedgerError(RuntimeError):
    """Base class for ledger usage errors."""


class LedgerMismatch(LedgerError):
    """The ledger on disk belongs to a different sweep."""


class LedgerNeedsResume(LedgerError):
    """The ledger has prior progress; attach with ``resume=True``."""


class ChunkDef(NamedTuple):
    """What :meth:`SweepLedger.register` needs to know about a chunk."""

    chunk_id: str
    seq: int
    stage: int
    label: str


class ChunkRow(NamedTuple):
    """One persisted chunk record."""

    chunk_id: str
    seq: int
    stage: int
    label: str
    state: str
    owner: Optional[str]
    lease_expires: Optional[float]
    attempts: int
    failures: int
    digest: Optional[str]
    error: Optional[str]
    updated_at: float


class ClaimedChunk(NamedTuple):
    """A successful :meth:`SweepLedger.claim`: the fresh row plus
    whether the claim took over another owner's lapsed lease."""

    row: ChunkRow
    expired_takeover: bool


class SweepLedger:
    """WAL-mode SQLite persistence for one sweep's chunk state machine."""

    BUSY_TIMEOUT_MS = 5000

    def __init__(self, path: Union[str, Path] = ":memory:") -> None:
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.execute(f"PRAGMA busy_timeout={self.BUSY_TIMEOUT_MS}")
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        with self._conn:
            self._conn.executescript(_SCHEMA)
            self._check_schema_version()

    def _check_schema_version(self) -> None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE name='schema_version'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO meta VALUES ('schema_version', ?)",
                (str(LEDGER_SCHEMA_VERSION),),
            )
            return
        version = int(row[0])
        if version > LEDGER_SCHEMA_VERSION:
            raise LedgerError(
                f"sweep ledger schema {version} is newer than this code "
                f"understands ({LEDGER_SCHEMA_VERSION})"
            )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "SweepLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- registration ------------------------------------------------------

    @property
    def sweep_key(self) -> Optional[str]:
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE name='sweep_key'"
            ).fetchone()
        return row[0] if row else None

    def register(
        self,
        sweep_key: str,
        chunks: Sequence[ChunkDef],
        resume: bool = False,
    ) -> int:
        """Bind the ledger to a sweep and ensure every chunk has a row.

        Returns the number of chunks already ``done`` (the resume
        credit).  A fresh ledger is claimed for ``sweep_key``; an
        existing one must carry the *same* key (else
        :class:`LedgerMismatch`) and, if any progress was recorded, the
        caller must opt in with ``resume=True`` (else
        :class:`LedgerNeedsResume` — the guard against two different
        invocations silently interleaving).
        """
        now = time.time()
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE name='sweep_key'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta VALUES ('sweep_key', ?)", (sweep_key,)
                )
            elif row[0] != sweep_key:
                raise LedgerMismatch(
                    f"ledger {self.path} belongs to sweep {row[0][:16]}..., "
                    f"not {sweep_key[:16]}...; use a fresh ledger directory"
                )
            else:
                (progressed,) = self._conn.execute(
                    "SELECT COUNT(*) FROM chunks WHERE state != 'pending'"
                ).fetchone()
                if progressed and not resume:
                    raise LedgerNeedsResume(
                        f"ledger {self.path} records prior progress "
                        f"({progressed} chunk(s) past pending); pass "
                        f"--resume to continue it"
                    )
            self._conn.executemany(
                "INSERT OR IGNORE INTO chunks"
                " (chunk_id, seq, stage, label, state, updated_at)"
                " VALUES (?,?,?,?,'pending',?)",
                [(c.chunk_id, c.seq, c.stage, c.label, now) for c in chunks],
            )
            (done,) = self._conn.execute(
                "SELECT COUNT(*) FROM chunks WHERE state='done'"
            ).fetchone()
        return done

    # -- the claim/complete/fail cycle -------------------------------------

    def claim(
        self,
        owner: str,
        lease_seconds: float,
        now: Optional[float] = None,
    ) -> Optional[ClaimedChunk]:
        """Atomically lease the next claimable chunk, or return ``None``.

        Claimable: ``pending``, or ``leased`` with an expired lease (the
        claimant died); restricted to the lowest stage that still has
        non-terminal chunks, so stage barriers hold across processes.
        The returned row already carries this claim (state ``leased``,
        ``attempts`` incremented).
        """
        now = time.time() if now is None else now
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                stage_row = self._conn.execute(
                    "SELECT MIN(stage) FROM chunks"
                    " WHERE state NOT IN ('done', 'quarantined')"
                ).fetchone()
                if stage_row is None or stage_row[0] is None:
                    self._conn.execute("COMMIT")
                    return None
                stage = stage_row[0]
                # A stage only opens once every earlier stage is terminal.
                (blockers,) = self._conn.execute(
                    "SELECT COUNT(*) FROM chunks WHERE stage < ?"
                    " AND state NOT IN ('done', 'quarantined')",
                    (stage,),
                ).fetchone()
                if blockers:  # pragma: no cover - stage is already the min
                    self._conn.execute("COMMIT")
                    return None
                row = self._conn.execute(
                    "SELECT chunk_id, state FROM chunks WHERE stage = ?"
                    " AND (state = 'pending'"
                    "      OR (state = 'leased' AND lease_expires < ?))"
                    " ORDER BY seq LIMIT 1",
                    (stage, now),
                ).fetchone()
                if row is None:
                    self._conn.execute("COMMIT")
                    return None
                chunk_id, prior_state = row
                self._conn.execute(
                    "UPDATE chunks SET state='leased', owner=?,"
                    " lease_expires=?, attempts=attempts+1, updated_at=?"
                    " WHERE chunk_id=?",
                    (owner, now + lease_seconds, now, chunk_id),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return ClaimedChunk(
            row=self.get(chunk_id),
            expired_takeover=(prior_state == "leased"),
        )

    def renew(
        self,
        chunk_id: str,
        owner: str,
        lease_seconds: float,
        now: Optional[float] = None,
    ) -> bool:
        """Extend a held lease (heartbeat).  False: the lease was lost."""
        now = time.time() if now is None else now
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "UPDATE chunks SET lease_expires=?, updated_at=?"
                " WHERE chunk_id=? AND owner=? AND state='leased'",
                (now + lease_seconds, now, chunk_id, owner),
            )
        return cursor.rowcount == 1

    def complete(self, chunk_id: str, owner: str, digest: str) -> bool:
        """Mark a leased chunk ``done``.  False: the lease was already
        stolen (a slow claimant racing a takeover) — results are
        identical by determinism, so the caller just moves on."""
        now = time.time()
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "UPDATE chunks SET state='done', digest=?, error=NULL,"
                " owner=?, lease_expires=NULL, updated_at=?"
                " WHERE chunk_id=? AND owner=? AND state='leased'",
                (digest, owner, now, chunk_id, owner),
            )
        return cursor.rowcount == 1

    def fail(
        self, chunk_id: str, owner: str, error: str, max_failures: int
    ) -> Optional[str]:
        """Record a failed execution; re-pend or quarantine.

        Returns the resulting state (``pending`` or ``quarantined``), or
        ``None`` when the lease had already been stolen.
        """
        now = time.time()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT failures FROM chunks WHERE chunk_id=? AND"
                    " owner=? AND state='leased'",
                    (chunk_id, owner),
                ).fetchone()
                if row is None:
                    self._conn.execute("COMMIT")
                    return None
                failures = row[0] + 1
                state = "pending" if failures <= max_failures else "quarantined"
                self._conn.execute(
                    "UPDATE chunks SET state=?, failures=?, error=?,"
                    " owner=NULL, lease_expires=NULL, updated_at=?"
                    " WHERE chunk_id=?",
                    (state, failures, error, now, chunk_id),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return state

    def release(self, chunk_id: str, owner: str) -> bool:
        """Voluntarily return a leased chunk to ``pending`` (graceful
        interrupt); the execution attempt is not counted as a failure."""
        now = time.time()
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "UPDATE chunks SET state='pending', owner=NULL,"
                " lease_expires=NULL, attempts=MAX(attempts-1, 0),"
                " updated_at=? WHERE chunk_id=? AND owner=?"
                " AND state='leased'",
                (now, chunk_id, owner),
            )
        return cursor.rowcount == 1

    def demote(self, chunk_id: str, reason: str) -> None:
        """Send a ``done`` chunk back to ``pending`` (its artifact
        vanished or failed verification on attach)."""
        now = time.time()
        with self._lock, self._conn:
            self._conn.execute(
                "UPDATE chunks SET state='pending', digest=NULL, error=?,"
                " owner=NULL, lease_expires=NULL, updated_at=?"
                " WHERE chunk_id=? AND state='done'",
                (reason, now, chunk_id),
            )

    # -- reads -------------------------------------------------------------

    def get(self, chunk_id: str) -> Optional[ChunkRow]:
        with self._lock:
            row = self._conn.execute(
                f"SELECT {', '.join(_CHUNK_COLUMNS)} FROM chunks"
                " WHERE chunk_id=?",
                (chunk_id,),
            ).fetchone()
        return ChunkRow(*row) if row else None

    def chunks(self) -> List[ChunkRow]:
        """Every chunk row, in canonical (``seq``) order."""
        with self._lock:
            rows = self._conn.execute(
                f"SELECT {', '.join(_CHUNK_COLUMNS)} FROM chunks"
                " ORDER BY seq"
            ).fetchall()
        return [ChunkRow(*row) for row in rows]

    def counts(self) -> Dict[str, int]:
        """Chunk totals by state (absent states map to 0)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) FROM chunks GROUP BY state"
            ).fetchall()
        payload = {state: 0 for state in CHUNK_STATES}
        payload.update(dict(rows))
        payload["total"] = sum(count for _, count in rows)
        return payload

    def all_terminal(self) -> bool:
        """True once every chunk is ``done`` or ``quarantined``."""
        with self._lock:
            (open_chunks,) = self._conn.execute(
                "SELECT COUNT(*) FROM chunks"
                " WHERE state NOT IN ('done', 'quarantined')"
            ).fetchone()
        return open_chunks == 0
