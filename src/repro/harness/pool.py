"""The worker pool: parallel job execution with timeouts and retries.

One OS process per in-flight job (bounded by ``workers``), results
returned over a pipe.  This deliberately is *not*
``multiprocessing.Pool``: that API cannot kill a hung worker — its
per-result timeout leaves the process running.  Here a job that blows
its deadline is terminated, its process discarded, and the job requeued
into a **fresh** worker with the same spec (hence the same seed, hence
the same answer) up to ``retries`` extra attempts before the manifest
records a ``timeout``/``failed`` job.  Crashed workers (a died process,
an unpicklable result) take the same retry path.

When ``workers <= 1``, or ``multiprocessing`` cannot start processes on
the host, the pool degrades to in-process serial execution with
identical results and manifest records (timeouts are best-effort there:
a job cannot be preempted from inside its own process, so each
*attempt's* duration is checked after it fails — matching the parallel
path's per-attempt deadline).

Failed attempts may optionally back off before requeueing
(``retry_backoff``): the delay is exponential with **deterministic
seeded jitter** — a pure function of the backoff seed, the job's cache
key, and the attempt number — so retries stop hammering a transiently
sick host without introducing run-to-run nondeterminism in scheduling
decisions.  The default of ``0.0`` keeps historic behaviour (immediate
requeue), and CI keeps it there.
"""

from __future__ import annotations

import random
import time
import traceback
from collections import deque
from typing import Any, List, NamedTuple, Optional, Sequence

from .cache import NullCache, ResultCache
from .jobs import JobSpec, execute_job
from .manifest import JobRecord
from .progress import NullProgress

__all__ = ["WorkerPool", "JobResult", "DEFAULT_TIMEOUT"]

#: Generous default: one full nine-month simulation fits comfortably.
DEFAULT_TIMEOUT = 900.0


class JobResult(NamedTuple):
    """A finished job: its spec, manifest record, and value (None on failure)."""

    spec: JobSpec
    record: JobRecord
    value: Any


class _Task:
    __slots__ = ("spec", "index", "attempts", "first_start", "not_before")

    def __init__(self, spec: JobSpec, index: int) -> None:
        self.spec = spec
        self.index = index
        self.attempts = 0
        self.first_start = None  # perf_counter at first launch
        self.not_before = None  # backoff gate for the next attempt


def _child_main(
    conn, spec: JobSpec, cache_dir: Optional[str], collect_metrics: bool = False
) -> None:
    """Worker entry point: run one job, ship (status, payload) back."""
    start = time.perf_counter()
    try:
        cache = ResultCache(cache_dir) if cache_dir else NullCache()
        outcome = execute_job(spec, cache, collect_metrics=collect_metrics)
        conn.send(
            (
                "ok",
                outcome.value,
                outcome.cache_hit,
                time.perf_counter() - start,
                outcome.metrics,
            )
        )
    except BaseException as exc:  # noqa: BLE001 - report, don't die silently
        detail = f"{type(exc).__name__}: {exc}"
        tail = traceback.format_exc(limit=3)
        try:
            conn.send(
                ("error", f"{detail}\n{tail}", False,
                 time.perf_counter() - start, None)
            )
        except Exception:
            pass
    finally:
        conn.close()


class WorkerPool:
    """Schedules :class:`JobSpec` batches; see the module docstring."""

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        timeout: Optional[float] = DEFAULT_TIMEOUT,
        retries: int = 1,
        progress=None,
        start_method: Optional[str] = None,
        collect_metrics: bool = False,
        retry_backoff: float = 0.0,
        backoff_seed: int = 0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        self.workers = workers
        self.cache_dir = str(cache_dir) if cache_dir else None
        self.timeout = timeout
        self.retries = retries
        #: Base delay (seconds) before the first retry; doubles per
        #: further retry, with deterministic seeded jitter.  0 = requeue
        #: immediately (the historic behaviour; CI keeps it there).
        self.retry_backoff = retry_backoff
        self.backoff_seed = backoff_seed
        #: When True, each executed (non-cached) job runs with a per-job
        #: metrics registry and its summary lands on the JobRecord.
        self.collect_metrics = collect_metrics
        self.progress = progress or NullProgress()
        self._ctx = None
        if workers > 1:
            self._ctx = self._probe_context(start_method)
            if self._ctx is None:
                self.progress.note(
                    "multiprocessing unavailable; falling back to serial"
                )
                self.workers = 1

    @staticmethod
    def _probe_context(start_method: Optional[str]):
        """A usable multiprocessing context, or None for serial fallback."""
        try:
            import multiprocessing
            from multiprocessing import connection  # noqa: F401

            ctx = (
                multiprocessing.get_context(start_method)
                if start_method
                else multiprocessing.get_context()
            )
            # Some hosts import multiprocessing fine but cannot create
            # primitives (missing /dev/shm, locked-down sandboxes).
            reader, writer = ctx.Pipe(duplex=False)
            reader.close()
            writer.close()
            return ctx
        except (ImportError, OSError, ValueError):
            return None

    # -- public API --------------------------------------------------------

    def backoff_delay(self, key: str, attempt: int) -> float:
        """Seconds to wait before attempt ``attempt`` (1-based) of the
        job with cache key ``key``.

        Pure function of ``(backoff_seed, key, attempt)``: exponential
        in the retry count with jitter drawn from a ``random.Random``
        seeded by those three values, uniformly in ``[0.5, 1.0)`` of the
        exponential step — every run of the same pool configuration
        backs the same job off by the same amount.
        """
        if self.retry_backoff <= 0 or attempt <= 1:
            return 0.0
        rng = random.Random(f"{self.backoff_seed}:{key}:{attempt}")
        step = self.retry_backoff * (2.0 ** (attempt - 2))
        return step * (0.5 + rng.random() / 2.0)

    def run(self, specs: Sequence[JobSpec]) -> List[JobResult]:
        """Execute every spec; results come back in input order."""
        specs = list(specs)
        self.progress.begin(len(specs))
        if self.workers <= 1 or self._ctx is None or len(specs) <= 1:
            results = self._run_serial(specs)
        else:
            results = self._run_parallel(specs)
        return results

    # -- serial fallback ---------------------------------------------------

    def _run_serial(self, specs: Sequence[JobSpec]) -> List[JobResult]:
        cache = (
            ResultCache(self.cache_dir) if self.cache_dir else NullCache()
        )
        results: List[JobResult] = []
        for spec in specs:
            self.progress.job_started(spec.label)
            start = time.perf_counter()
            attempts = 0
            error: Optional[str] = None
            value = None
            cache_hit = False
            metrics = None
            status = "failed"
            while attempts <= self.retries:
                attempts += 1
                delay = self.backoff_delay(spec.cache_key(), attempts)
                if delay > 0:
                    time.sleep(delay)
                attempt_start = time.perf_counter()
                try:
                    outcome = execute_job(
                        spec, cache, collect_metrics=self.collect_metrics
                    )
                    value = outcome.value
                    cache_hit = outcome.cache_hit
                    metrics = outcome.metrics
                    status = "ok"
                    error = None
                    break
                except Exception as exc:  # noqa: BLE001
                    error = f"{type(exc).__name__}: {exc}"
                    # Per-attempt deadline, matching the parallel path:
                    # a retry starts its clock fresh rather than being
                    # declared a timeout for its predecessors' sins.
                    elapsed = time.perf_counter() - attempt_start
                    if self.timeout is not None and elapsed > self.timeout:
                        status = "timeout"
                        break
            record = JobRecord(
                label=spec.label,
                kind=spec.kind,
                key=spec.cache_key(),
                status=status,
                cache_hit=cache_hit,
                wall_time=time.perf_counter() - start,
                attempts=attempts,
                error=error,
                metrics=metrics,
            )
            self.progress.job_finished(record)
            results.append(JobResult(spec, record, value))
        return results

    # -- parallel path -----------------------------------------------------

    def _launch(self, task: _Task, running: dict) -> None:
        reader, writer = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_child_main,
            args=(writer, task.spec, self.cache_dir, self.collect_metrics),
            daemon=True,
        )
        task.attempts += 1
        if task.first_start is None:
            task.first_start = time.perf_counter()
            self.progress.job_started(task.spec.label)
        process.start()
        # The child owns its end now; closing ours makes EOF detection
        # on a dead child reliable.
        writer.close()
        deadline = (
            time.perf_counter() + self.timeout
            if self.timeout is not None
            else None
        )
        running[reader] = (task, process, deadline)

    def _settle(
        self,
        task: _Task,
        status: str,
        value: Any,
        cache_hit: bool,
        error: Optional[str],
        results: dict,
        metrics: Optional[dict] = None,
    ) -> None:
        record = JobRecord(
            label=task.spec.label,
            kind=task.spec.kind,
            key=task.spec.cache_key(),
            status=status,
            cache_hit=cache_hit,
            wall_time=time.perf_counter() - task.first_start,
            attempts=task.attempts,
            error=error,
            metrics=metrics,
        )
        self.progress.job_finished(record)
        results[task.index] = JobResult(task.spec, record, value)

    def _retry_or_settle(
        self,
        task: _Task,
        status: str,
        error: str,
        pending: deque,
        results: dict,
    ) -> None:
        if task.attempts <= self.retries:
            delay = self.backoff_delay(
                task.spec.cache_key(), task.attempts + 1
            )
            task.not_before = (
                time.perf_counter() + delay if delay > 0 else None
            )
            pending.append(task)
        else:
            self._settle(task, status, None, False, error, results)

    def _next_ready(self, pending: deque, now: float) -> Optional[_Task]:
        """Pop the first task whose backoff gate has passed, preserving
        queue order among the rest; None if everyone is backing off."""
        for _ in range(len(pending)):
            task = pending[0]
            if task.not_before is None or task.not_before <= now:
                return pending.popleft()
            pending.rotate(-1)
        return None

    def _run_parallel(self, specs: Sequence[JobSpec]) -> List[JobResult]:
        from multiprocessing import connection

        pending: deque = deque(
            _Task(spec, index) for index, spec in enumerate(specs)
        )
        running: dict = {}
        results: dict = {}
        try:
            while pending or running:
                launch_now = time.perf_counter()
                while pending and len(running) < self.workers:
                    task = self._next_ready(pending, launch_now)
                    if task is None:
                        break
                    self._launch(task, running)
                if not running:
                    # Every pending task is waiting out its backoff.
                    time.sleep(0.01)
                    continue
                ready = connection.wait(list(running), timeout=0.1)
                for reader in ready:
                    task, process, _ = running.pop(reader)
                    try:
                        message = reader.recv()
                    except EOFError:
                        message = None
                    reader.close()
                    process.join()
                    if message is None:
                        self._retry_or_settle(
                            task,
                            "failed",
                            f"worker died (exitcode {process.exitcode})",
                            pending,
                            results,
                        )
                    elif message[0] == "ok":
                        _, value, cache_hit, _, metrics = message
                        self._settle(
                            task, "ok", value, cache_hit, None, results,
                            metrics=metrics,
                        )
                    else:
                        self._retry_or_settle(
                            task, "failed", message[1], pending, results
                        )
                now = time.perf_counter()
                for reader, (task, process, deadline) in list(running.items()):
                    if deadline is not None and now > deadline:
                        running.pop(reader)
                        process.terminate()
                        process.join()
                        reader.close()
                        self._retry_or_settle(
                            task,
                            "timeout",
                            f"exceeded {self.timeout:.0f}s deadline",
                            pending,
                            results,
                        )
        finally:
            for reader, (task, process, _) in running.items():
                process.terminate()
                process.join()
                reader.close()
        return [results[index] for index in sorted(results)]
