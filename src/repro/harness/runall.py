"""``run-all``: every figure plus the scoreboard in one parallel pass.

The dependency graph of the paper's artifacts is shallow but real:

    simulate ──┬── figure 1, 2, 3, 5
               ├── echoes ──── figure 4
               └──────────┬─── observations ─── (also needs partition)
    partition ────────────┘

so the orchestrator runs three waves through one :class:`WorkerPool`:
the two expensive roots first (simulation + partition scenario, in
parallel), then the echo workload (which loads the now-cached sim),
then all five figures and the observation scoreboard fanned out — each
a cheap cache-load plus analysis.  With a warm cache every wave is pure
cache hits and the whole pass is a few pickle loads.

Artifacts land in ``output_dir`` (``figureN.txt``/``.csv`` and
``observations.txt``); the run manifest (JSON) records every job's
cache key, hit/miss, wall time, and attempts.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..scenarios.partition_event import PartitionScenarioConfig
from ..sim.engine import ForkSimConfig
from .jobs import (
    JobSpec,
    echoes_spec,
    figure_spec,
    observations_spec,
    partition_spec,
    simulate_spec,
)
from .cache import ResultCache
from .manifest import RunManifest
from .pool import DEFAULT_TIMEOUT, WorkerPool
from .progress import NullProgress

__all__ = ["run_all", "build_waves", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".repro-cache"


def build_waves(
    sim_config: ForkSimConfig,
    partition_config: Optional[PartitionScenarioConfig] = None,
) -> List[List[JobSpec]]:
    """The three dependency waves described in the module docstring."""
    partition_config = partition_config or PartitionScenarioConfig()
    return [
        [simulate_spec(sim_config), partition_spec(partition_config)],
        [echoes_spec(sim_config)],
        [
            *[figure_spec(number, sim_config) for number in range(1, 6)],
            observations_spec(sim_config, partition_config),
        ],
    ]


def run_all(
    days: int = 150,
    seed: int = 2016_07_20,
    prefork_days: int = 7,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = DEFAULT_CACHE_DIR,
    output_dir: Union[str, Path] = "runs",
    manifest_path: Optional[Union[str, Path]] = None,
    timeout: Optional[float] = DEFAULT_TIMEOUT,
    retries: int = 1,
    sample_days: int = 7,
    progress=None,
    partition_config: Optional[PartitionScenarioConfig] = None,
    cache_max_bytes: Optional[int] = None,
) -> RunManifest:
    """Produce all five figures and the scoreboard; returns the manifest.

    ``cache_dir=None`` disables caching entirely (the ``--no-cache``
    path); every job then recomputes its inputs from scratch.
    ``cache_max_bytes`` bounds the cache after the run: oldest entries
    are evicted (LRU by mtime) until the total fits.
    """
    progress = progress or NullProgress()
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    manifest_path = Path(manifest_path or output_dir / "manifest.json")

    sim_config = ForkSimConfig(days=days, prefork_days=prefork_days, seed=seed)
    waves = build_waves(sim_config, partition_config)

    manifest = RunManifest(
        command=(
            f"run-all --days {days} --seed {seed} --jobs {jobs}"
            + (" --no-cache" if cache_dir is None else "")
        ),
        workers=jobs,
        cache_dir=str(cache_dir) if cache_dir else None,
        started_at=time.time(),
    )

    pool = WorkerPool(
        workers=jobs,
        cache_dir=str(cache_dir) if cache_dir else None,
        timeout=timeout,
        retries=retries,
        progress=progress,
    )

    start = time.perf_counter()
    values: Dict[str, object] = {}
    for wave in waves:
        for result in pool.run(wave):
            manifest.add(result.record)
            if result.record.status == "ok":
                values[result.spec.label] = result.value
    manifest.total_wall_time = time.perf_counter() - start

    # -- write artifacts ---------------------------------------------------
    for number in range(1, 6):
        figure = values.get(f"figure-{number}")
        if figure is None:
            continue
        text_path = output_dir / f"figure{number}.txt"
        text_path.write_text(figure.render(sample_days=sample_days) + "\n")
        figure.write_csv(output_dir / f"figure{number}.csv")
        manifest.outputs.append(str(text_path))
        manifest.outputs.append(str(output_dir / f"figure{number}.csv"))

    observations = values.get("observations")
    if observations is not None:
        scoreboard = "\n".join(obs.render() for obs in observations)
        obs_path = output_dir / "observations.txt"
        obs_path.write_text(scoreboard + "\n")
        manifest.outputs.append(str(obs_path))

    manifest.write(manifest_path)
    progress.note(f"manifest: {manifest_path}")

    if cache_dir is not None and cache_max_bytes is not None:
        pruned = ResultCache(cache_dir).prune(cache_max_bytes)
        if pruned.evicted:
            progress.note(
                f"cache pruned: evicted {pruned.evicted} entries "
                f"({pruned.bytes_evicted} bytes), "
                f"{pruned.remaining_bytes} bytes remain"
            )
    return manifest


def main(argv=None) -> int:  # pragma: no cover - thin convenience wrapper
    """Allow ``python -m repro.harness.runall`` during development."""
    from ..__main__ import main as cli_main

    return cli_main(["run-all", *(argv or sys.argv[1:])])
