"""``run-all``: every figure plus the scoreboard in one parallel pass.

The dependency graph of the paper's artifacts is shallow but real:

    simulate ──┬── figure 1, 2, 3, 5
               ├── echoes ──── figure 4
               └──────────┬─── observations ─── (also needs partition)
    partition ────────────┘

so the orchestrator runs three waves through one :class:`WorkerPool`:
the two expensive roots first (simulation + partition scenario, in
parallel), then the echo workload (which loads the now-cached sim),
then all five figures and the observation scoreboard fanned out — each
a cheap cache-load plus analysis.  With a warm cache every wave is pure
cache hits and the whole pass is a few pickle loads.

Artifacts land in ``output_dir`` (``figureN.txt``/``.csv`` and
``observations.txt``); the run manifest (JSON) records every job's
cache key, hit/miss, wall time, and attempts.
"""

from __future__ import annotations

import sys
import time
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..scenarios.partition_event import PartitionScenarioConfig
from ..sim.engine import ForkSimConfig
from .jobs import (
    JobSpec,
    echoes_spec,
    figure_spec,
    observations_spec,
    partition_spec,
    simulate_chunk_spec,
    simulate_spec,
)
from .cache import ResultCache
from .manifest import JobRecord, RunManifest
from .pool import DEFAULT_TIMEOUT, WorkerPool
from .progress import NullProgress
from .sweeprun import (
    EXIT_DEGRADED,
    EXIT_FAILED,
    EXIT_INTERRUPTED,
    EXIT_OK,
    ChunkedSweepResult,
    SweepRunner,
    plan_chunks,
    sweep_key_for,
)

__all__ = ["run_all", "run_all_chunked", "build_waves", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".repro-cache"


def build_waves(
    sim_config: ForkSimConfig,
    partition_config: Optional[PartitionScenarioConfig] = None,
    horizon_chunk_days: Optional[int] = None,
) -> List[List[JobSpec]]:
    """The three dependency waves described in the module docstring.

    With ``horizon_chunk_days`` set, the single ``simulate`` root is
    replaced by a chain of ``simulate-chunk`` jobs covering day ranges
    ``[0, k), [0, 2k), ...`` — each wave boundary is a barrier, so every
    chunk sees its predecessor's checkpoint already cached.  The first
    chunk shares its wave with the partition scenario (they are
    independent); the final chunk publishes the full simulation under
    the plain ``simulate`` cache key, so the downstream waves are
    identical either way.
    """
    partition_config = partition_config or PartitionScenarioConfig()
    tail = [
        [echoes_spec(sim_config)],
        [
            *[figure_spec(number, sim_config) for number in range(1, 6)],
            observations_spec(sim_config, partition_config),
        ],
    ]
    if horizon_chunk_days is None:
        return [
            [simulate_spec(sim_config), partition_spec(partition_config)],
            *tail,
        ]
    if horizon_chunk_days < 1:
        raise ValueError("horizon_chunk_days must be >= 1")
    uptos = list(
        range(horizon_chunk_days, sim_config.days, horizon_chunk_days)
    )
    if not uptos or uptos[-1] != sim_config.days:
        uptos.append(sim_config.days)
    chunk_specs = [
        simulate_chunk_spec(sim_config, upto, horizon_chunk_days)
        for upto in uptos
    ]
    return [
        [chunk_specs[0], partition_spec(partition_config)],
        *[[spec] for spec in chunk_specs[1:]],
        *tail,
    ]


def _write_value_artifacts(
    output_dir: Path, label: str, value: Any, sample_days: int
) -> List[str]:
    """Write the output files (if any) for one finished job's value.

    Figures produce ``figureN.txt``/``.csv``; the observation scoreboard
    produces ``observations.txt``; the root jobs (simulate, partition,
    echoes) only warm the cache and write nothing.  Returns the paths
    written, for the manifest's ``outputs`` list.
    """
    if label.startswith("figure-"):
        number = label.split("-", 1)[1]
        text_path = output_dir / f"figure{number}.txt"
        csv_path = output_dir / f"figure{number}.csv"
        text_path.write_text(value.render(sample_days=sample_days) + "\n")
        value.write_csv(csv_path)
        return [str(text_path), str(csv_path)]
    if label == "observations":
        scoreboard = "\n".join(obs.render() for obs in value)
        obs_path = output_dir / "observations.txt"
        obs_path.write_text(scoreboard + "\n")
        return [str(obs_path)]
    return []


def run_all(
    days: int = 150,
    seed: int = 2016_07_20,
    prefork_days: int = 7,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = DEFAULT_CACHE_DIR,
    output_dir: Union[str, Path] = "runs",
    manifest_path: Optional[Union[str, Path]] = None,
    timeout: Optional[float] = DEFAULT_TIMEOUT,
    retries: int = 1,
    sample_days: int = 7,
    progress=None,
    partition_config: Optional[PartitionScenarioConfig] = None,
    cache_max_bytes: Optional[int] = None,
    retry_backoff: float = 0.0,
) -> RunManifest:
    """Produce all five figures and the scoreboard; returns the manifest.

    ``cache_dir=None`` disables caching entirely (the ``--no-cache``
    path); every job then recomputes its inputs from scratch.
    ``cache_max_bytes`` bounds the cache after the run: oldest entries
    are evicted (LRU by mtime) until the total fits.
    """
    progress = progress or NullProgress()
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    manifest_path = Path(manifest_path or output_dir / "manifest.json")

    sim_config = ForkSimConfig(days=days, prefork_days=prefork_days, seed=seed)
    waves = build_waves(sim_config, partition_config)

    manifest = RunManifest(
        command=(
            f"run-all --days {days} --seed {seed} --jobs {jobs}"
            + (" --no-cache" if cache_dir is None else "")
        ),
        workers=jobs,
        cache_dir=str(cache_dir) if cache_dir else None,
        started_at=time.time(),
    )

    pool = WorkerPool(
        workers=jobs,
        cache_dir=str(cache_dir) if cache_dir else None,
        timeout=timeout,
        retries=retries,
        progress=progress,
        retry_backoff=retry_backoff,
    )

    start = time.perf_counter()
    values: Dict[str, object] = {}
    for wave in waves:
        for result in pool.run(wave):
            manifest.add(result.record)
            if result.record.status == "ok":
                values[result.spec.label] = result.value
    manifest.total_wall_time = time.perf_counter() - start

    # -- write artifacts ---------------------------------------------------
    for wave in waves:
        for spec in wave:
            value = values.get(spec.label)
            if value is not None:
                manifest.outputs.extend(
                    _write_value_artifacts(
                        output_dir, spec.label, value, sample_days
                    )
                )

    manifest.write(manifest_path)
    progress.note(f"manifest: {manifest_path}")

    if cache_dir is not None and cache_max_bytes is not None:
        pruned = ResultCache(cache_dir).prune(cache_max_bytes)
        if pruned.evicted:
            progress.note(
                f"cache pruned: evicted {pruned.evicted} entries "
                f"({pruned.bytes_evicted} bytes), "
                f"{pruned.remaining_bytes} bytes remain"
            )
    return manifest


# --------------------------------------------------------------------------
# the chunked, resumable path


def run_all_chunked(
    days: int = 150,
    seed: int = 2016_07_20,
    prefork_days: int = 7,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = DEFAULT_CACHE_DIR,
    output_dir: Union[str, Path] = "runs",
    manifest_path: Optional[Union[str, Path]] = None,
    timeout: Optional[float] = DEFAULT_TIMEOUT,
    retries: int = 1,
    sample_days: int = 7,
    progress=None,
    partition_config: Optional[PartitionScenarioConfig] = None,
    retry_backoff: float = 0.0,
    chunk_size: int = 2,
    resume: bool = False,
    max_quarantined: Optional[int] = None,
    ledger_dir: Optional[Union[str, Path]] = None,
    lease_seconds: float = 300.0,
    chunk_retries: int = 1,
    horizon_chunk_days: Optional[int] = None,
) -> ChunkedSweepResult:
    """``run_all`` through the sweep ledger: waves become stages.

    Each dependency wave maps to a ledger *stage*, so the barrier
    semantics survive chunking — no figure chunk can be claimed until
    every root-wave chunk is ``done``.  Figure/observation files are
    written as each chunk finishes (they are the chunk's real output);
    on ``resume`` the done chunks' files are already on disk and the
    combine step only re-stitches the manifest.

    ``horizon_chunk_days`` additionally splits the simulation root
    *within* its horizon into checkpointed ``simulate-chunk`` stages —
    a killed run resumes from the last finished day range instead of
    re-mining from day zero, and the stitched result is byte-identical
    to a single-shot run (the resume-digest contract of
    :class:`~repro.sim.checkpoint.ForkSimCheckpoint`).  Requires a
    cache: chunks hand checkpoints to their successors through it.
    """
    if horizon_chunk_days is not None and cache_dir is None:
        raise ValueError(
            "horizon_chunk_days requires a result cache; simulate "
            "chunks chain their checkpoints through it"
        )
    progress = progress or NullProgress()
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    manifest_path = Path(manifest_path or output_dir / "manifest.json")
    ledger_dir = Path(ledger_dir or output_dir / "run-all-ledger")

    sim_config = ForkSimConfig(days=days, prefork_days=prefork_days, seed=seed)
    waves = build_waves(
        sim_config, partition_config, horizon_chunk_days=horizon_chunk_days
    )
    salt = {
        "sweep": "run-all",
        "sim": asdict(sim_config),
        "partition": asdict(partition_config or PartitionScenarioConfig()),
    }
    if horizon_chunk_days is not None:
        salt["horizon_chunk_days"] = horizon_chunk_days
    chunks = plan_chunks(waves, chunk_size, salt=salt)
    sweep_key = sweep_key_for(chunks, salt=salt)

    pool = WorkerPool(
        workers=jobs,
        cache_dir=str(cache_dir) if cache_dir else None,
        timeout=timeout,
        retries=retries,
        progress=progress,
        retry_backoff=retry_backoff,
    )

    def summarize(chunk, results) -> Dict[str, Any]:
        outputs: List[str] = []
        for result in results:
            outputs.extend(
                _write_value_artifacts(
                    output_dir, result.spec.label, result.value, sample_days
                )
            )
        return {
            "outputs": outputs,
            "records": [asdict(result.record) for result in results],
        }

    runner = SweepRunner(
        ledger_dir,
        pool,
        summarize,
        lease_seconds=lease_seconds,
        chunk_retries=chunk_retries,
        max_quarantined=max_quarantined,
        progress=progress,
    )
    start = time.perf_counter()
    outcome = runner.run(chunks, sweep_key=sweep_key, resume=resume)

    if outcome.state == "interrupted":
        counts = outcome.counts
        progress.note(
            f"interrupted: {counts.get('done', 0)}/{counts.get('total', 0)}"
            f" chunk(s) done; resume with --resume"
        )
        return ChunkedSweepResult(
            state="interrupted", exit_code=EXIT_INTERRUPTED,
            error=outcome.error,
        )
    if outcome.state == "failed":
        return ChunkedSweepResult(
            state="failed", exit_code=EXIT_FAILED, error=outcome.error,
            quarantined=[
                {
                    "chunk_id": row.chunk_id,
                    "label": row.label,
                    "error": row.error,
                    "failures": row.failures,
                }
                for row in outcome.quarantined
            ],
        )

    manifest = RunManifest(
        command=(
            f"run-all --days {days} --seed {seed} --jobs {jobs}"
            f" --chunk-size {chunk_size}"
            + (
                f" --horizon-chunk-days {horizon_chunk_days}"
                if horizon_chunk_days is not None
                else ""
            )
            + (" --resume" if resume else "")
            + (" --no-cache" if cache_dir is None else "")
        ),
        workers=jobs,
        cache_dir=str(cache_dir) if cache_dir else None,
        started_at=time.time(),
    )
    for chunk, summary in outcome.summaries:
        for record in summary["records"]:
            manifest.add(JobRecord(**record))
        manifest.outputs.extend(summary["outputs"])
    quarantined_payload: List[Dict[str, Any]] = []
    for row in outcome.quarantined:
        chunk = next(c for c in chunks if c.chunk_id == row.chunk_id)
        quarantined_payload.append(
            {
                "chunk_id": row.chunk_id,
                "label": row.label,
                "error": row.error,
                "failures": row.failures,
                "jobs": [spec.label for spec in chunk.specs],
            }
        )
        for spec in chunk.specs:
            manifest.add(
                JobRecord(
                    label=spec.label,
                    kind=spec.kind,
                    key=spec.cache_key(),
                    status="failed",
                    cache_hit=False,
                    wall_time=0.0,
                    attempts=row.attempts,
                    error=f"chunk {row.chunk_id[:12]} quarantined: "
                          f"{row.error}",
                )
            )
    manifest.total_wall_time = time.perf_counter() - start
    manifest.write(manifest_path)
    progress.note(f"manifest: {manifest_path}")
    if outcome.state == "degraded":
        progress.note(
            f"run-all completed DEGRADED: {len(quarantined_payload)} "
            f"quarantined chunk(s)"
        )
    return ChunkedSweepResult(
        state=outcome.state,
        exit_code=EXIT_DEGRADED if outcome.state == "degraded" else EXIT_OK,
        manifest=manifest,
        quarantined=quarantined_payload,
    )


def main(argv=None) -> int:  # pragma: no cover - thin convenience wrapper
    """Allow ``python -m repro.harness.runall`` during development."""
    from ..__main__ import main as cli_main

    return cli_main(["run-all", *(argv or sys.argv[1:])])
