"""``topology-sweep``: the partition scenario across topology families.

The paper's stabilization-time conclusion — the minority mesh collapses
at the fork, then recovers as fork-blind discovery finds like-minded
peers — was reproduced on a uniform random mesh.  The measurement papers
(Gencer et al.; DEthna) say the real graph has heavy degree skew and geo
clustering, so the sweep re-runs the scenario once per topology family
(``topology-partition`` jobs) and, optionally, scores a DEthna-style
marked-transaction inference run per family (``topology-infer`` jobs).

Cells are independent harness jobs, so both the single-shot path and the
chunked/resumable path (DESIGN §10 ledger machinery) apply unchanged.
Artifacts land in ``output_dir``:

* ``topology.txt`` — one line per family (degree stats, loss, recovery
  verdict, inference precision/recall) plus a conclusion header;
* ``topology.csv`` — the same table for notebooks;
* ``topology.json`` — per-cell payloads + digests and the *sweep digest*
  (SHA-256 over the ordered per-cell digests) the CI smoke job pins.
"""

from __future__ import annotations

import csv
import hashlib
import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..net.topology import TOPOLOGY_KINDS, TopologySpec, build_topology
from ..scenarios.partition_event import PartitionResult, TopologyPartitionConfig
from ..scenarios.topology_inference import (
    TopologyInferenceConfig,
    TopologyInferenceResult,
)
from .faultsweep import sweep_digest
from .jobs import (
    JobSpec,
    canonical_json,
    topology_infer_spec,
    topology_partition_spec,
)
from .manifest import JobRecord, RunManifest
from .pool import DEFAULT_TIMEOUT, WorkerPool
from .progress import NullProgress
from .sweeprun import (
    EXIT_DEGRADED,
    EXIT_FAILED,
    EXIT_INTERRUPTED,
    EXIT_OK,
    ChunkedSweepResult,
    SweepRunner,
    plan_chunks,
    sweep_key_for,
)

__all__ = [
    "TopologySweepConfig",
    "build_topology_grid",
    "run_topology_sweep",
    "run_topology_sweep_chunked",
]

#: A sweep cell: ``(family, role)`` where role is ``"partition"`` or
#: ``"infer"``.
Cell = Tuple[str, str]


@dataclass
class TopologySweepConfig:
    """The family list plus the per-cell scenario shape."""

    num_nodes: int = 30
    num_miners: int = 8
    fork_block: int = 40
    post_fork_horizon: float = 3600.0
    census_interval: float = 120.0
    seed: int = 2016_07_20
    target_degree: int = 8
    #: Families swept, in order (each must be in ``TOPOLOGY_KINDS``).
    topologies: Tuple[str, ...] = ("uniform", "powerlaw", "geo")
    gamma: float = 2.2
    intra_bias: float = 0.7
    rewire_p: float = 0.1
    #: Also run the marked-transaction inference scenario per family.
    include_inference: bool = True
    infer_probes: int = 5
    #: Post-fork recovery threshold for the stabilization verdict.
    recovery_fraction: float = 0.9

    def __post_init__(self) -> None:
        unknown = [t for t in self.topologies if t not in TOPOLOGY_KINDS]
        if unknown:
            raise ValueError(
                f"unknown topology families {unknown}; "
                f"expected members of {TOPOLOGY_KINDS}"
            )
        # Eager validation: building each family's spec surfaces bad
        # graph parameters (gamma, degree, intra_bias, ...) at config
        # time — a usage error — instead of mid-sweep.
        for family in self.topologies:
            self.topology_spec(family)

    def topology_spec(self, family: str) -> TopologySpec:
        return TopologySpec(
            kind=family,
            num_nodes=self.num_nodes,
            target_degree=self.target_degree,
            seed=self.seed,
            gamma=self.gamma,
            intra_bias=self.intra_bias,
            rewire_p=self.rewire_p,
        )

    def cell_config(self, family: str) -> TopologyPartitionConfig:
        return TopologyPartitionConfig(
            num_nodes=self.num_nodes,
            num_miners=self.num_miners,
            fork_block=self.fork_block,
            post_fork_horizon=self.post_fork_horizon,
            census_interval=self.census_interval,
            seed=self.seed,
            target_degree=self.target_degree,
            topology=self.topology_spec(family).to_dict(),
            # Geo-clustered graphs exercise the strict geographic
            # transport; the others keep the paper's lognormal baseline.
            latency="geo" if family == "geo" else "lognormal",
        )

    def infer_config(self, family: str) -> TopologyInferenceConfig:
        return TopologyInferenceConfig(
            topology=self.topology_spec(family).to_dict(),
            seed=self.seed,
            probes_per_target=self.infer_probes,
        )


def build_topology_grid(
    config: TopologySweepConfig,
) -> List[Tuple[Cell, JobSpec]]:
    """One partition spec (plus optional inference spec) per family."""
    grid: List[Tuple[Cell, JobSpec]] = []
    for family in config.topologies:
        grid.append(
            ((family, "partition"), topology_partition_spec(config.cell_config(family)))
        )
        if config.include_inference:
            grid.append(
                ((family, "infer"), topology_infer_spec(config.infer_config(family)))
            )
    return grid


def _cell_digest(payload: Dict[str, Any]) -> str:
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()


def _partition_payload(
    config: TopologySweepConfig, family: str, result: PartitionResult
) -> Dict[str, Any]:
    spec = config.topology_spec(family)
    built = build_topology(spec)
    stabilization = result.stabilization_time(config.recovery_fraction)
    return {
        "family": family,
        "role": "partition",
        "topology": spec.to_dict(),
        "topology_digest": built.digest(),
        "degree_stats": built.degree_stats(),
        "fork_time": result.fork_time,
        "node_loss_fraction": result.node_loss_fraction(),
        "minimum_etc_reachable": result.minimum_etc_reachable(),
        "stabilization_time": stabilization,
        "stabilized": stabilization is not None,
        "handshake_refusals": result.handshake_refusals,
        "incompatible_disconnects": result.incompatible_disconnects,
        "snapshots": [asdict(snapshot) for snapshot in result.snapshots],
    }


def _infer_payload(
    family: str, result: TopologyInferenceResult
) -> Dict[str, Any]:
    return {"family": family, "role": "infer", **result.to_dict()}


def _cell_payload(
    config: TopologySweepConfig, cell: Cell, value: Any
) -> Dict[str, Any]:
    family, role = cell
    if role == "partition":
        payload = _partition_payload(config, family, value)
    else:
        payload = _infer_payload(family, value)
    return {
        "family": family,
        "role": role,
        "digest": _cell_digest(payload),
        "payload": payload,
    }


def _write_sweep_artifacts(
    output_dir: Path,
    manifest: RunManifest,
    config: TopologySweepConfig,
    cells: List[Dict[str, Any]],
    extra: Optional[Dict[str, Any]] = None,
) -> str:
    """Write ``topology.{txt,csv,json}`` in canonical grid order;
    returns the sweep digest."""
    by_cell = {(c["family"], c["role"]): c["payload"] for c in cells}
    rows: List[Dict[str, Any]] = []
    lines: List[str] = []
    stabilized = 0
    families_reported = 0
    for family in config.topologies:
        partition = by_cell.get((family, "partition"))
        if partition is None:
            continue
        families_reported += 1
        stats = partition["degree_stats"]
        stabilization = partition["stabilization_time"]
        if partition["stabilized"]:
            stabilized += 1
            verdict = f"RECOVERED in {stabilization:.0f}s"
        else:
            verdict = "NO RECOVERY"
        line = (
            f"{family:<10s} degree mean={stats['degree_mean']:.1f}"
            f" max={stats['degree_max']:.0f} gini={stats['degree_gini']:.2f}"
            f"  loss={partition['node_loss_fraction']:.2f}"
            f" min_reach={partition['minimum_etc_reachable']}"
            f"  {verdict}"
        )
        infer = by_cell.get((family, "infer"))
        if infer is not None:
            line += (
                f"  | infer P={infer['precision']:.2f}"
                f" R={infer['recall']:.2f}"
            )
        lines.append(line)
        rows.append(
            {
                "family": family,
                "degree_mean": stats["degree_mean"],
                "degree_max": stats["degree_max"],
                "degree_gini": stats["degree_gini"],
                "node_loss_fraction": partition["node_loss_fraction"],
                "minimum_etc_reachable": partition["minimum_etc_reachable"],
                "stabilization_time": (
                    "" if stabilization is None else stabilization
                ),
                "stabilized": partition["stabilized"],
                "infer_precision": "" if infer is None else infer["precision"],
                "infer_recall": "" if infer is None else infer["recall"],
            }
        )
    conclusion = (
        f"stabilization conclusion holds on {stabilized}/{families_reported}"
        f" topology families"
    )
    lines.insert(0, conclusion)

    text_path = output_dir / "topology.txt"
    text_path.write_text("\n".join(lines) + "\n" if lines else "")
    manifest.outputs.append(str(text_path))

    csv_path = output_dir / "topology.csv"
    if rows:
        with csv_path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)
        manifest.outputs.append(str(csv_path))

    digest = sweep_digest([c["digest"] for c in cells])
    json_path = output_dir / "topology.json"
    json_path.write_text(
        json.dumps(
            {
                "seed": config.seed,
                "sweep_digest": digest,
                "conclusion": {
                    "stabilized_families": stabilized,
                    "reported_families": families_reported,
                    "holds": stabilized == families_reported
                    and families_reported > 0,
                },
                "cells": cells,
                **(extra or {}),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    manifest.outputs.append(str(json_path))
    return digest


def run_topology_sweep(
    config: Optional[TopologySweepConfig] = None,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = ".repro-cache",
    output_dir: Union[str, Path] = "runs",
    manifest_path: Optional[Union[str, Path]] = None,
    timeout: Optional[float] = DEFAULT_TIMEOUT,
    retries: int = 1,
    progress=None,
    retry_backoff: float = 0.0,
) -> RunManifest:
    """Run the families, write the topology artifacts, return the
    manifest."""
    config = config or TopologySweepConfig()
    progress = progress or NullProgress()
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    manifest_path = Path(
        manifest_path or output_dir / "topology-sweep-manifest.json"
    )

    grid = build_topology_grid(config)

    manifest = RunManifest(
        command=(
            f"topology-sweep --nodes {config.num_nodes} --seed {config.seed}"
            f" --jobs {jobs}"
            + (" --no-cache" if cache_dir is None else "")
        ),
        workers=jobs,
        cache_dir=str(cache_dir) if cache_dir else None,
        started_at=time.time(),
    )

    pool = WorkerPool(
        workers=jobs,
        cache_dir=str(cache_dir) if cache_dir else None,
        timeout=timeout,
        retries=retries,
        progress=progress,
        retry_backoff=retry_backoff,
    )

    start = time.perf_counter()
    by_key: Dict[str, Any] = {}
    for result in pool.run([spec for _, spec in grid]):
        manifest.add(result.record)
        if result.record.status == "ok":
            by_key[result.spec.cache_key()] = result.value
    manifest.total_wall_time = time.perf_counter() - start

    cells: List[Dict[str, Any]] = []
    for cell, spec in grid:
        value = by_key.get(spec.cache_key())
        if value is not None:
            cells.append(_cell_payload(config, cell, value))
    _write_sweep_artifacts(output_dir, manifest, config, cells)

    manifest.write(manifest_path)
    progress.note(f"manifest: {manifest_path}")
    return manifest


# --------------------------------------------------------------------------
# the chunked, resumable path


def run_topology_sweep_chunked(
    config: Optional[TopologySweepConfig] = None,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = ".repro-cache",
    output_dir: Union[str, Path] = "runs",
    manifest_path: Optional[Union[str, Path]] = None,
    timeout: Optional[float] = DEFAULT_TIMEOUT,
    retries: int = 1,
    progress=None,
    retry_backoff: float = 0.0,
    chunk_size: int = 2,
    resume: bool = False,
    max_quarantined: Optional[int] = None,
    ledger_dir: Optional[Union[str, Path]] = None,
    lease_seconds: float = 300.0,
    chunk_retries: int = 1,
) -> ChunkedSweepResult:
    """Crash-safe topology sweep over the DESIGN §10 chunk ledger.

    Kill it anywhere and rerun with ``resume=True``: finished chunks are
    stitched from their persisted summaries and the combined
    ``topology.json`` sweep digest is byte-identical to the single-shot
    run.  Chunks that keep failing are quarantined (degraded, exit 4).
    """
    config = config or TopologySweepConfig()
    progress = progress or NullProgress()
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    manifest_path = Path(
        manifest_path or output_dir / "topology-sweep-manifest.json"
    )
    ledger_dir = Path(ledger_dir or output_dir / "sweep-ledger")

    grid = build_topology_grid(config)
    cell_by_key = {spec.cache_key(): (cell, spec) for cell, spec in grid}
    salt = {"sweep": "topology-sweep", "config": asdict(config)}
    chunks = plan_chunks([[spec for _, spec in grid]], chunk_size, salt=salt)
    sweep_key = sweep_key_for(chunks, salt=salt)

    pool = WorkerPool(
        workers=jobs,
        cache_dir=str(cache_dir) if cache_dir else None,
        timeout=timeout,
        retries=retries,
        progress=progress,
        retry_backoff=retry_backoff,
    )

    def summarize(chunk, results) -> Dict[str, Any]:
        summarized = []
        for result in results:
            cell, _ = cell_by_key[result.spec.cache_key()]
            summarized.append(_cell_payload(config, cell, result.value))
        return {
            "cells": summarized,
            "records": [asdict(result.record) for result in results],
        }

    runner = SweepRunner(
        ledger_dir,
        pool,
        summarize,
        lease_seconds=lease_seconds,
        chunk_retries=chunk_retries,
        max_quarantined=max_quarantined,
        progress=progress,
    )
    start = time.perf_counter()
    outcome = runner.run(chunks, sweep_key=sweep_key, resume=resume)

    if outcome.state == "interrupted":
        counts = outcome.counts
        progress.note(
            f"interrupted: {counts.get('done', 0)}/{counts.get('total', 0)}"
            f" chunk(s) done; resume with --resume"
        )
        return ChunkedSweepResult(
            state="interrupted", exit_code=EXIT_INTERRUPTED,
            error=outcome.error,
        )
    if outcome.state == "failed":
        return ChunkedSweepResult(
            state="failed", exit_code=EXIT_FAILED, error=outcome.error,
            quarantined=[
                {
                    "chunk_id": row.chunk_id,
                    "label": row.label,
                    "error": row.error,
                    "failures": row.failures,
                }
                for row in outcome.quarantined
            ],
        )

    # -- combine: stitch chunk summaries in canonical order ----------------
    manifest = RunManifest(
        command=(
            f"topology-sweep --nodes {config.num_nodes} --seed {config.seed}"
            f" --jobs {jobs} --chunk-size {chunk_size}"
            + (" --resume" if resume else "")
            + (" --no-cache" if cache_dir is None else "")
        ),
        workers=jobs,
        cache_dir=str(cache_dir) if cache_dir else None,
        started_at=time.time(),
    )
    by_cell: Dict[Cell, Dict[str, Any]] = {}
    for chunk, summary in outcome.summaries:
        for record in summary["records"]:
            manifest.add(JobRecord(**record))
        for cell_json in summary["cells"]:
            by_cell[(cell_json["family"], cell_json["role"])] = cell_json
    cells = [
        by_cell[cell] for cell, _ in grid if cell in by_cell
    ]
    quarantined_payload: List[Dict[str, Any]] = []
    for row in outcome.quarantined:
        chunk = next(c for c in chunks if c.chunk_id == row.chunk_id)
        quarantined_payload.append(
            {
                "chunk_id": row.chunk_id,
                "label": row.label,
                "error": row.error,
                "failures": row.failures,
                "cells": [spec.label for spec in chunk.specs],
            }
        )
        for spec in chunk.specs:
            manifest.add(
                JobRecord(
                    label=spec.label,
                    kind=spec.kind,
                    key=spec.cache_key(),
                    status="failed",
                    cache_hit=False,
                    wall_time=0.0,
                    attempts=row.attempts,
                    error=f"chunk {row.chunk_id[:12]} quarantined: "
                          f"{row.error}",
                )
            )
    manifest.total_wall_time = time.perf_counter() - start

    digest = _write_sweep_artifacts(
        output_dir,
        manifest,
        config,
        cells,
        extra={
            "degraded": outcome.state == "degraded",
            "quarantined": quarantined_payload,
            "ledger": {
                "chunks": outcome.counts,
                "metrics": outcome.metrics,
            },
        },
    )
    manifest.write(manifest_path)
    progress.note(f"manifest: {manifest_path}")
    if outcome.state == "degraded":
        progress.note(
            f"sweep completed DEGRADED: {len(quarantined_payload)} "
            f"quarantined chunk(s)"
        )
    return ChunkedSweepResult(
        state=outcome.state,
        exit_code=EXIT_DEGRADED if outcome.state == "degraded" else EXIT_OK,
        manifest=manifest,
        sweep_digest=digest,
        quarantined=quarantined_payload,
    )
