"""Content-addressed result cache for experiment jobs.

Completed job results are pickled under ``<root>/<key[:2]>/<key>.pkl``
where ``key`` is the job spec's canonical-JSON hash (see
:meth:`repro.harness.jobs.JobSpec.cache_key`).  Because the key covers
every calibration knob plus the seed, a cache hit is *definitionally*
the same experiment — the sim layer guarantees bit-identical results
per config (``tests/test_seed_determinism.py``), so loading the pickle
is equivalent to re-running the job.

Writes are atomic (temp file + ``os.replace``) so concurrent workers
computing the same key race benignly: last writer wins with an
identical payload.  A corrupt or truncated entry is treated as a miss
and evicted.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, List, NamedTuple, Tuple, Union

__all__ = ["ResultCache", "NullCache", "CacheStats", "PruneResult"]


class CacheStats:
    """Hit/miss/store counters plus byte accounting, shared by both
    cache flavours.  ``bytes_written`` totals the pickled payloads this
    instance stored; ``evictions``/``bytes_evicted`` count what
    :meth:`ResultCache.prune` removed."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.bytes_written = 0
        self.evictions = 0
        self.bytes_evicted = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "bytes_written": self.bytes_written,
            "evictions": self.evictions,
            "bytes_evicted": self.bytes_evicted,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"stores={self.stores}, bytes_written={self.bytes_written}, "
            f"evictions={self.evictions}, bytes_evicted={self.bytes_evicted})"
        )


class PruneResult(NamedTuple):
    """What one :meth:`ResultCache.prune` pass removed and kept."""

    evicted: int
    bytes_evicted: int
    remaining_bytes: int


class NullCache:
    """The ``--no-cache`` degenerate case: every lookup misses."""

    root = None

    def __init__(self) -> None:
        self.stats = CacheStats()

    def lookup(self, key: str) -> Tuple[bool, Any]:
        self.stats.misses += 1
        return False, None

    def store(self, key: str, value: Any) -> None:
        pass

    def contains(self, key: str) -> bool:
        return False


class ResultCache:
    """Pickle-backed content-addressed store on the local filesystem."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        """Two-level fan-out so one directory never holds every entry."""
        return self.root / key[:2] / f"{key}.pkl"

    def contains(self, key: str) -> bool:
        return self.path_for(key).exists()

    def lookup(self, key: str) -> Tuple[bool, Any]:
        """Returns ``(hit, value)``; corrupt entries count as misses."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return False, None
        except (pickle.UnpicklingError, EOFError, OSError, AttributeError):
            # Truncated write or a pickle from an incompatible code
            # version: evict and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            self.stats.misses += 1
            return False, None
        self.stats.hits += 1
        return True, value

    def store(self, key: str, value: Any) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                size = handle.tell()
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        self.stats.bytes_written += size

    # -- size accounting and eviction --------------------------------------

    def _entries(self) -> List[Tuple[float, int, Path]]:
        """Every live entry as ``(mtime, size, path)``; vanished files
        (a concurrent prune or eviction) are simply skipped."""
        entries: List[Tuple[float, int, Path]] = []
        if not self.root.exists():
            return entries
        for path in self.root.glob("*/*.pkl"):
            try:
                info = path.stat()
            except OSError:
                continue
            entries.append((info.st_mtime, info.st_size, path))
        return entries

    def total_bytes(self) -> int:
        """Bytes currently held by cache entries (excludes temp files)."""
        return sum(size for _, size, _ in self._entries())

    def prune(self, max_bytes: int) -> PruneResult:
        """Evict least-recently-modified entries until the cache fits.

        LRU-by-mtime: ``lookup`` never touches mtime, so this is
        least-recently-*stored* — good enough for a maintenance loop
        whose job is bounding disk, not perfect recency.  Races are
        benign: an entry deleted under us is counted as already gone,
        and a concurrent ``store`` of an evicted key simply recreates
        it on the next miss.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        entries = sorted(self._entries())
        total = sum(size for _, size, _ in entries)
        evicted = 0
        bytes_evicted = 0
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except FileNotFoundError:
                total -= size
                continue
            except OSError:
                continue
            total -= size
            evicted += 1
            bytes_evicted += size
        self.stats.evictions += evicted
        self.stats.bytes_evicted += bytes_evicted
        return PruneResult(evicted, bytes_evicted, total)
