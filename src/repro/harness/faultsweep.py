"""``fault-sweep``: a grid of chaos runs through the worker pool.

The robustness question is parametric: *how much* churn, loss, and
partition can the P2P layer absorb before recovery stops happening?  The
sweep answers it with a grid over three axes —

* **churn rate** (crash/restart events per simulated second),
* **link loss** (extra region-wide packet loss fraction),
* **split duration** (seconds every cross-region link stays cut),

each cell one :class:`~repro.scenarios.partition_event.ChaosPartitionConfig`
run as a ``chaos-partition`` job.  Cells are independent, so the sweep
reuses PR 2's machinery unchanged: content-addressed caching (a cell's
fault schedule is hashed into its cache key), the process pool, and the
run manifest.  The all-zero cell is kept as the control arm.

Artifacts land in ``output_dir``:

* ``robustness.txt`` — one rendered report line per cell;
* ``robustness.csv`` — the table the analysis notebooks read;
* ``robustness.json`` — per-cell report dicts + digests, plus the
  *sweep digest* (SHA-256 over the ordered per-cell digests) that the
  CI smoke job pins: identical seed + grid ⇒ identical sweep digest.
"""

from __future__ import annotations

import csv
import hashlib
import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..faults.report import RobustnessReport
from ..faults.schedule import ChurnBurst, FaultSchedule, LinkFault, SplitFault
from ..net.node import ResiliencePolicy
from ..scenarios.partition_event import ChaosPartitionConfig
from .jobs import JobSpec, chaos_partition_spec
from .manifest import JobRecord, RunManifest
from .pool import DEFAULT_TIMEOUT, WorkerPool
from .progress import NullProgress
from .sweeprun import (
    EXIT_DEGRADED,
    EXIT_FAILED,
    EXIT_INTERRUPTED,
    EXIT_OK,
    ChunkedSweepResult,
    SweepRunner,
    plan_chunks,
    sweep_key_for,
)

__all__ = [
    "FaultSweepConfig",
    "ChunkedSweepResult",
    "build_fault_grid",
    "run_fault_sweep",
    "run_fault_sweep_chunked",
    "sweep_digest",
]

#: Pre-fork settling time hard-coded in PartitionScenario.run().
_SETTLE_SECONDS = 120.0
#: Target block interval used by the scenario's fork-time estimate.
_BLOCK_INTERVAL = 14.0


@dataclass
class FaultSweepConfig:
    """The sweep grid plus the per-cell scenario shape."""

    num_nodes: int = 30
    num_miners: int = 8
    fork_block: int = 40
    post_fork_horizon: float = 3600.0
    census_interval: float = 120.0
    seed: int = 2016_07_20
    #: Grid axes (a cell per cross-product entry; zero disables the axis).
    churn_rates: Tuple[float, ...] = (0.0, 0.005)
    loss_rates: Tuple[float, ...] = (0.0, 0.1)
    split_durations: Tuple[float, ...] = (0.0, 600.0)
    #: Faults open this long after the expected fork time, so the grid
    #: stresses the *recovering* minority mesh, not the pre-fork one.
    fault_start_offset: float = 300.0
    #: Window length for churn and loss faults (splits use their axis).
    fault_duration: float = 900.0
    #: Give every node the resilience mechanisms (False = control
    #: population running the legacy protocol under fire).
    resilience: bool = True
    #: Per-cell event safety valve: a redial storm fails the job loudly.
    max_events: Optional[int] = 5_000_000

    def expected_fork_time(self) -> float:
        return _SETTLE_SECONDS + self.fork_block * _BLOCK_INTERVAL

    def cell_schedule(
        self, churn: float, loss: float, split: float
    ) -> FaultSchedule:
        """The declarative schedule for one grid cell."""
        start = self.expected_fork_time() + self.fault_start_offset
        faults: List[Any] = []
        if churn > 0:
            faults.append(
                ChurnBurst(
                    start=start, duration=self.fault_duration, rate=churn
                )
            )
        if loss > 0:
            faults.append(
                LinkFault(
                    start=start,
                    duration=self.fault_duration,
                    loss_rate=loss,
                    scope="region",
                )
            )
        if split > 0:
            faults.append(
                SplitFault(
                    start=start,
                    duration=split,
                    groups=(("na",), ("eu", "as")),
                    scope="region",
                )
            )
        return FaultSchedule(faults=tuple(faults), seed=self.seed)

    def cell_config(
        self, churn: float, loss: float, split: float
    ) -> ChaosPartitionConfig:
        return ChaosPartitionConfig(
            num_nodes=self.num_nodes,
            num_miners=self.num_miners,
            fork_block=self.fork_block,
            post_fork_horizon=self.post_fork_horizon,
            census_interval=self.census_interval,
            seed=self.seed,
            faults=self.cell_schedule(churn, loss, split).to_dict(),
            resilience=ResiliencePolicy().to_dict() if self.resilience else None,
            max_events=self.max_events,
        )


def build_fault_grid(
    config: FaultSweepConfig,
) -> List[Tuple[Tuple[float, float, float], JobSpec]]:
    """One ``chaos-partition`` spec per grid cell, in axis order."""
    grid: List[Tuple[Tuple[float, float, float], JobSpec]] = []
    for churn in config.churn_rates:
        for loss in config.loss_rates:
            for split in config.split_durations:
                spec = chaos_partition_spec(
                    config.cell_config(churn, loss, split)
                )
                grid.append(((churn, loss, split), spec))
    return grid


def sweep_digest(cell_digests: List[str]) -> str:
    """The sweep's reproducibility fingerprint: hash of the ordered
    per-cell report digests."""
    payload = json.dumps(cell_digests, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _write_sweep_artifacts(
    output_dir: Path,
    manifest: RunManifest,
    config: FaultSweepConfig,
    cells: List[Tuple[Tuple[float, float, float], RobustnessReport]],
    extra: Optional[Dict[str, Any]] = None,
) -> str:
    """Write ``robustness.{txt,csv,json}`` from per-cell reports, in the
    given (canonical grid) order; returns the sweep digest.  ``extra``
    merges additional keys into the JSON payload (the chunked path adds
    quarantine and ledger sections)."""
    rows: List[Dict[str, Any]] = []
    lines: List[str] = []
    cells_json: List[Dict[str, Any]] = []
    for (churn, loss, split), report in cells:
        cell = {"churn": churn, "loss": loss, "split": split}
        lines.append(
            f"churn={churn:g} loss={loss:g} split={split:g}s  "
            + report.render()
        )
        rows.append(
            {
                **cell,
                "baseline_reachable": report.baseline_reachable,
                "minimum_reachable": report.minimum_reachable,
                "recovery_time": (
                    "" if report.recovery_time is None else report.recovery_time
                ),
                "orphan_rate": report.orphan_rate,
                "mean_propagation_delay": (
                    ""
                    if report.mean_propagation_delay is None
                    else report.mean_propagation_delay
                ),
                "messages_lost": report.messages_lost,
                "messages_blocked": report.messages_blocked,
                "dials_timed_out": report.dials_timed_out,
                "peers_evicted_unresponsive": report.peers_evicted_unresponsive,
                "peers_banned": report.peers_banned,
                "digest": report.digest(),
            }
        )
        cells_json.append({**cell, "digest": report.digest(), "report": report.to_dict()})

    text_path = output_dir / "robustness.txt"
    text_path.write_text("\n".join(lines) + "\n" if lines else "")
    manifest.outputs.append(str(text_path))

    csv_path = output_dir / "robustness.csv"
    if rows:
        with csv_path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)
        manifest.outputs.append(str(csv_path))

    digest = sweep_digest([c["digest"] for c in cells_json])
    json_path = output_dir / "robustness.json"
    json_path.write_text(
        json.dumps(
            {
                "seed": config.seed,
                "sweep_digest": digest,
                "cells": cells_json,
                **(extra or {}),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    manifest.outputs.append(str(json_path))
    return digest


def run_fault_sweep(
    config: Optional[FaultSweepConfig] = None,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = ".repro-cache",
    output_dir: Union[str, Path] = "runs",
    manifest_path: Optional[Union[str, Path]] = None,
    timeout: Optional[float] = DEFAULT_TIMEOUT,
    retries: int = 1,
    progress=None,
    retry_backoff: float = 0.0,
) -> RunManifest:
    """Run the grid, write the robustness artifacts, return the manifest."""
    config = config or FaultSweepConfig()
    progress = progress or NullProgress()
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    manifest_path = Path(manifest_path or output_dir / "fault-sweep-manifest.json")

    grid = build_fault_grid(config)

    manifest = RunManifest(
        command=(
            f"fault-sweep --nodes {config.num_nodes} --seed {config.seed}"
            f" --jobs {jobs}"
            + (" --no-cache" if cache_dir is None else "")
        ),
        workers=jobs,
        cache_dir=str(cache_dir) if cache_dir else None,
        started_at=time.time(),
    )

    pool = WorkerPool(
        workers=jobs,
        cache_dir=str(cache_dir) if cache_dir else None,
        timeout=timeout,
        retries=retries,
        progress=progress,
        retry_backoff=retry_backoff,
    )

    start = time.perf_counter()
    by_label: Dict[str, Any] = {}
    for result in pool.run([spec for _, spec in grid]):
        manifest.add(result.record)
        if result.record.status == "ok":
            by_label[result.spec.label] = result.value
    manifest.total_wall_time = time.perf_counter() - start

    cells: List[Tuple[Tuple[float, float, float], RobustnessReport]] = []
    for (churn, loss, split), spec in grid:
        report = getattr(by_label.get(spec.label), "robustness", None)
        if report is not None:
            cells.append(((churn, loss, split), report))
    _write_sweep_artifacts(output_dir, manifest, config, cells)

    manifest.write(manifest_path)
    progress.note(f"manifest: {manifest_path}")
    return manifest


# --------------------------------------------------------------------------
# the chunked, resumable path


def run_fault_sweep_chunked(
    config: Optional[FaultSweepConfig] = None,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = ".repro-cache",
    output_dir: Union[str, Path] = "runs",
    manifest_path: Optional[Union[str, Path]] = None,
    timeout: Optional[float] = DEFAULT_TIMEOUT,
    retries: int = 1,
    progress=None,
    retry_backoff: float = 0.0,
    chunk_size: int = 2,
    resume: bool = False,
    max_quarantined: Optional[int] = None,
    ledger_dir: Optional[Union[str, Path]] = None,
    lease_seconds: float = 300.0,
    chunk_retries: int = 1,
) -> ChunkedSweepResult:
    """The crash-safe sweep: grid → content-addressed chunks → ledger.

    Kill this anywhere (worker, orchestrator, whole machine) and run it
    again with ``resume=True``: finished chunks are stitched from their
    persisted artifacts, unfinished ones recompute, and the combined
    ``robustness.json`` sweep digest is byte-identical to the
    uninterrupted single-shot run.  Chunks that keep failing are
    quarantined; the sweep then completes *degraded* with the
    quarantined chunks listed in the manifest and the JSON payload.
    """
    config = config or FaultSweepConfig()
    progress = progress or NullProgress()
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    manifest_path = Path(
        manifest_path or output_dir / "fault-sweep-manifest.json"
    )
    ledger_dir = Path(ledger_dir or output_dir / "sweep-ledger")

    grid = build_fault_grid(config)
    cell_by_key = {
        spec.cache_key(): (cell, spec) for cell, spec in grid
    }
    salt = {"sweep": "fault-sweep", "config": asdict(config)}
    chunks = plan_chunks(
        [[spec for _, spec in grid]], chunk_size, salt=salt
    )
    sweep_key = sweep_key_for(chunks, salt=salt)

    pool = WorkerPool(
        workers=jobs,
        cache_dir=str(cache_dir) if cache_dir else None,
        timeout=timeout,
        retries=retries,
        progress=progress,
        retry_backoff=retry_backoff,
    )

    def summarize(chunk, results) -> Dict[str, Any]:
        cells = []
        for result in results:
            report = getattr(result.value, "robustness", None)
            if report is None:
                raise ValueError(
                    f"{result.spec.label}: no robustness report on the "
                    f"result (not a chaos-partition cell?)"
                )
            (churn, loss, split), _ = cell_by_key[result.spec.cache_key()]
            cells.append(
                {
                    "churn": churn,
                    "loss": loss,
                    "split": split,
                    "digest": report.digest(),
                    "report": report.to_dict(),
                }
            )
        return {
            "cells": cells,
            "records": [asdict(result.record) for result in results],
        }

    runner = SweepRunner(
        ledger_dir,
        pool,
        summarize,
        lease_seconds=lease_seconds,
        chunk_retries=chunk_retries,
        max_quarantined=max_quarantined,
        progress=progress,
    )
    start = time.perf_counter()
    outcome = runner.run(chunks, sweep_key=sweep_key, resume=resume)

    if outcome.state == "interrupted":
        counts = outcome.counts
        progress.note(
            f"interrupted: {counts.get('done', 0)}/{counts.get('total', 0)}"
            f" chunk(s) done; resume with --resume"
        )
        return ChunkedSweepResult(
            state="interrupted", exit_code=EXIT_INTERRUPTED,
            error=outcome.error,
        )
    if outcome.state == "failed":
        return ChunkedSweepResult(
            state="failed", exit_code=EXIT_FAILED, error=outcome.error,
            quarantined=[
                {
                    "chunk_id": row.chunk_id,
                    "label": row.label,
                    "error": row.error,
                    "failures": row.failures,
                }
                for row in outcome.quarantined
            ],
        )

    # -- combine: stitch chunk artifacts in canonical order ----------------
    manifest = RunManifest(
        command=(
            f"fault-sweep --nodes {config.num_nodes} --seed {config.seed}"
            f" --jobs {jobs} --chunk-size {chunk_size}"
            + (" --resume" if resume else "")
            + (" --no-cache" if cache_dir is None else "")
        ),
        workers=jobs,
        cache_dir=str(cache_dir) if cache_dir else None,
        started_at=time.time(),
    )
    cells: List[Tuple[Tuple[float, float, float], RobustnessReport]] = []
    for chunk, summary in outcome.summaries:
        for record in summary["records"]:
            manifest.add(JobRecord(**record))
        for cell in summary["cells"]:
            cells.append(
                (
                    (cell["churn"], cell["loss"], cell["split"]),
                    RobustnessReport.from_dict(cell["report"]),
                )
            )
    quarantined_payload: List[Dict[str, Any]] = []
    for row in outcome.quarantined:
        chunk = next(c for c in chunks if c.chunk_id == row.chunk_id)
        quarantined_payload.append(
            {
                "chunk_id": row.chunk_id,
                "label": row.label,
                "error": row.error,
                "failures": row.failures,
                "cells": [spec.label for spec in chunk.specs],
            }
        )
        for spec in chunk.specs:
            manifest.add(
                JobRecord(
                    label=spec.label,
                    kind=spec.kind,
                    key=spec.cache_key(),
                    status="failed",
                    cache_hit=False,
                    wall_time=0.0,
                    attempts=row.attempts,
                    error=f"chunk {row.chunk_id[:12]} quarantined: "
                          f"{row.error}",
                )
            )
    manifest.total_wall_time = time.perf_counter() - start

    digest = _write_sweep_artifacts(
        output_dir,
        manifest,
        config,
        cells,
        extra={
            "degraded": outcome.state == "degraded",
            "quarantined": quarantined_payload,
            "ledger": {
                "chunks": outcome.counts,
                "metrics": outcome.metrics,
            },
        },
    )
    manifest.write(manifest_path)
    progress.note(f"manifest: {manifest_path}")
    if outcome.state == "degraded":
        progress.note(
            f"sweep completed DEGRADED: {len(quarantined_payload)} "
            f"quarantined chunk(s)"
        )
    return ChunkedSweepResult(
        state=outcome.state,
        exit_code=EXIT_DEGRADED if outcome.state == "degraded" else EXIT_OK,
        manifest=manifest,
        sweep_digest=digest,
        quarantined=quarantined_payload,
    )
