"""Run manifests: the observability record of one harness invocation.

Every ``run-all`` (and every :meth:`WorkerPool.run`) appends a
:class:`JobRecord` per job — spec label, kind, cache key, status,
cache-hit flag, wall time, attempt count, error text — and the manifest
totals them up alongside the worker count and cache statistics.  The
manifest is plain JSON with a schema version, written next to the run's
outputs, so "was the second run actually served from cache?" is
answerable from the artifact alone.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = ["JobRecord", "RunManifest", "MANIFEST_SCHEMA_VERSION"]

#: v2: JobRecord grew an optional ``metrics`` summary (repro.obs).
#: Older manifests parse fine (the field defaults to None); newer ones
#: are refused by :meth:`RunManifest.from_dict`.
MANIFEST_SCHEMA_VERSION = 2

#: Terminal job states a record may carry.
JOB_STATUSES = ("ok", "failed", "timeout")


@dataclass
class JobRecord:
    """Outcome of one scheduled job."""

    label: str
    kind: str
    key: str
    status: str
    cache_hit: bool
    wall_time: float
    attempts: int
    error: Optional[str] = None
    #: Deterministic per-job metrics summary (counter totals + registry
    #: digest) when the pool ran with ``collect_metrics=True`` and the
    #: job actually executed; None on cache hits and uninstrumented runs.
    metrics: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.status not in JOB_STATUSES:
            raise ValueError(
                f"status must be one of {JOB_STATUSES}, got {self.status!r}"
            )


@dataclass
class RunManifest:
    """One invocation's full accounting."""

    command: str
    workers: int
    cache_dir: Optional[str] = None
    started_at: float = 0.0
    total_wall_time: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    jobs: List[JobRecord] = field(default_factory=list)
    #: Paths of artifacts (figure tables, scoreboards) this run wrote.
    outputs: List[str] = field(default_factory=list)
    schema_version: int = MANIFEST_SCHEMA_VERSION

    def add(self, record: JobRecord) -> None:
        self.jobs.append(record)
        if record.cache_hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1

    @property
    def failures(self) -> List[JobRecord]:
        return [job for job in self.jobs if job.status != "ok"]

    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["started_at_iso"] = time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime(self.started_at)
        )
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunManifest":
        data = dict(payload)
        data.pop("started_at_iso", None)
        version = data.get("schema_version", MANIFEST_SCHEMA_VERSION)
        if version > MANIFEST_SCHEMA_VERSION:
            raise ValueError(
                f"manifest schema {version} is newer than this code "
                f"understands ({MANIFEST_SCHEMA_VERSION})"
            )
        data["jobs"] = [JobRecord(**job) for job in data.get("jobs", [])]
        return cls(**data)

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def write(self, path: Union[str, Path]) -> Path:
        """Atomic write (temp file + ``os.replace``, matching
        :meth:`ResultCache.store`): a run killed mid-write leaves either
        the previous manifest or the new one, never a truncated JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, tmp_name = tempfile.mkstemp(
            prefix=f".{path.name}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(descriptor, "w") as handle:
                handle.write(self.dumps() + "\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def read(cls, path: Union[str, Path]) -> "RunManifest":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def summary(self) -> str:
        """One-paragraph human rendering for the CLI footer."""
        ok = sum(1 for job in self.jobs if job.status == "ok")
        lines = [
            f"{ok}/{len(self.jobs)} jobs ok, "
            f"{self.cache_hits} cache hits / {self.cache_misses} misses, "
            f"{self.workers} worker(s), "
            f"{self.total_wall_time:.1f}s total"
        ]
        for job in self.failures:
            lines.append(
                f"  FAILED {job.label} [{job.status}] after "
                f"{job.attempts} attempt(s): {job.error}"
            )
        return "\n".join(lines)
