"""repro.harness — parallel experiment orchestration.

The subsystem that turns "call ``ForkSimulation(...).run()`` everywhere"
into declarative, cacheable, parallel experiment jobs:

* :mod:`~repro.harness.jobs` — frozen :class:`JobSpec`\\ s (kind +
  canonical params + seed), the runner registry, and cache-through
  execution (:func:`execute_job`).
* :mod:`~repro.harness.cache` — content-addressed pickle cache keyed by
  the spec's canonical-JSON SHA-256.
* :mod:`~repro.harness.pool` — a :class:`WorkerPool` of OS processes
  with per-job timeouts, bounded fresh-worker retries, and a serial
  in-process fallback.
* :mod:`~repro.harness.manifest` — per-invocation JSON run manifests
  (specs, keys, wall times, cache hits/misses, failures).
* :mod:`~repro.harness.progress` — stderr narration for CLI runs.
* :mod:`~repro.harness.runall` — the ``run-all`` orchestrator: all five
  figures plus the observation scoreboard in one parallel pass.
* :mod:`~repro.harness.ledger` — the durable WAL-SQLite **sweep
  ledger**: per-chunk leases, retries, and quarantine, shared safely by
  concurrent processes.
* :mod:`~repro.harness.sweeprun` — chunked, resumable sweep execution
  (:class:`SweepRunner`) over content-addressed chunks, with the
  :class:`CrashyPool` fault-injection rig that proves crash-anywhere
  resumability.

The load-bearing invariant: an identical config + seed produces a
bit-identical simulation whether run in-process or in a worker
(``tests/test_seed_determinism.py``), so a cache key *is* the
experiment's identity and a hit is equivalent to a re-run.
"""

from .cache import CacheStats, NullCache, PruneResult, ResultCache
from .faultsweep import (
    FaultSweepConfig,
    build_fault_grid,
    run_fault_sweep,
    run_fault_sweep_chunked,
    sweep_digest,
)
from .ledger import (
    ChunkDef,
    ChunkRow,
    ClaimedChunk,
    LedgerError,
    LedgerMismatch,
    LedgerNeedsResume,
    SweepLedger,
)
from .toposweep import (
    TopologySweepConfig,
    build_topology_grid,
    run_topology_sweep,
    run_topology_sweep_chunked,
)
from .jobs import (
    CACHE_SCHEMA_VERSION,
    EchoBundle,
    JobOutcome,
    JobSpec,
    chaos_partition_spec,
    echoes_spec,
    execute_job,
    figure_spec,
    fork_lengths_spec,
    obs_probe_spec,
    perf_probe_spec,
    observations_spec,
    partition_spec,
    register_runner,
    topology_infer_spec,
    topology_partition_spec,
    registered_kinds,
    run_cached,
    run_job,
    simulate_chunk_spec,
    simulate_spec,
)
from .manifest import MANIFEST_SCHEMA_VERSION, JobRecord, RunManifest
from .pool import DEFAULT_TIMEOUT, JobResult, WorkerPool
from .progress import NullProgress, ProgressReporter
from .runall import DEFAULT_CACHE_DIR, build_waves, run_all, run_all_chunked
from .sweeprun import (
    EXIT_DEGRADED,
    EXIT_FAILED,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_USAGE,
    ChunkFailure,
    ChunkedSweepResult,
    CrashyPool,
    SweepChunk,
    SweepOutcome,
    SweepRunner,
    plan_chunks,
    sweep_key_for,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "ChunkDef",
    "ChunkFailure",
    "ChunkRow",
    "ChunkedSweepResult",
    "ClaimedChunk",
    "CrashyPool",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_TIMEOUT",
    "EXIT_DEGRADED",
    "EXIT_FAILED",
    "EXIT_INTERRUPTED",
    "EXIT_OK",
    "EXIT_USAGE",
    "EchoBundle",
    "FaultSweepConfig",
    "TopologySweepConfig",
    "JobOutcome",
    "JobRecord",
    "JobResult",
    "JobSpec",
    "LedgerError",
    "LedgerMismatch",
    "LedgerNeedsResume",
    "MANIFEST_SCHEMA_VERSION",
    "NullCache",
    "NullProgress",
    "ProgressReporter",
    "PruneResult",
    "ResultCache",
    "RunManifest",
    "SweepChunk",
    "SweepLedger",
    "SweepOutcome",
    "SweepRunner",
    "WorkerPool",
    "build_fault_grid",
    "build_topology_grid",
    "build_waves",
    "chaos_partition_spec",
    "echoes_spec",
    "execute_job",
    "figure_spec",
    "fork_lengths_spec",
    "obs_probe_spec",
    "perf_probe_spec",
    "observations_spec",
    "partition_spec",
    "plan_chunks",
    "register_runner",
    "registered_kinds",
    "run_all",
    "run_all_chunked",
    "run_cached",
    "run_fault_sweep",
    "run_fault_sweep_chunked",
    "run_topology_sweep",
    "run_topology_sweep_chunked",
    "run_job",
    "simulate_chunk_spec",
    "simulate_spec",
    "topology_partition_spec",
    "topology_infer_spec",
    "sweep_digest",
    "sweep_key_for",
]
