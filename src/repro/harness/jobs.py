"""Declarative experiment jobs: frozen specs plus a runner registry.

A :class:`JobSpec` is the unit of work the harness schedules: a job
*kind* (``simulate``, ``figure``, ``observations``, ...) plus a
canonical-JSON parameter blob that captures every knob and seed.  The
spec is frozen and picklable, so it crosses process boundaries intact,
and its :meth:`~JobSpec.cache_key` — a SHA-256 over the canonical JSON
— is the content address under which the result is cached.

Runners are pure functions ``(params, cache) -> result`` registered per
kind.  Composite jobs (a figure, the observation scoreboard) obtain
their expensive inputs *through the cache* via :func:`run_cached`, so
five figure jobs running in five workers share one simulation once the
first worker has stored it — and a warm cache turns each of them into a
single pickle load.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple

from ..core.echoes import EchoDetector
from ..core.metrics import trace_transactions_per_day
from ..core.observations import Observation, evaluate_all
from ..core.report import FigureData, figure_1, figure_2, figure_3, figure_4, figure_5
from ..obs import MetricsRegistry, Observability
from ..scenarios.dos_forks import compare_upgrade_forks
from ..scenarios.partition_event import (
    ChaosPartitionConfig,
    PartitionResult,
    PartitionScenario,
    PartitionScenarioConfig,
    TopologyPartitionConfig,
)
from ..scenarios.topology_inference import (
    TopologyInferenceConfig,
    TopologyInferenceResult,
    TopologyInferenceScenario,
)
from ..scenarios.replay_attack import (
    GroundTruth,
    ReplayWorkload,
    ReplayWorkloadConfig,
)
from ..sim.checkpoint import ForkSimCheckpoint
from ..sim.engine import (
    ForkSimConfig,
    ForkSimResult,
    ForkSimulation,
    run_fork_sim,
)

__all__ = [
    "JobSpec",
    "JobOutcome",
    "EchoBundle",
    "register_runner",
    "registered_kinds",
    "run_job",
    "execute_job",
    "run_cached",
    "simulate_spec",
    "simulate_chunk_spec",
    "partition_spec",
    "chaos_partition_spec",
    "topology_partition_spec",
    "topology_infer_spec",
    "obs_probe_spec",
    "perf_probe_spec",
    "echoes_spec",
    "figure_spec",
    "observations_spec",
    "fork_lengths_spec",
    "CACHE_SCHEMA_VERSION",
]

#: Bumping this invalidates every cached result (schema change, runner
#: semantics change).  It is hashed into every cache key.
#: v2: PartitionResult grew a ``robustness`` field (repro.faults).
CACHE_SCHEMA_VERSION = 2


def canonical_json(params: Dict[str, Any]) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance.

    Raises ``TypeError`` on values JSON cannot represent — a cache key
    must never depend on ``repr`` fallbacks.
    """
    return json.dumps(
        params, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


@dataclass(frozen=True)
class JobSpec:
    """One schedulable experiment: kind + canonical parameters + seed."""

    kind: str
    params_json: str
    label: str

    @classmethod
    def make(
        cls, kind: str, params: Dict[str, Any], label: Optional[str] = None
    ) -> "JobSpec":
        return cls(
            kind=kind,
            params_json=canonical_json(params),
            label=label or kind,
        )

    @property
    def params(self) -> Dict[str, Any]:
        return json.loads(self.params_json)

    def cache_key(self) -> str:
        payload = canonical_json(
            {
                "version": CACHE_SCHEMA_VERSION,
                "kind": self.kind,
                "params": json.loads(self.params_json),
            }
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class JobOutcome(NamedTuple):
    value: Any
    cache_hit: bool
    #: ``MetricsRegistry.summary()`` from an instrumented execution, or
    #: None (metrics collection off, cache hit, or nothing recorded).
    metrics: Optional[Dict[str, Any]] = None


# --------------------------------------------------------------------------
# runner registry


_RUNNERS: Dict[str, Callable[..., Any]] = {}
#: Kinds whose runner accepts ``(params, cache, registry)`` — they
#: thread a per-job :class:`~repro.obs.MetricsRegistry` into the work.
_REGISTRY_AWARE: set = set()


def register_runner(kind: str, wants_registry: bool = False):
    """Decorator: register the runner for a job kind.

    ``wants_registry=True`` declares the signature
    ``(params, cache, registry)`` where ``registry`` is a per-job
    :class:`~repro.obs.MetricsRegistry` (or None when metrics collection
    is off).  The default keeps the original ``(params, cache)``
    contract, so custom runners registered by downstream code keep
    working unchanged.
    """

    def decorator(fn: Callable[..., Any]):
        _RUNNERS[kind] = fn
        if wants_registry:
            _REGISTRY_AWARE.add(kind)
        else:
            _REGISTRY_AWARE.discard(kind)
        return fn

    return decorator


def registered_kinds() -> Tuple[str, ...]:
    """Every job kind with a registered runner, sorted (for the serve
    layer's request validation and for introspection)."""
    return tuple(sorted(_RUNNERS))


def run_job(spec: JobSpec, cache, registry=None) -> Any:
    """Execute a spec unconditionally (no lookup of *this* spec's key).

    The runner may still consult ``cache`` for sub-results it composes
    over (e.g. a figure job loading the shared simulation).
    ``registry`` is forwarded only to registry-aware runners.
    """
    runner = _RUNNERS.get(spec.kind)
    if runner is None:
        raise KeyError(f"no runner registered for job kind {spec.kind!r}")
    if spec.kind in _REGISTRY_AWARE:
        return runner(spec.params, cache, registry)
    return runner(spec.params, cache)


def execute_job(spec: JobSpec, cache, collect_metrics: bool = False) -> JobOutcome:
    """Cache-through execution: lookup, else run and store.

    With ``collect_metrics=True`` a fresh per-job registry instruments
    the run (registry-aware kinds only) and its deterministic summary
    rides back on the outcome — it never enters the cached value, so
    cache keys and stored results are identical either way.
    """
    key = spec.cache_key()
    hit, value = cache.lookup(key)
    if hit:
        return JobOutcome(value, True)
    registry = MetricsRegistry() if collect_metrics else None
    value = run_job(spec, cache, registry)
    cache.store(key, value)
    summary = registry.summary() if registry is not None else None
    return JobOutcome(value, False, summary)


def run_cached(spec: JobSpec, cache) -> Any:
    """Sub-result memoization helper used inside composite runners."""
    return execute_job(spec, cache).value


# --------------------------------------------------------------------------
# spec constructors


def simulate_spec(config: ForkSimConfig) -> JobSpec:
    return JobSpec.make(
        "simulate",
        {"config": config.to_dict()},
        label=f"simulate[{config.days}d seed={config.seed}]",
    )


def simulate_chunk_spec(
    config: ForkSimConfig, upto_day: int, chunk_days: int
) -> JobSpec:
    """One in-horizon chunk of a fork simulation: days ``[0, upto_day)``.

    Chunks chain through the cache: the runner loads the previous
    chunk's :class:`~repro.sim.checkpoint.ForkSimCheckpoint` (computing
    it on demand if missing) and resumes, so a preempted ``run-all``
    loses at most ``chunk_days`` of mining instead of the whole horizon.
    The final chunk (``upto_day >= config.days``) also publishes the
    full :class:`ForkSimResult` under the plain ``simulate`` key, so
    downstream figure/observation jobs cache-hit as if the simulation
    had run single-shot.
    """
    return JobSpec.make(
        "simulate-chunk",
        {
            "config": config.to_dict(),
            "upto_day": upto_day,
            "chunk_days": chunk_days,
        },
        label=(
            f"simulate-chunk[{min(upto_day, config.days)}/{config.days}d "
            f"seed={config.seed}]"
        ),
    )


def partition_spec(config: Optional[PartitionScenarioConfig] = None) -> JobSpec:
    config = config or PartitionScenarioConfig()
    return JobSpec.make(
        "partition",
        {"config": asdict(config)},
        label=f"partition[{config.num_nodes} nodes]",
    )


def chaos_partition_spec(config: ChaosPartitionConfig) -> JobSpec:
    """A fault-injected partition run; the schedule digest labels it."""
    digest = config.fault_schedule().digest()[:8]
    return JobSpec.make(
        "chaos-partition",
        {"config": asdict(config)},
        label=f"chaos[{config.num_nodes}n sched={digest}]",
    )


def topology_partition_spec(config: TopologyPartitionConfig) -> JobSpec:
    """A partition run on an explicit topology; the family labels it."""
    family = (config.topology or {}).get("kind", "mesh")
    return JobSpec.make(
        "topology-partition",
        {"config": asdict(config)},
        label=f"topology[{family} {config.num_nodes}n]",
    )


def topology_infer_spec(config: TopologyInferenceConfig) -> JobSpec:
    """A marked-transaction topology-inference run."""
    family = (config.topology or {}).get("kind", "uniform")
    nodes = (config.topology or {}).get("num_nodes", config.num_nodes)
    return JobSpec.make(
        "topology-infer",
        {"config": asdict(config)},
        label=f"topology-infer[{family} {nodes}n]",
    )


def obs_probe_spec(config: PartitionScenarioConfig) -> JobSpec:
    """A fully instrumented partition run that returns only digests.

    The probe exists for the determinism test surface: it runs the
    scenario with metrics *and* tracing live and returns a plain dict of
    fingerprints (never the heavyweight result), so identical seeds must
    yield identical payloads in-process and across fork/spawn workers.
    """
    return JobSpec.make(
        "obs-probe",
        {
            "config": asdict(config),
            "chaos": isinstance(config, ChaosPartitionConfig),
        },
        label=f"obs-probe[{config.num_nodes}n seed={config.seed}]",
    )


def perf_probe_spec(config: ForkSimConfig) -> JobSpec:
    """A fast-vs-reference kernel check that returns only fingerprints.

    The probe runs the same fork sim twice in one worker — once on the
    batched kernels, once on the seed-state implementations from
    :mod:`repro.perf.reference` — and returns digests plus wall times.
    It is the pool-facing face of the benchmark gate: spawn workers must
    agree with in-process runs, and the two arms must agree with each
    other.  (Cached hits replay the digests; the timings are only
    meaningful on a fresh run.)
    """
    return JobSpec.make(
        "perf-probe",
        {"config": config.to_dict()},
        label=f"perf-probe[{config.days}d seed={config.seed}]",
    )


def echoes_spec(
    sim_config: ForkSimConfig, replay_seed: int = 4242
) -> JobSpec:
    return JobSpec.make(
        "echoes",
        {"sim": sim_config.to_dict(), "replay_seed": replay_seed},
        label=f"echoes[{sim_config.days}d]",
    )


def figure_spec(
    number: int, sim_config: ForkSimConfig, replay_seed: int = 4242
) -> JobSpec:
    if number not in (1, 2, 3, 4, 5):
        raise ValueError(f"no figure {number}; the paper has figures 1-5")
    params: Dict[str, Any] = {"number": number, "sim": sim_config.to_dict()}
    if number == 4:
        # Only figure 4 consumes the replay workload; keeping the seed
        # out of the other keys lets them survive replay-knob changes.
        params["replay_seed"] = replay_seed
    return JobSpec.make("figure", params, label=f"figure-{number}")


def observations_spec(
    sim_config: ForkSimConfig,
    partition_config: Optional[PartitionScenarioConfig] = None,
    replay_seed: int = 4242,
) -> JobSpec:
    partition_config = partition_config or PartitionScenarioConfig()
    return JobSpec.make(
        "observations",
        {
            "sim": sim_config.to_dict(),
            "partition": asdict(partition_config),
            "replay_seed": replay_seed,
        },
        label="observations",
    )


def fork_lengths_spec() -> JobSpec:
    return JobSpec.make("fork-lengths", {}, label="fork-lengths")


# --------------------------------------------------------------------------
# built-in runners


@dataclass
class EchoBundle:
    """The replay workload's outputs, bundled for caching."""

    detector: EchoDetector
    truth: GroundTruth
    records: list = field(default_factory=list)


def _registry_obs(registry) -> Optional[Observability]:
    """Wrap a per-job registry as a metrics-only obs bundle (or None)."""
    if registry is None:
        return None
    return Observability(metrics=registry)


@register_runner("simulate", wants_registry=True)
def _run_simulate(params: Dict[str, Any], cache, registry=None) -> ForkSimResult:
    return run_fork_sim(
        ForkSimConfig.from_dict(params["config"]), obs=_registry_obs(registry)
    )


@register_runner("simulate-chunk", wants_registry=True)
def _run_simulate_chunk(
    params: Dict[str, Any], cache, registry=None
) -> Dict[str, Any]:
    """Resume-or-start one horizon chunk; returns a JSON-safe summary.

    The heavyweight objects stay in the cache: this runner's *return
    value* is a small dict (digest, block count, serialized checkpoint)
    so chunk results stay cheap to ship across worker pipes and into
    sweep ledgers.  Chaining is recursive-through-the-cache: a cold
    intermediate chunk recomputes its predecessor via :func:`run_cached`,
    while the scheduled stage order makes that a pure cache hit in
    practice.
    """
    config = ForkSimConfig.from_dict(params["config"])
    upto = min(params["upto_day"], config.days)
    chunk_days = params["chunk_days"]
    if chunk_days < 1:
        raise ValueError("chunk_days must be >= 1")
    checkpoint = None
    prev_upto = upto - chunk_days
    if prev_upto > 0:
        previous = run_cached(
            simulate_chunk_spec(config, prev_upto, chunk_days), cache
        )
        checkpoint = ForkSimCheckpoint.from_dict(previous["checkpoint"])
    simulation = ForkSimulation(config, obs=_registry_obs(registry))
    result = simulation.run(resume_from=checkpoint, until_day=upto)
    if result.checkpoint is None:
        # Final chunk: the horizon is complete — publish the full result
        # under the single-shot key so figure/observation jobs hit it.
        cache.store(simulate_spec(config).cache_key(), result)
    return {
        "upto_day": upto,
        "chunk_days": chunk_days,
        "days": config.days,
        "digest": result.digest(),
        "blocks": len(result.eth_trace) + len(result.etc_trace),
        "checkpoint": (
            result.checkpoint.to_dict()
            if result.checkpoint is not None
            else None
        ),
    }


@register_runner("partition", wants_registry=True)
def _run_partition(params: Dict[str, Any], cache, registry=None) -> PartitionResult:
    config = PartitionScenarioConfig(**params["config"])
    return PartitionScenario(config, obs=_registry_obs(registry)).run()


@register_runner("chaos-partition", wants_registry=True)
def _run_chaos_partition(
    params: Dict[str, Any], cache, registry=None
) -> PartitionResult:
    config = ChaosPartitionConfig(**params["config"])
    return PartitionScenario(config, obs=_registry_obs(registry)).run()


@register_runner("topology-partition", wants_registry=True)
def _run_topology_partition(
    params: Dict[str, Any], cache, registry=None
) -> PartitionResult:
    config = TopologyPartitionConfig(**params["config"])
    return PartitionScenario(config, obs=_registry_obs(registry)).run()


@register_runner("topology-infer", wants_registry=True)
def _run_topology_infer(
    params: Dict[str, Any], cache, registry=None
) -> TopologyInferenceResult:
    config = TopologyInferenceConfig(**params["config"])
    return TopologyInferenceScenario(config, obs=_registry_obs(registry)).run()


@register_runner("echoes")
def _run_echoes(params: Dict[str, Any], cache) -> EchoBundle:
    sim_config = ForkSimConfig.from_dict(params["sim"])
    result = run_cached(simulate_spec(sim_config), cache)
    eth = trace_transactions_per_day(result.eth_trace, result.fork_timestamp)
    etc = trace_transactions_per_day(result.etc_trace, result.fork_timestamp)
    workload = ReplayWorkload(
        ReplayWorkloadConfig(days=sim_config.days, seed=params["replay_seed"])
    )
    records, truth = workload.generate(eth.values, etc.values)
    detector = EchoDetector()
    detector.observe_records(records)
    return EchoBundle(detector=detector, truth=truth, records=records)


@register_runner("figure")
def _run_figure(params: Dict[str, Any], cache) -> FigureData:
    sim_config = ForkSimConfig.from_dict(params["sim"])
    number = params["number"]
    result = run_cached(simulate_spec(sim_config), cache)
    if number == 4:
        bundle = run_cached(
            echoes_spec(sim_config, params["replay_seed"]), cache
        )
        return figure_4(result, bundle.detector)
    generators = {1: figure_1, 2: figure_2, 3: figure_3, 5: figure_5}
    return generators[number](result)


@register_runner("observations")
def _run_observations(params: Dict[str, Any], cache) -> List[Observation]:
    sim_config = ForkSimConfig.from_dict(params["sim"])
    result = run_cached(simulate_spec(sim_config), cache)
    partition = run_cached(
        partition_spec(PartitionScenarioConfig(**params["partition"])), cache
    )
    bundle = run_cached(echoes_spec(sim_config, params["replay_seed"]), cache)
    return evaluate_all(result, partition, bundle.detector)


@register_runner("fork-lengths")
def _run_fork_lengths(params: Dict[str, Any], cache) -> Tuple[Any, Any]:
    return compare_upgrade_forks()


@register_runner("obs-probe")
def _run_obs_probe(params: Dict[str, Any], cache) -> Dict[str, Any]:
    config_cls = ChaosPartitionConfig if params["chaos"] else PartitionScenarioConfig
    config = config_cls(**params["config"])
    obs = Observability.enabled()
    PartitionScenario(config, obs=obs).run()
    return {
        "metrics": obs.metrics.dumps(),
        "metrics_digest": obs.metrics.digest(),
        "trace_digest": obs.tracer.digest(),
        "events": obs.tracer.events_emitted,
    }


@register_runner("perf-probe")
def _run_perf_probe(params: Dict[str, Any], cache) -> Dict[str, Any]:
    from ..perf.reference import reference_block_loop

    config = ForkSimConfig.from_dict(params["config"])
    start = time.perf_counter()
    fast = run_fork_sim(config)
    fast_seconds = time.perf_counter() - start
    start = time.perf_counter()
    with reference_block_loop():
        reference = run_fork_sim(config)
    reference_seconds = time.perf_counter() - start
    fast_digest = fast.digest()
    reference_digest = reference.digest()
    return {
        "fast_digest": fast_digest,
        "reference_digest": reference_digest,
        "digests_match": fast_digest == reference_digest,
        "blocks": len(fast.eth_trace.numbers) + len(fast.etc_trace.numbers),
        "fast_seconds": fast_seconds,
        "reference_seconds": reference_seconds,
    }


# --------------------------------------------------------------------------
# self-test kinds (used by the harness's own test suite; registered here
# so spawned workers — which re-import this module — know them too)


@register_runner("selftest-echo")
def _run_selftest_echo(params: Dict[str, Any], cache) -> Any:
    return params["value"]


@register_runner("selftest-sleep")
def _run_selftest_sleep(params: Dict[str, Any], cache) -> float:
    time.sleep(params["seconds"])
    return params["seconds"]


@register_runner("selftest-flaky")
def _run_selftest_flaky(params: Dict[str, Any], cache) -> int:
    """Fails the first ``fail_times`` attempts, succeeds after.

    Attempt counting uses a marker file so the count survives fresh
    worker processes — exactly the retry path the pool must handle.
    An optional ``sleep_seconds`` burns time *inside* each attempt, so
    the timeout tests can distinguish per-attempt deadlines from a
    cumulative one.
    """
    marker = params["marker_path"]
    try:
        with open(marker) as handle:
            attempts = int(handle.read().strip() or 0)
    except FileNotFoundError:
        attempts = 0
    attempts += 1
    with open(marker, "w") as handle:
        handle.write(str(attempts))
    if params.get("sleep_seconds"):
        time.sleep(params["sleep_seconds"])
    if attempts <= params["fail_times"]:
        raise RuntimeError(
            f"selftest-flaky failing on purpose (attempt {attempts})"
        )
    return attempts


@register_runner("selftest-killme")
def _run_selftest_killme(params: Dict[str, Any], cache) -> str:
    """SIGKILLs its own worker process on the first attempt.

    The crash-recovery regression: the first execution writes a marker
    (so the parent can see the job is live) and dies with ``kill -9`` —
    no exception, no pipe message, just a dead process.  The fresh
    worker the pool retries into finds the marker and returns the
    deterministic digest of the params, which must equal an in-process
    run of the same spec.  ``hang_seconds`` (default 30) keeps the first
    attempt alive long enough for external-kill variants of the test.
    """
    import os as _os
    import signal as _signal

    marker = params["marker_path"]
    if not _os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write(str(_os.getpid()))
        if params.get("suicide", True):
            _os.kill(_os.getpid(), _signal.SIGKILL)
        time.sleep(params.get("hang_seconds", 30.0))
    digest_payload = canonical_json({"value": params["value"]})
    return hashlib.sha256(digest_payload.encode("utf-8")).hexdigest()
