"""Chunked, resumable sweep execution over the worker pool.

Long sweeps (the fault grid, figure batches, eventually the 1M-block
horizons from the ROADMAP) used to run as one monolithic
:meth:`WorkerPool.run` — a crash, OOM, or SIGTERM at hour three lost
everything.  This module splits a sweep into **content-addressed
chunks**, records per-chunk state in a durable
:class:`~repro.harness.ledger.SweepLedger`, and persists one small JSON
artifact per finished chunk, so that:

* a killed sweep resumes from the last finished chunk (``--resume``),
  possibly in a *different* process — or several at once, sharing the
  ledger directory: claims are leased, and a crashed claimant's lease
  lapses back to the claimable pool;
* a chunk that keeps failing is **quarantined** after its retry budget
  instead of sinking the sweep — the run completes degraded, with the
  quarantined chunks listed explicitly;
* the deterministic ``combine`` step stitches artifacts in canonical
  ``seq`` order, so the combined summary digest is byte-identical to the
  uninterrupted single-shot run (the repo's determinism contract, now
  extended across process deaths).

:class:`CrashyPool` is the proof harness: a pool wrapper that injects
orchestrator crashes at scheduled chunk executions so the differential
tests can kill a sweep anywhere and show the stitched result unchanged.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import socket
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..obs import MetricsRegistry
from .jobs import JobSpec, canonical_json
from .ledger import ChunkDef, SweepLedger
from .manifest import RunManifest
from .pool import WorkerPool
from .progress import NullProgress

__all__ = [
    "SweepChunk",
    "SweepOutcome",
    "ChunkedSweepResult",
    "SweepRunner",
    "CrashyPool",
    "ChunkFailure",
    "plan_chunks",
    "sweep_key_for",
    "load_chunk_artifact",
    "EXIT_OK",
    "EXIT_FAILED",
    "EXIT_USAGE",
    "EXIT_INTERRUPTED",
    "EXIT_DEGRADED",
]

#: CLI exit codes for chunked sweeps.  ``EXIT_INTERRUPTED`` means the
#: ledger was checkpointed and ``--resume`` will continue the sweep;
#: ``EXIT_DEGRADED`` means the sweep completed but quarantined chunks.
EXIT_OK = 0
EXIT_FAILED = 1
EXIT_USAGE = 2
EXIT_INTERRUPTED = 3
EXIT_DEGRADED = 4


@dataclass(frozen=True)
class SweepChunk:
    """One schedulable slice of a sweep: a few specs plus its address.

    The ``chunk_id`` is a SHA-256 over the member specs' cache keys (and
    the chunk's position), so the same sweep definition always produces
    the same chunk identities — the property that makes a ledger written
    by one process meaningful to another.
    """

    chunk_id: str
    seq: int
    stage: int
    label: str
    specs: Tuple[JobSpec, ...]


class ChunkFailure(RuntimeError):
    """A chunk execution ended with failed jobs (after pool retries)."""


def plan_chunks(
    stages: Sequence[Sequence[JobSpec]],
    chunk_size: int,
    salt: Optional[Dict[str, Any]] = None,
) -> List[SweepChunk]:
    """Slice each stage's spec list into content-addressed chunks.

    Stages are barriers (``run-all`` waves): every chunk of stage *n*
    must finish before stage *n+1* opens.  A plain sweep is one stage.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    chunks: List[SweepChunk] = []
    seq = 0
    for stage, specs in enumerate(stages):
        specs = list(specs)
        for offset in range(0, len(specs), chunk_size):
            members = tuple(specs[offset : offset + chunk_size])
            payload = canonical_json(
                {
                    "salt": salt or {},
                    "stage": stage,
                    "index": offset // chunk_size,
                    "keys": [spec.cache_key() for spec in members],
                }
            )
            chunk_id = hashlib.sha256(payload.encode("utf-8")).hexdigest()
            first = members[0].label
            label = (
                first
                if len(members) == 1
                else f"{first} (+{len(members) - 1})"
            )
            chunks.append(
                SweepChunk(
                    chunk_id=chunk_id,
                    seq=seq,
                    stage=stage,
                    label=label,
                    specs=members,
                )
            )
            seq += 1
    return chunks


def sweep_key_for(
    chunks: Sequence[SweepChunk], salt: Optional[Dict[str, Any]] = None
) -> str:
    """The sweep's identity: hash of the ordered chunk addresses."""
    payload = canonical_json(
        {"salt": salt or {}, "chunks": [c.chunk_id for c in chunks]}
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------
# chunk artifacts


def _artifact_path(artifact_dir: Path, chunk_id: str) -> Path:
    return artifact_dir / f"{chunk_id}.json"


def _dump_artifact(summary: Dict[str, Any]) -> Tuple[bytes, str]:
    blob = json.dumps(
        summary, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    return blob, hashlib.sha256(blob).hexdigest()


def write_chunk_artifact(
    artifact_dir: Path, chunk_id: str, summary: Dict[str, Any]
) -> str:
    """Atomically persist one chunk summary; returns its digest."""
    blob, digest = _dump_artifact(summary)
    artifact_dir.mkdir(parents=True, exist_ok=True)
    path = _artifact_path(artifact_dir, chunk_id)
    descriptor, tmp_name = tempfile.mkstemp(
        prefix=f".{chunk_id[:8]}-", suffix=".tmp", dir=artifact_dir
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(blob)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return digest


def load_chunk_artifact(
    artifact_dir: Path, chunk_id: str, expect_digest: Optional[str] = None
) -> Optional[Dict[str, Any]]:
    """Read one chunk summary back; ``None`` on any corruption.

    Corruption means: missing file, invalid JSON, or — when
    ``expect_digest`` is given — a byte-level digest mismatch against
    what the ledger recorded at completion time.
    """
    path = _artifact_path(artifact_dir, chunk_id)
    try:
        blob = path.read_bytes()
    except OSError:
        return None
    if expect_digest is not None:
        if hashlib.sha256(blob).hexdigest() != expect_digest:
            return None
    try:
        return json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None


# --------------------------------------------------------------------------
# fault injection


class CrashyPool:
    """A pool wrapper that dies on schedule — the resumability proof rig.

    ``crash_at`` maps 0-based *execution indices* (the n-th ``run`` call
    made through this wrapper, across retries) to a fault mode:

    * ``"before"`` — crash before any job runs (nothing observable
      happened; the chunk lease must recover it);
    * ``"after"`` — run the chunk fully, then crash before the caller
      can persist the artifact (the expensive-work-lost case);
    * ``"hard"`` — raise ``SystemExit`` mid-chunk, emulating a killed
      orchestrator process inside a test.

    Everything else delegates to the wrapped pool, so recovery runs the
    *real* execution path.
    """

    def __init__(
        self,
        inner: WorkerPool,
        crash_at: Optional[Dict[int, str]] = None,
    ) -> None:
        self.inner = inner
        self.crash_at = dict(crash_at or {})
        self.calls = 0

    def run(self, specs: Sequence[JobSpec]):
        index = self.calls
        self.calls += 1
        mode = self.crash_at.get(index)
        if mode == "before":
            raise RuntimeError(f"CrashyPool: injected crash before run {index}")
        if mode == "hard":
            raise SystemExit(f"CrashyPool: injected hard death at run {index}")
        results = self.inner.run(specs)
        if mode == "after":
            raise RuntimeError(
                f"CrashyPool: injected crash after run {index} "
                f"(artifact never written)"
            )
        return results


# --------------------------------------------------------------------------
# the runner


@dataclass
class SweepOutcome:
    """What one :meth:`SweepRunner.run` invocation accomplished."""

    #: ``complete`` | ``degraded`` (quarantined chunks) |
    #: ``interrupted`` (checkpointed; resume to continue) |
    #: ``failed`` (quarantine budget exceeded).
    state: str
    #: ``(chunk, summary)`` in canonical order for every ``done`` chunk.
    summaries: List[Tuple[SweepChunk, Dict[str, Any]]] = field(
        default_factory=list
    )
    #: Ledger rows of quarantined chunks (empty unless degraded/failed).
    quarantined: List[Any] = field(default_factory=list)
    #: Ledger chunk-state totals at exit.
    counts: Dict[str, int] = field(default_factory=dict)
    #: Deterministic-shape metrics summary (values are wall-clock
    #: dependent: lease takeovers, resume credits).
    metrics: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    @property
    def resumable(self) -> bool:
        return self.state == "interrupted"


@dataclass
class ChunkedSweepResult:
    """What a chunked sweep *invocation* accomplished, CLI-facing: the
    outcome state mapped to an exit code, plus the stitched manifest
    when the sweep reached a terminal state."""

    #: ``complete`` | ``degraded`` | ``interrupted`` | ``failed``.
    state: str
    exit_code: int
    #: None when interrupted (the ledger holds the progress) or failed.
    manifest: Optional[RunManifest] = None
    sweep_digest: Optional[str] = None
    #: ``{chunk_id, label, error, failures, ...}`` per quarantined chunk.
    quarantined: List[Dict[str, Any]] = field(default_factory=list)
    error: Optional[str] = None


class _LeaseHeartbeat:
    """Renews a held lease from a daemon thread while a chunk runs."""

    def __init__(
        self, ledger: SweepLedger, chunk_id: str, owner: str,
        lease_seconds: float,
    ) -> None:
        self.ledger = ledger
        self.chunk_id = chunk_id
        self.owner = owner
        self.lease_seconds = lease_seconds
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._beat, daemon=True)

    def _beat(self) -> None:
        interval = max(self.lease_seconds / 3.0, 0.05)
        while not self._stop.wait(interval):
            if not self.ledger.renew(
                self.chunk_id, self.owner, self.lease_seconds
            ):
                return  # lease lost; nothing left to keep alive

    def __enter__(self) -> "_LeaseHeartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


class SweepRunner:
    """Claim → run → persist → repeat, until the ledger is terminal.

    The runner owns no sweep semantics: ``summarize`` turns one chunk's
    pool results into a JSON-able artifact (raising fails the chunk),
    and the caller stitches the returned summaries into its final
    artifacts.  Several runners (threads or processes) may share one
    ledger directory; each claims disjoint chunks.
    """

    def __init__(
        self,
        ledger_dir: Union[str, Path],
        pool,
        summarize: Callable[[SweepChunk, List[Any]], Dict[str, Any]],
        *,
        lease_seconds: float = 300.0,
        chunk_retries: int = 1,
        max_quarantined: Optional[int] = None,
        poll_interval: float = 0.25,
        progress=None,
        registry: Optional[MetricsRegistry] = None,
        owner: Optional[str] = None,
        install_signal_handlers: bool = True,
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be > 0")
        if chunk_retries < 0:
            raise ValueError("chunk_retries must be >= 0")
        self.ledger_dir = Path(ledger_dir)
        self.pool = pool
        self.summarize = summarize
        self.lease_seconds = lease_seconds
        self.chunk_retries = chunk_retries
        self.max_quarantined = max_quarantined
        self.poll_interval = poll_interval
        self.progress = progress or NullProgress()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.owner = owner or (
            f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"
        )
        self.install_signal_handlers = install_signal_handlers
        self._stop_requested = threading.Event()

    # -- control -----------------------------------------------------------

    def request_stop(self) -> None:
        """Checkpoint and exit after the chunk in flight (signal-safe)."""
        self._stop_requested.set()

    def _handle_signal(self, signum, frame) -> None:
        if self._stop_requested.is_set():
            # Second signal: the user means it.  Abandon the chunk in
            # flight (its lease will lapse) and unwind now.
            raise KeyboardInterrupt
        self._stop_requested.set()
        self.progress.note(
            f"signal {signal.Signals(signum).name}: checkpointing after "
            f"the chunk in flight (again to abort immediately)"
        )

    # -- the loop ----------------------------------------------------------

    def run(
        self,
        chunks: Sequence[SweepChunk],
        sweep_key: Optional[str] = None,
        resume: bool = False,
    ) -> SweepOutcome:
        chunks = list(chunks)
        sweep_key = sweep_key or sweep_key_for(chunks)
        by_id = {chunk.chunk_id: chunk for chunk in chunks}
        artifact_dir = self.ledger_dir / "chunks"
        counters = self.registry
        installed: List[Tuple[int, Any]] = []
        if self.install_signal_handlers and (
            threading.current_thread() is threading.main_thread()
        ):
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    installed.append(
                        (signum, signal.signal(signum, self._handle_signal))
                    )
                except (ValueError, OSError):  # pragma: no cover
                    pass
        ledger = SweepLedger(self.ledger_dir / "ledger.db")
        try:
            done = ledger.register(
                sweep_key,
                [
                    ChunkDef(c.chunk_id, c.seq, c.stage, c.label)
                    for c in chunks
                ],
                resume=resume,
            )
            if resume and done:
                done = self._verify_resumed(ledger, artifact_dir, by_id)
                counters.counter("sweep.chunks.resumed").inc(done)
                self.progress.note(
                    f"resume: {done}/{len(chunks)} chunk(s) already done"
                )
            state = self._claim_loop(ledger, by_id, artifact_dir)
            return self._finish(ledger, by_id, artifact_dir, state)
        finally:
            for signum, previous in installed:
                try:
                    signal.signal(signum, previous)
                except (ValueError, OSError):  # pragma: no cover
                    pass
            ledger.close()

    def _verify_resumed(
        self,
        ledger: SweepLedger,
        artifact_dir: Path,
        by_id: Dict[str, SweepChunk],
    ) -> int:
        """Re-check every ``done`` chunk's artifact; demote liars.

        A chunk whose artifact vanished, truncated, or no longer matches
        the digest recorded at completion goes back to ``pending`` — the
        resumed sweep recomputes it instead of stitching garbage.
        """
        verified = 0
        for row in ledger.chunks():
            if row.state != "done" or row.chunk_id not in by_id:
                continue
            summary = load_chunk_artifact(
                artifact_dir, row.chunk_id, expect_digest=row.digest
            )
            if summary is None:
                ledger.demote(row.chunk_id, "artifact missing or corrupt")
                self.registry.counter("sweep.chunks.demoted").inc()
                self.progress.note(
                    f"chunk {row.chunk_id[:12]} artifact corrupt; recomputing"
                )
            else:
                verified += 1
        return verified

    def _claim_loop(
        self,
        ledger: SweepLedger,
        by_id: Dict[str, SweepChunk],
        artifact_dir: Path,
    ) -> str:
        counters = self.registry
        while True:
            if self._stop_requested.is_set():
                counters.counter("sweep.interrupts").inc()
                return "interrupted"
            if self.max_quarantined is not None:
                if ledger.counts()["quarantined"] > self.max_quarantined:
                    return "failed"
            claim = ledger.claim(self.owner, self.lease_seconds)
            if claim is None:
                if ledger.all_terminal():
                    return "terminal"
                # Another process holds the remaining leases; wait for
                # them to land (or for their leases to lapse).
                time.sleep(self.poll_interval)
                continue
            counters.counter("sweep.leases.claimed").inc()
            if claim.expired_takeover:
                counters.counter("sweep.leases.expired").inc()
                self.progress.note(
                    f"chunk {claim.row.chunk_id[:12]}: taking over a "
                    f"lapsed lease (attempt {claim.row.attempts})"
                )
            chunk = by_id.get(claim.row.chunk_id)
            if chunk is None:  # pragma: no cover - register() guarantees it
                ledger.fail(
                    claim.row.chunk_id, self.owner,
                    "chunk not in this sweep definition", self.chunk_retries,
                )
                continue
            try:
                self._execute_chunk(ledger, chunk, artifact_dir)
            except (KeyboardInterrupt, SystemExit):
                # Hard interrupt mid-chunk: put the chunk straight back
                # (no failure charged) and checkpoint.
                ledger.release(chunk.chunk_id, self.owner)
                counters.counter("sweep.interrupts").inc()
                return "interrupted"

    def _execute_chunk(
        self, ledger: SweepLedger, chunk: SweepChunk, artifact_dir: Path
    ) -> None:
        counters = self.registry
        try:
            with _LeaseHeartbeat(
                ledger, chunk.chunk_id, self.owner, self.lease_seconds
            ):
                results = self.pool.run(list(chunk.specs))
                failed = [
                    result.record
                    for result in results
                    if result.record.status != "ok"
                ]
                if failed:
                    raise ChunkFailure(
                        "; ".join(
                            f"{record.label} [{record.status}]: "
                            f"{record.error}"
                            for record in failed
                        )
                    )
                summary = self.summarize(chunk, results)
            digest = write_chunk_artifact(
                artifact_dir, chunk.chunk_id, summary
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
            state = ledger.fail(
                chunk.chunk_id, self.owner, error, self.chunk_retries
            )
            if state == "quarantined":
                counters.counter("sweep.chunks.quarantined").inc()
                self.progress.note(
                    f"chunk {chunk.chunk_id[:12]} quarantined: {error}"
                )
            else:
                counters.counter("sweep.chunks.failed").inc()
                self.progress.note(
                    f"chunk {chunk.chunk_id[:12]} failed (will retry): "
                    f"{error}"
                )
            return
        if ledger.complete(chunk.chunk_id, self.owner, digest):
            counters.counter("sweep.chunks.completed").inc()
        else:
            # Lease stolen while we computed; the thief's artifact is
            # byte-identical by determinism, so this work just counts as
            # a duplicate, not a conflict.
            counters.counter("sweep.leases.lost").inc()

    def _finish(
        self,
        ledger: SweepLedger,
        by_id: Dict[str, SweepChunk],
        artifact_dir: Path,
        state: str,
    ) -> SweepOutcome:
        counts = ledger.counts()
        metrics = self.registry.summary()
        if state == "interrupted":
            return SweepOutcome(
                state="interrupted", counts=counts, metrics=metrics,
                error="interrupted; resume with --resume",
            )
        if state == "failed":
            return SweepOutcome(
                state="failed", counts=counts, metrics=metrics,
                quarantined=[
                    row for row in ledger.chunks()
                    if row.state == "quarantined"
                ],
                error=(
                    f"{counts['quarantined']} quarantined chunk(s) exceed "
                    f"--max-quarantined {self.max_quarantined}"
                ),
            )
        summaries: List[Tuple[SweepChunk, Dict[str, Any]]] = []
        quarantined = []
        for row in ledger.chunks():
            if row.state == "quarantined":
                quarantined.append(row)
                continue
            if row.state != "done":  # pragma: no cover - loop is terminal
                continue
            summary = load_chunk_artifact(
                artifact_dir, row.chunk_id, expect_digest=row.digest
            )
            if summary is None:
                raise ChunkFailure(
                    f"chunk {row.chunk_id[:12]} artifact corrupt at combine "
                    f"time; re-run with --resume to recompute it"
                )
            summaries.append((by_id[row.chunk_id], summary))
        return SweepOutcome(
            state="degraded" if quarantined else "complete",
            summaries=summaries,
            quarantined=quarantined,
            counts=counts,
            metrics=metrics,
        )
