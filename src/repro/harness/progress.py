"""Progress reporting for harness runs.

The pool is quiet by default (library use, tests); the CLI attaches a
:class:`ProgressReporter` that narrates each job's start and landing on
stderr — ``[3/8] figure-2  ok  1.4s`` — plus a cache-hit marker, so a
warm run visibly flies by.  :class:`NullProgress` is the no-op sink.
"""

from __future__ import annotations

import sys
from typing import Optional, TextIO

from .manifest import JobRecord

__all__ = ["ProgressReporter", "NullProgress"]


class NullProgress:
    """Silent sink with the reporter interface."""

    def begin(self, total: int) -> None:
        pass

    def job_started(self, label: str) -> None:
        pass

    def job_finished(self, record: JobRecord) -> None:
        pass

    def note(self, message: str) -> None:
        pass


class ProgressReporter(NullProgress):
    """Line-per-job narration on a stream (default stderr)."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.total = 0
        self.done = 0

    def begin(self, total: int) -> None:
        self.total += total

    def job_started(self, label: str) -> None:
        print(f"       {label} ...", file=self.stream, flush=True)

    def job_finished(self, record: JobRecord) -> None:
        self.done += 1
        hit = "  (cache hit)" if record.cache_hit else ""
        status = record.status if record.status != "ok" else "ok"
        print(
            f"[{self.done}/{self.total}] {record.label:<24} {status:>7} "
            f"{record.wall_time:6.2f}s{hit}",
            file=self.stream,
            flush=True,
        )

    def note(self, message: str) -> None:
        print(message, file=self.stream, flush=True)
