"""Durable job/result store for the scenario service (``repro.serve``).

The harness's :class:`~repro.harness.cache.ResultCache` holds the heavy
pickled values; this sibling persists the *service-level* view — one row
per submitted job (cache key, kind, tenant, terminal status, attempts,
wall time) and one row per distinct result summary (canonical JSON plus
its SHA-256 digest) — so a restarted server can answer ``POST /jobs``
for a previously computed config straight from SQLite without touching
the engine, and ``GET /results/{digest}`` works across process
lifetimes.

Same stack as :class:`~repro.data.sqlstore.SqliteChainDatabase`: stdlib
``sqlite3``, WAL journal mode so the serving event loop's readers never
block the executor thread's writer, and a ``busy_timeout`` instead of
immediate lock errors.  One connection is shared across threads behind a
lock (every statement here is short), which keeps the store usable from
both the asyncio thread and the worker-pool bridge.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, NamedTuple, Optional, Union

__all__ = ["ResultStore", "JobRow", "RESULTSTORE_SCHEMA_VERSION"]

#: Bump on any table/column change; refuse files from a newer layout.
RESULTSTORE_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    name  TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS jobs (
    key          TEXT PRIMARY KEY,      -- JobSpec.cache_key()
    kind         TEXT NOT NULL,
    label        TEXT NOT NULL,
    params_json  TEXT NOT NULL,         -- canonical JSON
    tenant       TEXT NOT NULL,
    status       TEXT NOT NULL,         -- submitted | ok | failed | timeout
    digest       TEXT,                  -- result summary digest (ok only)
    error        TEXT,
    attempts     INTEGER NOT NULL DEFAULT 0,
    wall_time    REAL NOT NULL DEFAULT 0.0,
    cache_hit    INTEGER NOT NULL DEFAULT 0,
    submitted_at REAL NOT NULL,
    completed_at REAL
);
CREATE INDEX IF NOT EXISTS jobs_by_digest ON jobs (digest);
CREATE INDEX IF NOT EXISTS jobs_by_tenant ON jobs (tenant, submitted_at);

CREATE TABLE IF NOT EXISTS results (
    digest       TEXT PRIMARY KEY,      -- SHA-256 of summary_json
    kind         TEXT NOT NULL,
    summary_json TEXT NOT NULL,         -- canonical JSON summary
    created_at   REAL NOT NULL
);
"""

_JOB_COLUMNS = (
    "key", "kind", "label", "params_json", "tenant", "status", "digest",
    "error", "attempts", "wall_time", "cache_hit", "submitted_at",
    "completed_at",
)


class JobRow(NamedTuple):
    """One persisted job record."""

    key: str
    kind: str
    label: str
    params_json: str
    tenant: str
    status: str
    digest: Optional[str]
    error: Optional[str]
    attempts: int
    wall_time: float
    cache_hit: bool
    submitted_at: float
    completed_at: Optional[float]

    @property
    def terminal(self) -> bool:
        return self.status != "submitted"

    def as_dict(self) -> Dict[str, Any]:
        payload = self._asdict()
        payload["cache_hit"] = bool(payload["cache_hit"])
        return payload


class ResultStore:
    """WAL-mode SQLite persistence for the scenario service."""

    BUSY_TIMEOUT_MS = 5000

    def __init__(self, path: Union[str, Path] = ":memory:") -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.execute(f"PRAGMA busy_timeout={self.BUSY_TIMEOUT_MS}")
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        with self._conn:
            self._conn.executescript(_SCHEMA)
            self._check_schema_version()

    def _check_schema_version(self) -> None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE name='schema_version'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO meta VALUES ('schema_version', ?)",
                (str(RESULTSTORE_SCHEMA_VERSION),),
            )
            return
        version = int(row[0])
        if version > RESULTSTORE_SCHEMA_VERSION:
            raise ValueError(
                f"result store schema {version} is newer than this code "
                f"understands ({RESULTSTORE_SCHEMA_VERSION})"
            )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def journal_mode(self) -> str:
        with self._lock:
            (mode,) = self._conn.execute("PRAGMA journal_mode").fetchone()
        return mode

    # -- writes ------------------------------------------------------------

    def record_submitted(
        self,
        key: str,
        kind: str,
        label: str,
        params_json: str,
        tenant: str,
        submitted_at: Optional[float] = None,
    ) -> None:
        """Upsert the job as in flight.

        A resubmission of a key whose previous run failed simply
        rewrites the row — the store keeps the latest attempt.
        """
        now = time.time() if submitted_at is None else submitted_at
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT INTO jobs (key, kind, label, params_json, tenant,"
                " status, submitted_at) VALUES (?,?,?,?,?,'submitted',?)"
                " ON CONFLICT(key) DO UPDATE SET status='submitted',"
                " tenant=excluded.tenant, submitted_at=excluded.submitted_at,"
                " digest=NULL, error=NULL, attempts=0, wall_time=0.0,"
                " cache_hit=0, completed_at=NULL",
                (key, kind, label, params_json, tenant, now),
            )

    def record_completed(
        self,
        key: str,
        status: str,
        digest: Optional[str] = None,
        summary_json: Optional[str] = None,
        kind: Optional[str] = None,
        error: Optional[str] = None,
        attempts: int = 1,
        wall_time: float = 0.0,
        cache_hit: bool = False,
    ) -> None:
        """Mark the job terminal; on success also persist the summary."""
        if status not in ("ok", "failed", "timeout"):
            raise ValueError(f"not a terminal status: {status!r}")
        if status == "ok" and (digest is None or summary_json is None):
            raise ValueError("an ok job needs a digest and a summary")
        now = time.time()
        with self._lock, self._conn:
            self._conn.execute(
                "UPDATE jobs SET status=?, digest=?, error=?, attempts=?,"
                " wall_time=?, cache_hit=?, completed_at=? WHERE key=?",
                (status, digest, error, attempts, wall_time,
                 int(cache_hit), now, key),
            )
            if status == "ok":
                if kind is None:
                    found = self._conn.execute(
                        "SELECT kind FROM jobs WHERE key=?", (key,)
                    ).fetchone()
                    kind = found[0] if found else ""
                self._conn.execute(
                    "INSERT OR IGNORE INTO results VALUES (?,?,?,?)",
                    (digest, kind, summary_json, now),
                )

    def forget(self, key: str) -> None:
        """Drop one job row (its result row, if shared, survives)."""
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM jobs WHERE key=?", (key,))

    # -- reads -------------------------------------------------------------

    def get_job(self, key: str) -> Optional[JobRow]:
        with self._lock:
            row = self._conn.execute(
                f"SELECT {', '.join(_JOB_COLUMNS)} FROM jobs WHERE key=?",
                (key,),
            ).fetchone()
        return self._job_from_row(row) if row else None

    def get_result(self, digest: str) -> Optional[Dict[str, Any]]:
        """The stored summary (parsed) for one result digest."""
        with self._lock:
            row = self._conn.execute(
                "SELECT kind, summary_json FROM results WHERE digest=?",
                (digest,),
            ).fetchone()
        if row is None:
            return None
        kind, summary_json = row
        return {
            "digest": digest,
            "kind": kind,
            "summary": json.loads(summary_json),
        }

    def list_jobs(self, limit: int = 100) -> List[JobRow]:
        with self._lock:
            rows = self._conn.execute(
                f"SELECT {', '.join(_JOB_COLUMNS)} FROM jobs"
                " ORDER BY submitted_at DESC, key LIMIT ?",
                (limit,),
            ).fetchall()
        return [self._job_from_row(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        """Row totals by status plus the distinct-result count."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT status, COUNT(*) FROM jobs GROUP BY status"
            ).fetchall()
            (results,) = self._conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()
        payload = {f"jobs_{status}": count for status, count in rows}
        payload["jobs"] = sum(count for _, count in rows)
        payload["results"] = results
        return payload

    @staticmethod
    def _job_from_row(row) -> JobRow:
        values = list(row)
        values[10] = bool(values[10])  # cache_hit
        return JobRow(*values)
