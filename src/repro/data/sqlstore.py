"""SQLite-backed analysis database.

The in-memory :class:`~repro.data.store.ChainDatabase` is ideal inside one
process; this sibling persists the same records to a SQLite file (stdlib
``sqlite3``, no dependencies) so month-scale exports survive across runs
and can be queried with plain SQL — the closest shape to the authors' own
"separate database" workflow.

The query surface mirrors ``ChainDatabase`` method-for-method, and the
equivalence test in the suite runs both against identical inputs.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from .records import BlockRecord, TxRecord
from .windows import DAY, HOUR

__all__ = ["SqliteChainDatabase"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS blocks (
    chain       TEXT NOT NULL,
    number      INTEGER NOT NULL,
    timestamp   INTEGER NOT NULL,
    difficulty  INTEGER NOT NULL,
    miner       TEXT NOT NULL,
    tx_count    INTEGER NOT NULL,
    contract_tx_count INTEGER NOT NULL,
    gas_used    INTEGER NOT NULL,
    PRIMARY KEY (chain, number)
);
CREATE INDEX IF NOT EXISTS blocks_by_time ON blocks (chain, timestamp);

CREATE TABLE IF NOT EXISTS txs (
    chain        TEXT NOT NULL,
    tx_hash      BLOB NOT NULL,
    block_number INTEGER NOT NULL,
    timestamp    INTEGER NOT NULL,
    sender       BLOB NOT NULL,
    recipient    BLOB,
    value        TEXT NOT NULL,          -- wei exceeds SQLite's int64
    is_contract  INTEGER NOT NULL,
    replay_protected INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS txs_by_hash ON txs (chain, tx_hash);
CREATE INDEX IF NOT EXISTS txs_by_time ON txs (chain, timestamp);
"""


class SqliteChainDatabase:
    """A :class:`ChainDatabase`-compatible store on SQLite.

    Use as a context manager or call :meth:`close` explicitly::

        with SqliteChainDatabase("study.db") as db:
            db.insert_blocks(records)
            print(db.blocks_per_hour("ETC"))
    """

    #: Milliseconds a writer waits on a locked database before raising
    #: ``sqlite3.OperationalError`` — generous enough for a reader-heavy
    #: scenario server sharing the file with an ingesting writer.
    BUSY_TIMEOUT_MS = 5000

    def __init__(self, path: Union[str, Path] = ":memory:") -> None:
        self._conn = sqlite3.connect(str(path))
        # WAL lets concurrent readers (e.g. the repro.serve process)
        # proceed while one writer appends; on ``:memory:`` databases
        # SQLite ignores the request and stays in ``memory`` mode.
        self._conn.execute(f"PRAGMA busy_timeout={self.BUSY_TIMEOUT_MS}")
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.executescript(_SCHEMA)

    @property
    def journal_mode(self) -> str:
        (mode,) = self._conn.execute("PRAGMA journal_mode").fetchone()
        return mode

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SqliteChainDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- ingest ----------------------------------------------------------------

    def insert_blocks(self, records: Iterable[BlockRecord]) -> int:
        rows = [
            (
                r.chain, r.number, r.timestamp, r.difficulty, r.miner,
                r.tx_count, r.contract_tx_count, r.gas_used,
            )
            for r in records
        ]
        with self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO blocks VALUES (?,?,?,?,?,?,?,?)",
                rows,
            )
        return len(rows)

    def insert_transactions(self, records: Iterable[TxRecord]) -> int:
        rows = [
            (
                r.chain, r.tx_hash, r.block_number, r.timestamp, r.sender,
                r.to, str(r.value), int(r.is_contract),
                int(r.replay_protected),
            )
            for r in records
        ]
        with self._conn:
            self._conn.executemany(
                "INSERT INTO txs VALUES (?,?,?,?,?,?,?,?,?)", rows
            )
        return len(rows)

    # -- block queries ------------------------------------------------------------

    def chains(self) -> List[str]:
        rows = self._conn.execute(
            "SELECT chain FROM blocks UNION SELECT chain FROM txs"
        )
        return sorted(row[0] for row in rows)

    def block_count(self, chain: str) -> int:
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM blocks WHERE chain=?", (chain,)
        ).fetchone()
        return count

    def blocks(self, chain: str) -> List[BlockRecord]:
        rows = self._conn.execute(
            "SELECT chain, number, timestamp, difficulty, miner, tx_count,"
            " contract_tx_count, gas_used FROM blocks WHERE chain=?"
            " ORDER BY number",
            (chain,),
        )
        return [BlockRecord(*row) for row in rows]

    def blocks_between(
        self, chain: str, start_ts: float, end_ts: float
    ) -> List[BlockRecord]:
        rows = self._conn.execute(
            "SELECT chain, number, timestamp, difficulty, miner, tx_count,"
            " contract_tx_count, gas_used FROM blocks"
            " WHERE chain=? AND timestamp>=? AND timestamp<? ORDER BY number",
            (chain, start_ts, end_ts),
        )
        return [BlockRecord(*row) for row in rows]

    def blocks_per_hour(self, chain: str) -> Dict[int, int]:
        rows = self._conn.execute(
            "SELECT timestamp/? AS hour, COUNT(*) FROM blocks"
            " WHERE chain=? GROUP BY hour",
            (HOUR, chain),
        )
        return {hour: count for hour, count in rows}

    def difficulty_series(self, chain: str) -> List[Tuple[int, int]]:
        rows = self._conn.execute(
            "SELECT timestamp, difficulty FROM blocks WHERE chain=?"
            " ORDER BY number",
            (chain,),
        )
        return list(rows)

    def block_deltas(self, chain: str) -> List[Tuple[int, int]]:
        series = self.difficulty_series(chain)
        deltas = []
        for (prev_ts, _), (ts, _) in zip(series, series[1:]):
            deltas.append((ts, ts - prev_ts))
        return deltas

    def miner_label_series(self, chain: str) -> List[Tuple[int, str]]:
        rows = self._conn.execute(
            "SELECT timestamp, miner FROM blocks WHERE chain=?"
            " ORDER BY number",
            (chain,),
        )
        return list(rows)

    # -- transaction queries ----------------------------------------------------

    def tx_count(self, chain: str) -> int:
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM txs WHERE chain=?", (chain,)
        ).fetchone()
        return count

    def transactions(self, chain: str) -> List[TxRecord]:
        rows = self._conn.execute(
            "SELECT chain, tx_hash, block_number, timestamp, sender,"
            " recipient, value, is_contract, replay_protected FROM txs"
            " WHERE chain=? ORDER BY timestamp, block_number",
            (chain,),
        )
        return [self._tx_from_row(row) for row in rows]

    def lookup_tx(self, chain: str, tx_hash: bytes) -> Optional[TxRecord]:
        row = self._conn.execute(
            "SELECT chain, tx_hash, block_number, timestamp, sender,"
            " recipient, value, is_contract, replay_protected FROM txs"
            " WHERE chain=? AND tx_hash=? ORDER BY rowid LIMIT 1",
            (chain, tx_hash),
        ).fetchone()
        return self._tx_from_row(row) if row else None

    def transactions_per_day(self, chain: str) -> Dict[int, int]:
        rows = self._conn.execute(
            "SELECT timestamp/? AS day, COUNT(*) FROM txs"
            " WHERE chain=? GROUP BY day",
            (DAY, chain),
        )
        return {day: count for day, count in rows}

    def contract_fraction_per_day(self, chain: str) -> Dict[int, float]:
        rows = self._conn.execute(
            "SELECT timestamp/? AS day, AVG(is_contract) FROM txs"
            " WHERE chain=? GROUP BY day",
            (DAY, chain),
        )
        return {day: fraction for day, fraction in rows}

    def iter_tx_sightings(self) -> Iterator[TxRecord]:
        rows = self._conn.execute(
            "SELECT chain, tx_hash, block_number, timestamp, sender,"
            " recipient, value, is_contract, replay_protected FROM txs"
            " ORDER BY timestamp, chain, block_number"
        )
        for row in rows:
            yield self._tx_from_row(row)

    @staticmethod
    def _tx_from_row(row) -> TxRecord:
        (chain, tx_hash, block_number, timestamp, sender, recipient,
         value, is_contract, protected) = row
        return TxRecord(
            chain=chain,
            tx_hash=bytes(tx_hash),
            block_number=block_number,
            timestamp=timestamp,
            sender=bytes(sender),
            to=bytes(recipient) if recipient is not None else None,
            value=int(value),
            is_contract=bool(is_contract),
            replay_protected=bool(protected),
        )
