"""Analysis-facing record types.

The authors "exported all block and transaction information from the nodes
and processed it in a separate database" (Section 3.1).  These records are
that export format: flat, chain-tagged rows with exactly the fields the
paper's figures consume.  Both data sources produce them —
:func:`export_chain` walks a real :class:`~repro.chain.chainstore.Blockchain`,
and the fast simulator emits them directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..chain.chainstore import Blockchain

__all__ = ["BlockRecord", "TxRecord", "export_chain", "export_transactions"]


@dataclass(frozen=True)
class BlockRecord:
    """One block, as the analysis database sees it."""

    chain: str
    number: int
    timestamp: int
    difficulty: int
    #: Human-meaningful miner label (pool name or truncated address).
    miner: str
    tx_count: int
    contract_tx_count: int
    gas_used: int = 0

    @property
    def plain_tx_count(self) -> int:
        return self.tx_count - self.contract_tx_count


@dataclass(frozen=True)
class TxRecord:
    """One transaction observation on one chain.

    The echo detector joins these across chains by ``tx_hash``; a hash seen
    on both sides is a rebroadcast (Figure 4).  ``timestamp`` is the block
    timestamp — the same first-seen proxy the paper uses to attribute echo
    direction.
    """

    chain: str
    tx_hash: bytes
    block_number: int
    timestamp: int
    sender: bytes
    to: Optional[bytes]
    value: int
    is_contract: bool
    replay_protected: bool

    def key(self) -> bytes:
        return self.tx_hash


def export_chain(
    chain: Blockchain,
    pool_label,
    start: int = 0,
    end: Optional[int] = None,
) -> List[BlockRecord]:
    """Export a canonical chain segment to block records.

    ``pool_label`` maps a coinbase :class:`Address` to a display label (see
    :meth:`repro.mining.pool.PoolDirectory.label_for`).
    """
    records = []
    for block in chain.canonical_blocks(start, end):
        contract_count = sum(
            1 for tx in block.transactions if tx.is_contract_interaction
        )
        records.append(
            BlockRecord(
                chain=chain.config.name,
                number=block.number,
                timestamp=block.timestamp,
                difficulty=block.difficulty,
                miner=pool_label(block.coinbase),
                tx_count=len(block.transactions),
                contract_tx_count=contract_count,
                gas_used=block.header.gas_used,
            )
        )
    return records


def export_transactions(
    chain: Blockchain, start: int = 0, end: Optional[int] = None
) -> Iterator[TxRecord]:
    """Yield transaction records for a canonical chain segment."""
    for block in chain.canonical_blocks(start, end):
        for tx in block.transactions:
            yield TxRecord(
                chain=chain.config.name,
                tx_hash=bytes(tx.tx_hash),
                block_number=block.number,
                timestamp=block.timestamp,
                sender=bytes(tx.sender),
                to=bytes(tx.to) if tx.to is not None else None,
                value=tx.value,
                is_contract=tx.is_contract_interaction,
                replay_protected=tx.is_replay_protected,
            )
