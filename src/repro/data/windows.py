"""Time-window aggregation: the hourly/daily buckets behind every figure.

The paper reports blocks *per hour* (Figure 1), transactions *per day*
(Figure 2), rebroadcasts *per day* (Figure 4), and daily top-N pool shares
(Figure 5).  This module provides one windowing abstraction shared by all
of them, so bucket-boundary behaviour is consistent (and tested once).

Windows are half-open ``[start, start + width)`` aligned to the epoch, so
every timestamped observation falls in exactly one bucket.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Tuple, TypeVar

__all__ = [
    "HOUR",
    "DAY",
    "window_index",
    "window_start",
    "bucket_by_window",
    "count_per_window",
    "mean_per_window",
    "sum_per_window",
    "fill_missing_windows",
]

HOUR = 3_600
DAY = 86_400

T = TypeVar("T")


def window_index(timestamp: float, width: int) -> int:
    """Which window a timestamp falls into (floor division by width)."""
    if width <= 0:
        raise ValueError("window width must be positive")
    return int(timestamp // width)


def window_start(index: int, width: int) -> int:
    return index * width


def bucket_by_window(
    items: Iterable[T],
    timestamp_of: Callable[[T], float],
    width: int,
) -> Dict[int, List[T]]:
    """Group items into windows by their timestamps."""
    buckets: Dict[int, List[T]] = {}
    for item in items:
        buckets.setdefault(window_index(timestamp_of(item), width), []).append(
            item
        )
    return buckets


def count_per_window(
    timestamps: Iterable[float], width: int
) -> Dict[int, int]:
    """Histogram of event counts per window (e.g. blocks per hour)."""
    counts: Dict[int, int] = {}
    for timestamp in timestamps:
        index = window_index(timestamp, width)
        counts[index] = counts.get(index, 0) + 1
    return counts


def sum_per_window(
    items: Iterable[T],
    timestamp_of: Callable[[T], float],
    value_of: Callable[[T], float],
    width: int,
) -> Dict[int, float]:
    sums: Dict[int, float] = {}
    for item in items:
        index = window_index(timestamp_of(item), width)
        sums[index] = sums.get(index, 0.0) + value_of(item)
    return sums


def mean_per_window(
    items: Iterable[T],
    timestamp_of: Callable[[T], float],
    value_of: Callable[[T], float],
    width: int,
) -> Dict[int, float]:
    """Per-window arithmetic mean (e.g. average difficulty per hour)."""
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for item in items:
        index = window_index(timestamp_of(item), width)
        sums[index] = sums.get(index, 0.0) + value_of(item)
        counts[index] = counts.get(index, 0) + 1
    return {index: sums[index] / counts[index] for index in sums}


def fill_missing_windows(
    series: Dict[int, float],
    start_index: int,
    end_index: int,
    fill: float = 0.0,
) -> List[Tuple[int, float]]:
    """Densify a sparse window series over ``[start_index, end_index]``.

    Figure 1's most important feature — ETC's blocks-per-hour falling to
    ~zero — only appears if empty windows are *materialized* rather than
    skipped; this helper makes that explicit everywhere.
    """
    if end_index < start_index:
        raise ValueError("end before start")
    return [
        (index, series.get(index, fill))
        for index in range(start_index, end_index + 1)
    ]
