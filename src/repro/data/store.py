"""The analysis database: indexed block & transaction storage.

This is the reproduction of the paper's "separate database" (Section 3.1):
a queryable store decoupled from node operation.  It indexes block records
by chain and window, and transaction records by hash for the cross-chain
echo join.  All figures read from here — never directly from a node — so
the analysis code is identical whether the data came from the message-level
simulator, the fast simulator, or (in principle) a real chain export.

This record-backed store is the *oracle* implementation: every aggregated
query here has a columnar twin in
:class:`~repro.data.columnar.ColumnarChainDatabase`, and the differential
tests pin the two byte-identical.  Aggregations therefore accumulate in
**stored order** (blocks sorted by number, the ingest invariant) with the
exact float semantics the columnar kernels replicate.
"""

from __future__ import annotations

import operator
from bisect import bisect_left
from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .records import BlockRecord, TxRecord
from .windows import DAY, HOUR, window_index

__all__ = ["ChainDatabase"]

_BLOCK_KEY = operator.attrgetter("number")
_BLOCK_TS_KEY = operator.attrgetter("timestamp")
_TX_KEY = operator.attrgetter("timestamp", "block_number")
_SIGHTING_KEY = operator.attrgetter("timestamp", "chain", "block_number")


class ChainDatabase:
    """In-memory, chain-partitioned store with the paper's query surface."""

    def __init__(self) -> None:
        self._blocks: Dict[str, List[BlockRecord]] = {}
        self._txs: Dict[str, List[TxRecord]] = {}
        self._tx_by_hash: Dict[str, Dict[bytes, TxRecord]] = {}
        #: Per-chain "timestamps are non-decreasing in stored order" flag:
        #: True/False when known, None when it must be recomputed (after a
        #: number-order re-sort shuffled an unknown timestamp order).
        self._ts_monotone: Dict[str, Optional[bool]] = {}

    # -- ingest ----------------------------------------------------------------

    def insert_blocks(self, records: Iterable[BlockRecord]) -> int:
        # Two ingest fast paths: (a) only the chains this batch touched are
        # examined, and (b) a batch that arrives in number order — the
        # streaming ``to_database`` path always does — skips the per-chain
        # re-sort entirely (stable sort of a sorted list is the identity,
        # so skipping it is observationally equivalent).
        count = 0
        needs_sort: Dict[str, bool] = {}
        blocks = self._blocks
        monotone = self._ts_monotone
        for record in records:
            chain = record.chain
            rows = blocks.get(chain)
            if rows is None:
                rows = blocks[chain] = []
                needs_sort[chain] = False
                monotone[chain] = True
            else:
                if chain not in needs_sort:
                    needs_sort[chain] = False
                last = rows[-1]
                if record.number < last.number:
                    needs_sort[chain] = True
                if monotone.get(chain) and record.timestamp < last.timestamp:
                    monotone[chain] = False
            rows.append(record)
            count += 1
        for chain, dirty in needs_sort.items():
            if dirty:
                blocks[chain].sort(key=_BLOCK_KEY)
                # The re-sort (by number) may have reordered timestamps in
                # either direction; recompute lazily on the next range query.
                monotone[chain] = None
        return count

    def insert_transactions(self, records: Iterable[TxRecord]) -> int:
        count = 0
        needs_sort: Dict[str, bool] = {}
        txs = self._txs
        for record in records:
            chain = record.chain
            rows = txs.get(chain)
            if rows is None:
                rows = txs[chain] = []
                needs_sort[chain] = False
            else:
                if chain not in needs_sort:
                    needs_sort[chain] = False
                last = rows[-1]
                if (record.timestamp, record.block_number) < (
                    last.timestamp,
                    last.block_number,
                ):
                    needs_sort[chain] = True
            rows.append(record)
            index = self._tx_by_hash.setdefault(chain, {})
            # First observation wins: block order approximates broadcast
            # order, and the echo join wants the earliest sighting.
            index.setdefault(record.tx_hash, record)
            count += 1
        for chain, dirty in needs_sort.items():
            if dirty:
                txs[chain].sort(key=_TX_KEY)
        return count

    # -- block queries ------------------------------------------------------------

    def chains(self) -> List[str]:
        return sorted(set(self._blocks) | set(self._txs))

    def blocks(self, chain: str) -> List[BlockRecord]:
        return list(self._blocks.get(chain, []))

    def block_count(self, chain: str) -> int:
        return len(self._blocks.get(chain, []))

    def _timestamps_monotone(self, chain: str) -> bool:
        """Whether the chain's stored timestamps are non-decreasing."""
        flag = self._ts_monotone.get(chain)
        if flag is None:
            records = self._blocks.get(chain, [])
            flag = all(
                a.timestamp <= b.timestamp
                for a, b in zip(records, records[1:])
            )
            self._ts_monotone[chain] = flag
        return flag

    def blocks_between(
        self, chain: str, start_ts: float, end_ts: float
    ) -> List[BlockRecord]:
        records = self._blocks.get(chain, [])
        if not records:
            return []
        if self._timestamps_monotone(chain):
            # Simulator traces have non-decreasing timestamps, so the
            # half-open window is a contiguous slice found by bisection.
            lo = bisect_left(records, start_ts, key=_BLOCK_TS_KEY)
            hi = bisect_left(records, end_ts, key=_BLOCK_TS_KEY)
            return records[lo:hi]
        return [
            record
            for record in records
            if start_ts <= record.timestamp < end_ts
        ]

    def blocks_per_hour(
        self, chain: str, start_ts: Optional[float] = None
    ) -> Dict[int, int]:
        """Figure 1 (top): hourly block production histogram."""
        counts: Dict[int, int] = {}
        for record in self._blocks.get(chain, []):
            if start_ts is not None and record.timestamp < start_ts:
                continue
            index = window_index(record.timestamp, HOUR)
            counts[index] = counts.get(index, 0) + 1
        return counts

    def difficulty_series(self, chain: str) -> List[Tuple[int, int]]:
        """(timestamp, difficulty) per block, in chain order."""
        return [
            (record.timestamp, record.difficulty)
            for record in self._blocks.get(chain, [])
        ]

    def block_deltas(self, chain: str) -> List[Tuple[int, int]]:
        """Figure 1 (bottom): (timestamp, seconds since previous block)."""
        records = self._blocks.get(chain, [])
        deltas = []
        for previous, current in zip(records, records[1:]):
            deltas.append((current.timestamp, current.timestamp - previous.timestamp))
        return deltas

    def miner_label_series(self, chain: str) -> List[Tuple[int, str]]:
        """(timestamp, miner label) per block — Figure 5's raw input."""
        return [
            (record.timestamp, record.miner)
            for record in self._blocks.get(chain, [])
        ]

    # -- aggregated block queries (the figure-path kernels) ---------------------
    #
    # Each of these is the record-level oracle for a columnar kernel in
    # :class:`~repro.data.columnar.ColumnarChainDatabase`.  They reproduce
    # the trace-level helpers in :mod:`repro.core.metrics` exactly — same
    # bucketing (epoch-aligned half-open windows), same start filter
    # (applied *before* bucketing), same accumulation order and float
    # semantics — so the db-backed figure pipeline is byte-identical to
    # the trace-backed one.

    def daily_mean_difficulty(
        self, chain: str, start_ts: Optional[float] = None
    ) -> Dict[int, float]:
        """Day index -> mean difficulty, accumulated in stored order.

        Difficulty day-sums exceed 2**53, so the result depends on the
        IEEE addition order; both backends accumulate sequentially in
        stored order — the same order ``TimeSeries.resample_mean`` uses.
        """
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for record in self._blocks.get(chain, []):
            timestamp = record.timestamp
            if start_ts is not None and timestamp < start_ts:
                continue
            index = window_index(timestamp, DAY)
            sums[index] = sums.get(index, 0.0) + float(record.difficulty)
            counts[index] = counts.get(index, 0) + 1
        return {index: sums[index] / counts[index] for index in sums}

    def hourly_mean_block_delta(
        self, chain: str, start_ts: Optional[float] = None
    ) -> Dict[int, float]:
        """Hour index -> mean inter-block gap (seconds).

        Matches ``trace_block_deltas(...).resample_mean(HOUR)``: a delta
        belongs to the *current* block's hour, and the start filter tests
        the current block only (the previous one may predate it).
        """
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        records = self._blocks.get(chain, [])
        for previous, current in zip(records, records[1:]):
            timestamp = current.timestamp
            if start_ts is not None and timestamp < start_ts:
                continue
            index = window_index(timestamp, HOUR)
            sums[index] = sums.get(index, 0.0) + float(
                timestamp - previous.timestamp
            )
            counts[index] = counts.get(index, 0) + 1
        return {index: sums[index] / counts[index] for index in sums}

    def block_transactions_per_day(
        self, chain: str, start_ts: Optional[float] = None
    ) -> Dict[int, int]:
        """Day index -> transactions, summed from per-block tx counts.

        Unlike :meth:`transactions_per_day` (which counts ``TxRecord``
        rows), this reads the block table — the figure pipeline's source,
        since the fast simulator emits counts, not individual txs.
        """
        counts: Dict[int, int] = {}
        for record in self._blocks.get(chain, []):
            timestamp = record.timestamp
            if start_ts is not None and timestamp < start_ts:
                continue
            index = window_index(timestamp, DAY)
            counts[index] = counts.get(index, 0) + record.tx_count
        return counts

    def block_contract_fraction_per_day(
        self, chain: str, start_ts: Optional[float] = None
    ) -> Dict[int, float]:
        """Day index -> contract-tx fraction from per-block counts.

        Days whose blocks carry zero transactions are skipped (a gap, not
        a zero) — the same rule as the trace-level helper.
        """
        totals: Dict[int, int] = {}
        contracts: Dict[int, int] = {}
        for record in self._blocks.get(chain, []):
            timestamp = record.timestamp
            if start_ts is not None and timestamp < start_ts:
                continue
            index = window_index(timestamp, DAY)
            totals[index] = totals.get(index, 0) + record.tx_count
            contracts[index] = contracts.get(index, 0) + record.contract_tx_count
        return {
            index: contracts.get(index, 0) / totals[index]
            for index in totals
            if totals[index] > 0
        }

    def daily_miner_counts(
        self, chain: str, start_ts: Optional[float] = None
    ) -> Dict[int, Counter]:
        """Day index -> Counter of miner labels (Figure 5's raw input).

        Counter insertion order is each label's first appearance that day
        (in stored order) — ``most_common`` tie-breaking is stable, so the
        columnar twin must and does reproduce this order.
        """
        days: Dict[int, Counter] = {}
        for record in self._blocks.get(chain, []):
            timestamp = record.timestamp
            if start_ts is not None and timestamp < start_ts:
                continue
            index = window_index(timestamp, DAY)
            counter = days.get(index)
            if counter is None:
                counter = days[index] = Counter()
            counter[record.miner] += 1
        return days

    # -- transaction queries ----------------------------------------------------

    def transactions(self, chain: str) -> List[TxRecord]:
        return list(self._txs.get(chain, []))

    def tx_count(self, chain: str) -> int:
        return len(self._txs.get(chain, []))

    def lookup_tx(self, chain: str, tx_hash: bytes) -> Optional[TxRecord]:
        return self._tx_by_hash.get(chain, {}).get(tx_hash)

    def transactions_per_day(self, chain: str) -> Dict[int, int]:
        """Figure 2 (middle): daily transaction counts."""
        counts: Dict[int, int] = {}
        for record in self._txs.get(chain, []):
            index = window_index(record.timestamp, DAY)
            counts[index] = counts.get(index, 0) + 1
        return counts

    def contract_fraction_per_day(self, chain: str) -> Dict[int, float]:
        """Figure 2 (bottom): daily fraction of contract transactions."""
        totals: Dict[int, int] = {}
        contracts: Dict[int, int] = {}
        for record in self._txs.get(chain, []):
            index = window_index(record.timestamp, DAY)
            totals[index] = totals.get(index, 0) + 1
            if record.is_contract:
                contracts[index] = contracts.get(index, 0) + 1
        return {
            index: contracts.get(index, 0) / totals[index] for index in totals
        }

    def iter_tx_sightings(self) -> Iterator[TxRecord]:
        """All transaction observations across chains, time-ordered.

        This is the stream the echo detector consumes: interleaved
        first-sightings from every chain, as a node operator watching both
        networks would observe them.
        """
        streams = [
            record for records in self._txs.values() for record in records
        ]
        streams.sort(key=_SIGHTING_KEY)
        return iter(streams)
