"""The analysis database: indexed block & transaction storage.

This is the reproduction of the paper's "separate database" (Section 3.1):
a queryable store decoupled from node operation.  It indexes block records
by chain and window, and transaction records by hash for the cross-chain
echo join.  All figures read from here — never directly from a node — so
the analysis code is identical whether the data came from the message-level
simulator, the fast simulator, or (in principle) a real chain export.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .records import BlockRecord, TxRecord
from .windows import DAY, HOUR, window_index

__all__ = ["ChainDatabase"]


class ChainDatabase:
    """In-memory, chain-partitioned store with the paper's query surface."""

    def __init__(self) -> None:
        self._blocks: Dict[str, List[BlockRecord]] = {}
        self._txs: Dict[str, List[TxRecord]] = {}
        self._tx_by_hash: Dict[str, Dict[bytes, TxRecord]] = {}

    # -- ingest ----------------------------------------------------------------

    def insert_blocks(self, records: Iterable[BlockRecord]) -> int:
        # Only re-sort the chains this batch touched: repeated ingest
        # (the streaming to_database path inserts per chain) used to
        # re-sort every table on every call.
        count = 0
        touched = set()
        blocks = self._blocks
        for record in records:
            chain = record.chain
            rows = blocks.get(chain)
            if rows is None:
                rows = blocks[chain] = []
            rows.append(record)
            touched.add(chain)
            count += 1
        for chain in touched:
            blocks[chain].sort(key=lambda r: r.number)
        return count

    def insert_transactions(self, records: Iterable[TxRecord]) -> int:
        count = 0
        touched = set()
        for record in records:
            chain = record.chain
            self._txs.setdefault(chain, []).append(record)
            index = self._tx_by_hash.setdefault(chain, {})
            # First observation wins: block order approximates broadcast
            # order, and the echo join wants the earliest sighting.
            index.setdefault(record.tx_hash, record)
            touched.add(chain)
            count += 1
        for chain in touched:
            self._txs[chain].sort(key=lambda r: (r.timestamp, r.block_number))
        return count

    # -- block queries ------------------------------------------------------------

    def chains(self) -> List[str]:
        return sorted(set(self._blocks) | set(self._txs))

    def blocks(self, chain: str) -> List[BlockRecord]:
        return list(self._blocks.get(chain, []))

    def block_count(self, chain: str) -> int:
        return len(self._blocks.get(chain, []))

    def blocks_between(
        self, chain: str, start_ts: float, end_ts: float
    ) -> List[BlockRecord]:
        return [
            record
            for record in self._blocks.get(chain, [])
            if start_ts <= record.timestamp < end_ts
        ]

    def blocks_per_hour(self, chain: str) -> Dict[int, int]:
        """Figure 1 (top): hourly block production histogram."""
        counts: Dict[int, int] = {}
        for record in self._blocks.get(chain, []):
            index = window_index(record.timestamp, HOUR)
            counts[index] = counts.get(index, 0) + 1
        return counts

    def difficulty_series(self, chain: str) -> List[Tuple[int, int]]:
        """(timestamp, difficulty) per block, in chain order."""
        return [
            (record.timestamp, record.difficulty)
            for record in self._blocks.get(chain, [])
        ]

    def block_deltas(self, chain: str) -> List[Tuple[int, int]]:
        """Figure 1 (bottom): (timestamp, seconds since previous block)."""
        records = self._blocks.get(chain, [])
        deltas = []
        for previous, current in zip(records, records[1:]):
            deltas.append((current.timestamp, current.timestamp - previous.timestamp))
        return deltas

    def miner_label_series(self, chain: str) -> List[Tuple[int, str]]:
        """(timestamp, miner label) per block — Figure 5's raw input."""
        return [
            (record.timestamp, record.miner)
            for record in self._blocks.get(chain, [])
        ]

    # -- transaction queries ----------------------------------------------------

    def transactions(self, chain: str) -> List[TxRecord]:
        return list(self._txs.get(chain, []))

    def tx_count(self, chain: str) -> int:
        return len(self._txs.get(chain, []))

    def lookup_tx(self, chain: str, tx_hash: bytes) -> Optional[TxRecord]:
        return self._tx_by_hash.get(chain, {}).get(tx_hash)

    def transactions_per_day(self, chain: str) -> Dict[int, int]:
        """Figure 2 (middle): daily transaction counts."""
        counts: Dict[int, int] = {}
        for record in self._txs.get(chain, []):
            index = window_index(record.timestamp, DAY)
            counts[index] = counts.get(index, 0) + 1
        return counts

    def contract_fraction_per_day(self, chain: str) -> Dict[int, float]:
        """Figure 2 (bottom): daily fraction of contract transactions."""
        totals: Dict[int, int] = {}
        contracts: Dict[int, int] = {}
        for record in self._txs.get(chain, []):
            index = window_index(record.timestamp, DAY)
            totals[index] = totals.get(index, 0) + 1
            if record.is_contract:
                contracts[index] = contracts.get(index, 0) + 1
        return {
            index: contracts.get(index, 0) / totals[index] for index in totals
        }

    def iter_tx_sightings(self) -> Iterator[TxRecord]:
        """All transaction observations across chains, time-ordered.

        This is the stream the echo detector consumes: interleaved
        first-sightings from every chain, as a node operator watching both
        networks would observe them.
        """
        streams = [
            record for records in self._txs.values() for record in records
        ]
        streams.sort(key=lambda r: (r.timestamp, r.chain, r.block_number))
        return iter(streams)
