"""The analysis data layer: records, windowed aggregation, storage, CSV."""

from .csvio import (
    read_blocks_csv,
    read_series_csv,
    read_txs_csv,
    write_blocks_csv,
    write_series_csv,
    write_txs_csv,
)
from .columnar import ColumnarChainDatabase
from .records import BlockRecord, TxRecord, export_chain, export_transactions
from .resultstore import RESULTSTORE_SCHEMA_VERSION, JobRow, ResultStore
from .sqlstore import SqliteChainDatabase
from .store import ChainDatabase
from .windows import (
    DAY,
    HOUR,
    bucket_by_window,
    count_per_window,
    fill_missing_windows,
    mean_per_window,
    sum_per_window,
    window_index,
    window_start,
)

__all__ = [
    "BlockRecord",
    "TxRecord",
    "export_chain",
    "export_transactions",
    "ChainDatabase",
    "ColumnarChainDatabase",
    "JobRow",
    "RESULTSTORE_SCHEMA_VERSION",
    "ResultStore",
    "SqliteChainDatabase",
    "HOUR",
    "DAY",
    "window_index",
    "window_start",
    "bucket_by_window",
    "count_per_window",
    "sum_per_window",
    "mean_per_window",
    "fill_missing_windows",
    "write_blocks_csv",
    "read_blocks_csv",
    "write_txs_csv",
    "read_txs_csv",
    "write_series_csv",
    "read_series_csv",
]
