"""CSV import/export for the analysis database.

The benchmark harness writes every regenerated figure's series to CSV so
results can be inspected (or plotted) outside the test run, and scenario
outputs can be cached between runs.  Formats are plain ``csv`` module
output with stable headers — no pandas dependency.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .records import BlockRecord, TxRecord

__all__ = [
    "write_blocks_csv",
    "read_blocks_csv",
    "write_txs_csv",
    "read_txs_csv",
    "write_series_csv",
    "read_series_csv",
]

_BLOCK_HEADER = [
    "chain",
    "number",
    "timestamp",
    "difficulty",
    "miner",
    "tx_count",
    "contract_tx_count",
    "gas_used",
]

_TX_HEADER = [
    "chain",
    "tx_hash",
    "block_number",
    "timestamp",
    "sender",
    "to",
    "value",
    "is_contract",
    "replay_protected",
]


def write_blocks_csv(path: Union[str, Path], records: Iterable[BlockRecord]) -> int:
    """Write block records; returns the row count."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_BLOCK_HEADER)
        for record in records:
            writer.writerow(
                [
                    record.chain,
                    record.number,
                    record.timestamp,
                    record.difficulty,
                    record.miner,
                    record.tx_count,
                    record.contract_tx_count,
                    record.gas_used,
                ]
            )
            count += 1
    return count


def read_blocks_csv(path: Union[str, Path]) -> List[BlockRecord]:
    records = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            records.append(
                BlockRecord(
                    chain=row["chain"],
                    number=int(row["number"]),
                    timestamp=int(row["timestamp"]),
                    difficulty=int(row["difficulty"]),
                    miner=row["miner"],
                    tx_count=int(row["tx_count"]),
                    contract_tx_count=int(row["contract_tx_count"]),
                    gas_used=int(row["gas_used"]),
                )
            )
    return records


def write_txs_csv(path: Union[str, Path], records: Iterable[TxRecord]) -> int:
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_TX_HEADER)
        for record in records:
            writer.writerow(
                [
                    record.chain,
                    record.tx_hash.hex(),
                    record.block_number,
                    record.timestamp,
                    record.sender.hex(),
                    record.to.hex() if record.to is not None else "",
                    record.value,
                    int(record.is_contract),
                    int(record.replay_protected),
                ]
            )
            count += 1
    return count


def read_txs_csv(path: Union[str, Path]) -> List[TxRecord]:
    records = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            records.append(
                TxRecord(
                    chain=row["chain"],
                    tx_hash=bytes.fromhex(row["tx_hash"]),
                    block_number=int(row["block_number"]),
                    timestamp=int(row["timestamp"]),
                    sender=bytes.fromhex(row["sender"]),
                    to=bytes.fromhex(row["to"]) if row["to"] else None,
                    value=int(row["value"]),
                    is_contract=bool(int(row["is_contract"])),
                    replay_protected=bool(int(row["replay_protected"])),
                )
            )
    return records


def write_series_csv(
    path: Union[str, Path],
    columns: Dict[str, Sequence],
    index_name: str = "t",
    index: Optional[Sequence] = None,
) -> int:
    """Write a columnar time series (figure output format).

    All columns must share one length; ``index`` defaults to 0..n-1.
    """
    lengths = {len(values) for values in columns.values()}
    if len(lengths) > 1:
        raise ValueError(f"column length mismatch: {lengths}")
    length = lengths.pop() if lengths else 0
    if index is None:
        index = range(length)
    parent = Path(path).parent
    if parent and not parent.exists():
        parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([index_name, *columns.keys()])
        for position, idx in enumerate(index):
            writer.writerow(
                [idx, *(columns[name][position] for name in columns)]
            )
    return length


def read_series_csv(
    path: Union[str, Path],
) -> Tuple[List[str], List[List[float]]]:
    """Read a series CSV back as (header, rows-of-floats)."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        rows = [[float(cell) for cell in row] for row in reader]
    return header, rows
