"""Columnar analytics backend: the ChainDatabase surface over packed arrays.

:class:`ColumnarChainDatabase` exposes the exact query surface of
:class:`~repro.data.store.ChainDatabase` but keeps block data in
``array('q')`` columns — the same representation
:class:`~repro.sim.blockprod.ChainTrace` produces — so the figure path
never boxes a :class:`~repro.data.records.BlockRecord`.  Adopting a
finished trace (:meth:`adopt_trace`, reached through
``ForkSimResult.to_database(columnar=True)``) is zero-copy: the database
holds references to the trace's arrays until a mutation forces a private
copy.

Aggregated queries are bisect-and-bucket kernels: when a chain's
timestamps are non-decreasing (simulator traces are), each epoch-aligned
window is a contiguous slice located by bisection, and per-window
reductions run at C speed over array slices.  Chains with shuffled
timestamps fall back to per-record loops that mirror the record-backed
oracle line for line.

Byte-identity with the oracle is a contract, not an accident:

* **Difficulty sums** exceed 2**53, so day means depend on IEEE addition
  order.  The kernels use ``sum(map(float, slice))`` — CPython performs
  the same sequential double additions as the oracle's running
  ``sums[index] + float(value)``, starting from the same exact zero.
* **Delta and tx-count sums** stay below 2**53, so every partial sum is
  exact and telescoping (``ts[hi-1] - ts[lo-1]``) or C integer sums are
  legitimate shortcuts: they produce the *same double* after division.
* **Counter ordering**: ``Counter(ids_slice)`` preserves first-occurrence
  order (the C ``_count_elements`` path), which maps 1:1 onto the
  oracle's label insertion order because the label table is interned —
  so ``most_common`` tie-breaking (stable sort) agrees.

The differential tests in ``tests/test_data_columnar.py`` pin all of
this across seeds and horizons.
"""

from __future__ import annotations

import operator
from array import array
from bisect import bisect_left
from collections import Counter
from itertools import islice
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .records import BlockRecord, TxRecord
from .store import ChainDatabase
from .windows import DAY, HOUR, window_index

__all__ = ["ColumnarChainDatabase"]


class _ChainColumns:
    """Packed per-chain block storage (mirrors ChainTrace's layout)."""

    __slots__ = (
        "numbers",
        "timestamps",
        "difficulties",
        "miner_ids",
        "tx_counts",
        "contract_tx_counts",
        "gas_used",
        "labels",
        "label_index",
        "owned",
        "_monotone",
    )

    def __init__(self) -> None:
        self.numbers = array("q")
        self.timestamps = array("q")
        self.difficulties = array("q")
        self.miner_ids = array("q")
        self.tx_counts = array("q")
        self.contract_tx_counts = array("q")
        #: ``None`` means "all zeros" — the simulator emits no gas data,
        #: and the lazy column keeps adoption allocation-free.
        self.gas_used: Optional[array] = None
        self.labels: List[str] = []
        self.label_index: Dict[str, int] = {}
        #: False when the arrays are shared with an adopted trace and
        #: must be copied before any mutation.
        self.owned = True
        self._monotone: Optional[bool] = None

    def __len__(self) -> int:
        return len(self.numbers)

    def monotone(self) -> bool:
        """Whether timestamps are non-decreasing in stored order."""
        if self._monotone is None:
            ts = self.timestamps
            self._monotone = all(map(operator.le, ts, islice(ts, 1, None)))
        return self._monotone

    def ensure_owned(self) -> None:
        if self.owned:
            return
        self.numbers = array("q", self.numbers)
        self.timestamps = array("q", self.timestamps)
        self.difficulties = array("q", self.difficulties)
        self.miner_ids = array("q", self.miner_ids)
        self.tx_counts = array("q", self.tx_counts)
        self.contract_tx_counts = array("q", self.contract_tx_counts)
        if self.gas_used is not None:
            self.gas_used = array("q", self.gas_used)
        self.labels = list(self.labels)
        self.label_index = dict(self.label_index)
        self.owned = True

    def label_id(self, label: str) -> int:
        index = self.label_index.get(label)
        if index is None:
            index = len(self.labels)
            self.labels.append(label)
            self.label_index[label] = index
        return index

    def materialize_gas(self) -> None:
        """Promote the implicit all-zero gas column to a real array."""
        if self.gas_used is None:
            self.gas_used = array("q", bytes(8 * len(self.numbers)))

    def resort_by_number(self) -> None:
        """Stable re-sort of every column by block number."""
        order = sorted(range(len(self.numbers)), key=self.numbers.__getitem__)
        for name in (
            "numbers",
            "timestamps",
            "difficulties",
            "miner_ids",
            "tx_counts",
            "contract_tx_counts",
            "gas_used",
        ):
            column = getattr(self, name)
            if column is None:
                continue
            setattr(self, name, array("q", map(column.__getitem__, order)))
        self._monotone = None

    def record_at(self, chain: str, i: int) -> BlockRecord:
        gas = self.gas_used
        return BlockRecord(
            chain=chain,
            number=self.numbers[i],
            timestamp=self.timestamps[i],
            difficulty=self.difficulties[i],
            miner=self.labels[self.miner_ids[i]],
            tx_count=self.tx_counts[i],
            contract_tx_count=self.contract_tx_counts[i],
            gas_used=gas[i] if gas is not None else 0,
        )


class ColumnarChainDatabase:
    """Drop-in :class:`ChainDatabase` twin backed by packed columns.

    Block queries run on ``array('q')`` columns; the transaction side
    (which only ever enters through :meth:`insert_transactions` — the
    fast simulator emits per-block counts, not tx rows) delegates to an
    embedded record store so the echo join behaves identically.
    """

    def __init__(self) -> None:
        self._columns: Dict[str, _ChainColumns] = {}
        self._txdb = ChainDatabase()

    # -- ingest ----------------------------------------------------------------

    def adopt_trace(self, trace, chain: Optional[str] = None, start_index: int = 0) -> int:
        """Adopt a :class:`~repro.sim.blockprod.ChainTrace`'s columns.

        ``start_index=0`` shares the arrays zero-copy (copy-on-write on
        any later mutation); a positive ``start_index`` slices off the
        prefix, which copies only the suffix.  Returns the block count
        adopted.  The label table is shared by reference either way.
        """
        name = chain or trace.chain
        if name in self._columns:
            raise ValueError(f"chain {name!r} already present")
        cols = _ChainColumns()
        if start_index:
            cols.numbers = trace.numbers[start_index:]
            cols.timestamps = trace.timestamps[start_index:]
            cols.difficulties = trace.difficulties[start_index:]
            cols.miner_ids = trace.miner_ids[start_index:]
            cols.tx_counts = trace.tx_counts[start_index:]
            cols.contract_tx_counts = trace.contract_tx_counts[start_index:]
        else:
            cols.numbers = trace.numbers
            cols.timestamps = trace.timestamps
            cols.difficulties = trace.difficulties
            cols.miner_ids = trace.miner_ids
            cols.tx_counts = trace.tx_counts
            cols.contract_tx_counts = trace.contract_tx_counts
        cols.labels = trace.miner_labels
        cols.label_index = trace._label_index
        cols.owned = False
        self._columns[name] = cols
        return len(cols)

    def insert_blocks(self, records: Iterable[BlockRecord]) -> int:
        count = 0
        needs_sort: Dict[str, bool] = {}
        for record in records:
            chain = record.chain
            cols = self._columns.get(chain)
            if cols is None:
                cols = self._columns[chain] = _ChainColumns()
                needs_sort[chain] = False
            else:
                cols.ensure_owned()
                if chain not in needs_sort:
                    needs_sort[chain] = False
                if len(cols):
                    if record.number < cols.numbers[-1]:
                        needs_sort[chain] = True
                    if (
                        cols._monotone
                        and record.timestamp < cols.timestamps[-1]
                    ):
                        cols._monotone = False
            cols.numbers.append(record.number)
            cols.timestamps.append(record.timestamp)
            cols.difficulties.append(record.difficulty)
            cols.miner_ids.append(cols.label_id(record.miner))
            cols.tx_counts.append(record.tx_count)
            cols.contract_tx_counts.append(record.contract_tx_count)
            if record.gas_used and cols.gas_used is None:
                cols.materialize_gas()
                cols.gas_used.pop()  # placeholder for the current record
            if cols.gas_used is not None:
                cols.gas_used.append(record.gas_used)
            count += 1
        for chain, dirty in needs_sort.items():
            if dirty:
                self._columns[chain].resort_by_number()
        return count

    def insert_transactions(self, records: Iterable[TxRecord]) -> int:
        return self._txdb.insert_transactions(records)

    # -- block queries ------------------------------------------------------------

    def chains(self) -> List[str]:
        return sorted(set(self._columns) | set(self._txdb.chains()))

    def blocks(self, chain: str) -> List[BlockRecord]:
        """Materialize boxed records — the escape hatch, not the hot path."""
        cols = self._columns.get(chain)
        if cols is None:
            return []
        return [cols.record_at(chain, i) for i in range(len(cols))]

    def block_count(self, chain: str) -> int:
        cols = self._columns.get(chain)
        return len(cols) if cols is not None else 0

    def blocks_between(
        self, chain: str, start_ts: float, end_ts: float
    ) -> List[BlockRecord]:
        cols = self._columns.get(chain)
        if cols is None or not len(cols):
            return []
        if cols.monotone():
            ts = cols.timestamps
            lo = bisect_left(ts, start_ts)
            hi = bisect_left(ts, end_ts)
            return [cols.record_at(chain, i) for i in range(lo, hi)]
        return [
            cols.record_at(chain, i)
            for i in range(len(cols))
            if start_ts <= cols.timestamps[i] < end_ts
        ]

    def blocks_per_hour(
        self, chain: str, start_ts: Optional[float] = None
    ) -> Dict[int, int]:
        cols = self._columns.get(chain)
        if cols is None:
            return {}
        counts: Dict[int, int] = {}
        ts = cols.timestamps
        n = len(ts)
        if cols.monotone():
            i = bisect_left(ts, start_ts) if start_ts is not None else 0
            while i < n:
                index = ts[i] // HOUR
                hi = bisect_left(ts, (index + 1) * HOUR, i, n)
                counts[index] = hi - i
                i = hi
            return counts
        for timestamp in ts:
            if start_ts is not None and timestamp < start_ts:
                continue
            index = window_index(timestamp, HOUR)
            counts[index] = counts.get(index, 0) + 1
        return counts

    def difficulty_series(self, chain: str) -> List[Tuple[int, int]]:
        cols = self._columns.get(chain)
        if cols is None:
            return []
        return list(zip(cols.timestamps, cols.difficulties))

    def block_deltas(self, chain: str) -> List[Tuple[int, int]]:
        cols = self._columns.get(chain)
        if cols is None:
            return []
        ts = cols.timestamps
        return [(ts[i], ts[i] - ts[i - 1]) for i in range(1, len(ts))]

    def miner_label_series(self, chain: str) -> List[Tuple[int, str]]:
        cols = self._columns.get(chain)
        if cols is None:
            return []
        labels = cols.labels
        return [
            (timestamp, labels[miner_id])
            for timestamp, miner_id in zip(cols.timestamps, cols.miner_ids)
        ]

    # -- aggregated block queries (columnar kernels) -----------------------------

    def daily_mean_difficulty(
        self, chain: str, start_ts: Optional[float] = None
    ) -> Dict[int, float]:
        cols = self._columns.get(chain)
        if cols is None:
            return {}
        ts = cols.timestamps
        diffs = cols.difficulties
        n = len(ts)
        if cols.monotone():
            out: Dict[int, float] = {}
            i = bisect_left(ts, start_ts) if start_ts is not None else 0
            while i < n:
                index = ts[i] // DAY
                hi = bisect_left(ts, (index + 1) * DAY, i, n)
                # Same sequential IEEE additions as the oracle's running
                # accumulation — order matters, the sums exceed 2**53.
                out[index] = sum(map(float, diffs[i:hi])) / (hi - i)
                i = hi
            return out
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for i in range(n):
            timestamp = ts[i]
            if start_ts is not None and timestamp < start_ts:
                continue
            index = window_index(timestamp, DAY)
            sums[index] = sums.get(index, 0.0) + float(diffs[i])
            counts[index] = counts.get(index, 0) + 1
        return {index: sums[index] / counts[index] for index in sums}

    def hourly_mean_block_delta(
        self, chain: str, start_ts: Optional[float] = None
    ) -> Dict[int, float]:
        cols = self._columns.get(chain)
        if cols is None:
            return {}
        ts = cols.timestamps
        n = len(ts)
        if cols.monotone():
            out: Dict[int, float] = {}
            lo = bisect_left(ts, start_ts) if start_ts is not None else 0
            i = max(lo, 1)
            while i < n:
                index = ts[i] // HOUR
                hi = bisect_left(ts, (index + 1) * HOUR, i, n)
                # Telescoping: delta sums stay below 2**53, so the exact
                # integer sum converts to the same double the oracle's
                # float accumulation reaches.
                out[index] = float(ts[hi - 1] - ts[i - 1]) / (hi - i)
                i = hi
            return out
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for i in range(1, n):
            timestamp = ts[i]
            if start_ts is not None and timestamp < start_ts:
                continue
            index = window_index(timestamp, HOUR)
            sums[index] = sums.get(index, 0.0) + float(timestamp - ts[i - 1])
            counts[index] = counts.get(index, 0) + 1
        return {index: sums[index] / counts[index] for index in sums}

    def block_transactions_per_day(
        self, chain: str, start_ts: Optional[float] = None
    ) -> Dict[int, int]:
        cols = self._columns.get(chain)
        if cols is None:
            return {}
        ts = cols.timestamps
        txs = cols.tx_counts
        n = len(ts)
        if cols.monotone():
            out: Dict[int, int] = {}
            i = bisect_left(ts, start_ts) if start_ts is not None else 0
            while i < n:
                index = ts[i] // DAY
                hi = bisect_left(ts, (index + 1) * DAY, i, n)
                out[index] = sum(txs[i:hi])
                i = hi
            return out
        counts: Dict[int, int] = {}
        for i in range(n):
            timestamp = ts[i]
            if start_ts is not None and timestamp < start_ts:
                continue
            index = window_index(timestamp, DAY)
            counts[index] = counts.get(index, 0) + txs[i]
        return counts

    def block_contract_fraction_per_day(
        self, chain: str, start_ts: Optional[float] = None
    ) -> Dict[int, float]:
        cols = self._columns.get(chain)
        if cols is None:
            return {}
        ts = cols.timestamps
        txs = cols.tx_counts
        contract = cols.contract_tx_counts
        n = len(ts)
        if cols.monotone():
            out: Dict[int, float] = {}
            i = bisect_left(ts, start_ts) if start_ts is not None else 0
            while i < n:
                index = ts[i] // DAY
                hi = bisect_left(ts, (index + 1) * DAY, i, n)
                total = sum(txs[i:hi])
                if total > 0:
                    out[index] = sum(contract[i:hi]) / total
                i = hi
            return out
        totals: Dict[int, int] = {}
        contracts: Dict[int, int] = {}
        for i in range(n):
            timestamp = ts[i]
            if start_ts is not None and timestamp < start_ts:
                continue
            index = window_index(timestamp, DAY)
            totals[index] = totals.get(index, 0) + txs[i]
            contracts[index] = contracts.get(index, 0) + contract[i]
        return {
            index: contracts.get(index, 0) / totals[index]
            for index in totals
            if totals[index] > 0
        }

    def daily_miner_counts(
        self, chain: str, start_ts: Optional[float] = None
    ) -> Dict[int, Counter]:
        cols = self._columns.get(chain)
        if cols is None:
            return {}
        ts = cols.timestamps
        ids = cols.miner_ids
        labels = cols.labels
        n = len(ts)
        if cols.monotone():
            days: Dict[int, Counter] = {}
            i = bisect_left(ts, start_ts) if start_ts is not None else 0
            while i < n:
                index = ts[i] // DAY
                hi = bisect_left(ts, (index + 1) * DAY, i, n)
                # Counter over the id slice preserves first-occurrence
                # order; the interned label table maps ids 1:1, so the
                # label Counter's insertion order (and therefore stable
                # most_common tie-breaking) matches the oracle's.
                id_counts = Counter(ids[i:hi])
                days[index] = Counter(
                    {labels[mid]: c for mid, c in id_counts.items()}
                )
                i = hi
            return days
        days_fallback: Dict[int, Counter] = {}
        for i in range(n):
            timestamp = ts[i]
            if start_ts is not None and timestamp < start_ts:
                continue
            index = window_index(timestamp, DAY)
            counter = days_fallback.get(index)
            if counter is None:
                counter = days_fallback[index] = Counter()
            counter[labels[ids[i]]] += 1
        return days_fallback

    # -- transaction queries (delegated to the record store) ---------------------

    def transactions(self, chain: str) -> List[TxRecord]:
        return self._txdb.transactions(chain)

    def tx_count(self, chain: str) -> int:
        return self._txdb.tx_count(chain)

    def lookup_tx(self, chain: str, tx_hash: bytes) -> Optional[TxRecord]:
        return self._txdb.lookup_tx(chain, tx_hash)

    def transactions_per_day(self, chain: str) -> Dict[int, int]:
        return self._txdb.transactions_per_day(chain)

    def contract_fraction_per_day(self, chain: str) -> Dict[int, float]:
        return self._txdb.contract_fraction_per_day(chain)

    def iter_tx_sightings(self) -> Iterator[TxRecord]:
        return self._txdb.iter_tx_sightings()
