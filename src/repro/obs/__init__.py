"""repro.obs — deterministic observability for the simulator stack.

Three instruments, one handle:

* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms.
  One registry per run, no globals, no wall clock: same seed ⇒
  byte-identical ``dumps()``/``digest()``.
* :class:`Tracer` — typed trace events on the virtual clock, with an
  always-cheap ring buffer and an optional JSONL sink for full export;
  ``digest()`` fingerprints the whole stream.
* :class:`SpanProfile` — scoped wall-time timers
  (``with obs.span("net.deliver"):``) for ranking hot paths; explicitly
  non-deterministic and kept out of the other two dumps.

:class:`Observability` bundles them so every instrumented layer takes a
single optional ``obs`` argument.  ``obs=None`` (the default everywhere)
is the *disabled* path: components cache ``None`` tracer/metrics
references and hot loops pay one attribute test — the overhead budget
(<5% on the fig1 workload, enforced by ``benchmarks/test_obs_overhead.py``)
depends on nothing heavier happening when observability is off.
"""

from __future__ import annotations

from typing import IO, Optional

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .spans import SpanProfile, SpanTimer
from .tracer import DEFAULT_RING_CAPACITY, TRACE_EVENT_KINDS, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_RING_CAPACITY",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "SpanProfile",
    "SpanTimer",
    "TRACE_EVENT_KINDS",
    "Tracer",
]


class _NullSpan:
    """Zero-cost context manager for the profile-less path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Observability:
    """The bundle an instrumented run threads through its layers.

    Any instrument may be ``None``; components must guard each one
    independently (a metrics-only run carries no tracer, a trace export
    may skip metrics).  Construct via :meth:`enabled` for the everything-
    on configuration.
    """

    __slots__ = ("metrics", "tracer", "profile")

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        profile: Optional[SpanProfile] = None,
    ) -> None:
        self.metrics = metrics
        self.tracer = tracer
        self.profile = profile

    @classmethod
    def enabled(
        cls,
        capacity: Optional[int] = DEFAULT_RING_CAPACITY,
        sink: Optional[IO[str]] = None,
    ) -> "Observability":
        """Metrics + tracer (ring of ``capacity``, optional JSONL sink)
        + span profile, all live."""
        return cls(
            metrics=MetricsRegistry(),
            tracer=Tracer(capacity=capacity, sink=sink),
            profile=SpanProfile(),
        )

    def span(self, label: str):
        """A scoped wall-time timer, or a free no-op without a profile."""
        if self.profile is None:
            return _NULL_SPAN
        return self.profile.span(label)
