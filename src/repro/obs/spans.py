"""Scoped wall-time profiling: ``with obs.span("net.deliver"): ...``.

This is the one deliberately *non*-deterministic corner of the
observability layer: spans read ``time.perf_counter`` so hot paths can
be ranked by real cost.  They therefore live in their own aggregate —
never in the :class:`~repro.obs.metrics.MetricsRegistry` dump and never
in the trace stream — so the deterministic artifacts (metric dumps,
trace digests) stay byte-identical run to run while the profile varies
with the hardware.

Aggregation is by label: total seconds, call count, max single call.
``report()`` renders the ranking the ROADMAP's "as fast as the hardware
allows" work needs: which label burns the time.
"""

from __future__ import annotations

import time
from typing import Dict, List

__all__ = ["SpanProfile", "SpanTimer"]


class SpanTimer:
    """One active span; a reusable context manager bound to a label."""

    __slots__ = ("_profile", "_label", "_start")

    def __init__(self, profile: "SpanProfile", label: str) -> None:
        self._profile = profile
        self._label = label
        self._start = 0.0

    def __enter__(self) -> "SpanTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profile._record(
            self._label, time.perf_counter() - self._start
        )


class SpanProfile:
    """Wall-time totals per label."""

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        self.maxima: Dict[str, float] = {}

    def span(self, label: str) -> SpanTimer:
        return SpanTimer(self, label)

    def _record(self, label: str, elapsed: float) -> None:
        self.totals[label] = self.totals.get(label, 0.0) + elapsed
        self.counts[label] = self.counts.get(label, 0) + 1
        if elapsed > self.maxima.get(label, 0.0):
            self.maxima[label] = elapsed

    def is_empty(self) -> bool:
        return not self.totals

    def dump(self) -> Dict[str, Dict[str, float]]:
        """Per-label totals (wall time — excluded from deterministic dumps)."""
        return {
            label: {
                "total_s": self.totals[label],
                "count": self.counts[label],
                "max_s": self.maxima[label],
            }
            for label in sorted(self.totals)
        }

    def report(self, top: int = 20) -> str:
        """Labels ranked by total wall time, widest burner first."""
        if not self.totals:
            return "(no spans recorded)"
        ranked: List[str] = sorted(
            self.totals, key=lambda label: -self.totals[label]
        )[:top]
        width = max(len(label) for label in ranked)
        lines = [
            f"{'span':<{width}}  {'total':>10}  {'calls':>8}  "
            f"{'mean':>10}  {'max':>10}"
        ]
        for label in ranked:
            total = self.totals[label]
            count = self.counts[label]
            lines.append(
                f"{label:<{width}}  {total:>9.4f}s  {count:>8d}  "
                f"{total / count:>9.6f}s  {self.maxima[label]:>9.6f}s"
            )
        return "\n".join(lines)
