"""Structured trace events with virtual-time timestamps.

The tracer is the simulator's flight recorder.  Every instrumented layer
emits typed events — the taxonomy below — tagged with the *virtual*
clock, never the wall clock, so a seeded run emits the identical event
stream every time.

Two capture modes, combinable:

* **ring buffer** (default) — always-on cheap capture of the last
  ``capacity`` events, for post-mortem inspection of a run that went
  wrong (``tail()``);
* **JSONL sink** — full export of every event as one canonical JSON
  object per line, for offline analysis (``python -m repro trace``).

Independently of either mode, a running SHA-256 over the canonical
encoding of *every* emitted event (not just the retained tail) gives
:meth:`Tracer.digest` — the stream's reproducibility fingerprint used by
the determinism regression tests.

Event taxonomy (``kind`` strings):

======================  ====================================================
``event.scheduled``     simulator callback queued (``at``, ``fn``, ``seq``)
``event.fired``         simulator callback executed (``fn``, ``seq``)
``event.cancelled``     cancelled handle drained from the queue (``seq``)
``msg.send``            transport accepted a message (``src dst type delay``)
``msg.deliver``         message handed to the destination node
``msg.lost``            sampled packet loss (base loss or link fault)
``msg.blocked``         scheduled fault cut (split / byzantine withholding)
``msg.undeliverable``   destination offline or unknown
``block.produced``      a miner assembled a block
``block.imported``      a chain accepted a block (``reorg`` flag)
``block.orphaned``      import parked a block with unknown parent
``reorg``               an import switched the canonical head branch
``fault.activated``     a fault window opened / a crash fired
``fault.expired``       a fault window closed / a crashed node restarted
======================  ====================================================
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from typing import Any, Dict, IO, List, Optional

__all__ = ["Tracer", "DEFAULT_RING_CAPACITY", "TRACE_EVENT_KINDS"]

DEFAULT_RING_CAPACITY = 4096

#: The closed set of event kinds the instrumented layers emit.
TRACE_EVENT_KINDS = (
    "event.scheduled",
    "event.fired",
    "event.cancelled",
    "msg.send",
    "msg.deliver",
    "msg.lost",
    "msg.blocked",
    "msg.undeliverable",
    "block.produced",
    "block.imported",
    "block.orphaned",
    "reorg",
    "fault.activated",
    "fault.expired",
)


class Tracer:
    """Collects trace events; see the module docstring for the modes."""

    __slots__ = (
        "_ring", "_sink", "_hasher", "events_emitted", "counts_by_kind",
    )

    def __init__(
        self,
        capacity: Optional[int] = DEFAULT_RING_CAPACITY,
        sink: Optional[IO[str]] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("ring capacity must be >= 1 (or None)")
        self._ring: deque = deque(maxlen=capacity)
        self._sink = sink
        self._hasher = hashlib.sha256()
        self.events_emitted = 0
        self.counts_by_kind: Dict[str, int] = {}

    # -- emission ----------------------------------------------------------

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        """Record one event at virtual ``time``.

        ``fields`` must be JSON-representable (callers stringify hashes
        and callables before emitting); NaN is rejected so the canonical
        encoding — and hence the digest — stays well-defined.
        """
        record = {"t": time, "kind": kind}
        record.update(fields)
        line = json.dumps(
            record, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
        self.events_emitted += 1
        self.counts_by_kind[kind] = self.counts_by_kind.get(kind, 0) + 1
        self._hasher.update(line.encode("utf-8"))
        self._hasher.update(b"\n")
        self._ring.append(line)
        if self._sink is not None:
            self._sink.write(line + "\n")

    # -- inspection --------------------------------------------------------

    def tail(self, count: Optional[int] = None) -> List[Dict[str, Any]]:
        """The most recent retained events, oldest first, as dicts."""
        lines = list(self._ring)
        if count is not None:
            lines = lines[-count:]
        return [json.loads(line) for line in lines]

    def digest(self) -> str:
        """SHA-256 over every event emitted so far (not just the ring)."""
        return self._hasher.copy().hexdigest()

    def summary(self) -> Dict[str, Any]:
        """Deterministic accounting: totals per kind plus the digest."""
        return {
            "events": self.events_emitted,
            "by_kind": {
                kind: self.counts_by_kind[kind]
                for kind in sorted(self.counts_by_kind)
            },
            "digest": self.digest(),
        }
