"""Deterministic metrics: counters, gauges, and fixed-bucket histograms.

One :class:`MetricsRegistry` per simulation run — created by whoever owns
the run (a ``Simulator``/``ForkSim`` caller, a harness job) and threaded
through explicitly.  There is deliberately **no** module-level registry:
global metric state is how two "independent" runs end up sharing
counters, which would break the property everything downstream leans on:

    same seed + same config  ⇒  byte-identical ``dumps()`` and ``digest()``

so nothing here may read the wall clock or any other ambient state.
(Wall-clock profiling lives in :mod:`repro.obs.spans`, outside the
deterministic dump.)  Values are plain Python ints/floats produced by
the simulation's own deterministic arithmetic; the canonical-JSON dump
therefore reproduces bit-for-bit in-process and across worker processes.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

#: Default histogram upper bounds: log-spaced seconds, good for latency
#: and inter-event delays (the +inf overflow bucket is implicit).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
    60.0, 300.0, 1800.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A value that can move both ways (queue depth, peer count)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Fixed upper-bound buckets plus sum/count (Prometheus-style).

    Buckets are frozen at construction so two runs of the same code
    always dump the same shape; the overflow (+inf) bucket is the last
    counts slot.
    """

    __slots__ = ("name", "buckets", "counts", "total", "count")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be sorted ascending")
        self.name = name
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """The per-run metric namespace.

    ``counter``/``gauge``/``histogram`` get-or-create by name; asking
    for an existing name with a different type is an error (a silent
    shadow would corrupt the dump).  ``dump()``/``dumps()``/``digest()``
    are canonical: sorted names, compact JSON, NaN rejected — the digest
    is the run's metric fingerprint.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create -----------------------------------------------------

    def _check_free(self, name: str, kind: Dict[str, object]) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not kind and name in family:
                raise ValueError(
                    f"metric {name!r} already registered with another type"
                )

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_free(name, self._counters)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_free(name, self._gauges)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_free(name, self._histograms)
            metric = self._histograms[name] = Histogram(name, buckets)
        elif tuple(float(b) for b in buckets) != metric.buckets:
            raise ValueError(
                f"histogram {name!r} re-registered with different buckets"
            )
        return metric

    def is_empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)

    # -- canonical export --------------------------------------------------

    def dump(self) -> Dict[str, Dict[str, object]]:
        """A plain-dict snapshot with deterministic (sorted) ordering."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    "buckets": list(metric.buckets),
                    "counts": list(metric.counts),
                    "sum": metric.total,
                    "count": metric.count,
                }
                for name, metric in sorted(self._histograms.items())
            },
        }

    def dumps(self) -> str:
        """Canonical JSON: the byte-identical metric dump."""
        return json.dumps(
            self.dump(), sort_keys=True, separators=(",", ":"),
            allow_nan=False,
        )

    def digest(self) -> str:
        """SHA-256 of :meth:`dumps` — the run's metric fingerprint."""
        return hashlib.sha256(self.dumps().encode("utf-8")).hexdigest()

    def summary(self) -> Optional[Dict[str, object]]:
        """Compact manifest embedding: counters + digest (None if empty)."""
        if self.is_empty():
            return None
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "digest": self.digest(),
        }
