"""The fast per-block simulator for month-scale fork reconstructions."""

from .blockprod import BlockProducer, ChainTrace
from .checkpoint import CHECKPOINT_VERSION, ForkSimCheckpoint
from .clock import (
    FORK_TIMESTAMP,
    SECONDS_PER_DAY,
    day_to_timestamp,
    format_date,
    month_label,
    timestamp_to_day,
)
from .engine import ForkSimConfig, ForkSimResult, ForkSimulation
from .population import (
    PoolLandscape,
    PoolSpec,
    etc_pool_landscape,
    eth_pool_landscape,
    prefork_pool_landscape,
)
from .workload import (
    AnchoredRate,
    RateAnchor,
    TransactionWorkload,
    etc_workload,
    eth_workload,
)

__all__ = [
    "ChainTrace",
    "BlockProducer",
    "ForkSimConfig",
    "ForkSimResult",
    "ForkSimulation",
    "ForkSimCheckpoint",
    "CHECKPOINT_VERSION",
    "PoolLandscape",
    "PoolSpec",
    "eth_pool_landscape",
    "etc_pool_landscape",
    "prefork_pool_landscape",
    "TransactionWorkload",
    "AnchoredRate",
    "RateAnchor",
    "eth_workload",
    "etc_workload",
    "FORK_TIMESTAMP",
    "SECONDS_PER_DAY",
    "day_to_timestamp",
    "timestamp_to_day",
    "format_date",
    "month_label",
]
