"""Per-block fast simulation: traces and the block producer.

Month-scale experiments (Figures 2-5) need ~1.7M blocks per chain; pushing
those through the message-level simulator would be wasteful, since header
dynamics depend only on the difficulty rule and the hashrate trajectory.
:class:`BlockProducer` therefore advances one chain block-by-block:

    interval ~ Exponential(mean = difficulty / hashrate)
    difficulty' = rule(difficulty, timestamp, timestamp + interval, number)

which is *exactly* the consensus difficulty algorithm fed by exact Poisson
mining — not an approximation of the dynamics, only of the networking.
Results append to a columnar :class:`ChainTrace` (Python lists of scalars;
~40 bytes/block instead of a full object graph).
"""

from __future__ import annotations

import random
from array import array
from typing import Callable, Dict, List, Optional, Tuple

from ..chain.config import ChainConfig
from ..data.records import BlockRecord

__all__ = ["ChainTrace", "BlockProducer"]


class ChainTrace:
    """Columnar block history for one chain.

    Columns (aligned by index): ``numbers``, ``timestamps``,
    ``difficulties``, ``miner_ids`` (indexes into ``miner_labels``),
    ``tx_counts``, ``contract_tx_counts``.  Columns are ``array('q')``
    (packed int64) so month-scale traces — millions of blocks — stay tens
    of megabytes instead of gigabytes of boxed integers.
    """

    def __init__(self, chain: str) -> None:
        self.chain = chain
        self.numbers = array("q")
        self.timestamps = array("q")
        self.difficulties = array("q")
        self.miner_ids = array("q")
        self.tx_counts = array("q")
        self.contract_tx_counts = array("q")
        self.miner_labels: List[str] = []
        self._label_index: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.numbers)

    def label_id(self, label: str) -> int:
        index = self._label_index.get(label)
        if index is None:
            index = len(self.miner_labels)
            self.miner_labels.append(label)
            self._label_index[label] = index
        return index

    def append(
        self,
        number: int,
        timestamp: int,
        difficulty: int,
        miner: str,
        tx_count: int = 0,
        contract_tx_count: int = 0,
    ) -> None:
        self.numbers.append(number)
        self.timestamps.append(timestamp)
        self.difficulties.append(difficulty)
        self.miner_ids.append(self.label_id(miner))
        self.tx_counts.append(tx_count)
        self.contract_tx_counts.append(contract_tx_count)

    def miner_of(self, index: int) -> str:
        return self.miner_labels[self.miner_ids[index]]

    @classmethod
    def forked_from(cls, parent: "ChainTrace", chain: str) -> "ChainTrace":
        """A new trace sharing ``parent``'s full history as its prefix.

        This is the storage-level mirror of a hard fork: ETH and ETC both
        contain every pre-fork block, then diverge.  Columns are copied
        (packed arrays, so this is cheap) and the label table is shared by
        value, letting pre-fork pool identities persist on both sides.
        """
        child = cls(chain)
        child.numbers = array("q", parent.numbers)
        child.timestamps = array("q", parent.timestamps)
        child.difficulties = array("q", parent.difficulties)
        child.miner_ids = array("q", parent.miner_ids)
        child.tx_counts = array("q", parent.tx_counts)
        child.contract_tx_counts = array("q", parent.contract_tx_counts)
        child.miner_labels = list(parent.miner_labels)
        child._label_index = dict(parent._label_index)
        return child

    def block_records(self) -> List[BlockRecord]:
        """Materialize as analysis records (for the ChainDatabase)."""
        return [
            BlockRecord(
                chain=self.chain,
                number=self.numbers[i],
                timestamp=self.timestamps[i],
                difficulty=self.difficulties[i],
                miner=self.miner_labels[self.miner_ids[i]],
                tx_count=self.tx_counts[i],
                contract_tx_count=self.contract_tx_counts[i],
            )
            for i in range(len(self.numbers))
        ]

    def slice_by_time(self, start_ts: float, end_ts: float) -> range:
        """Index range of blocks with timestamp in [start_ts, end_ts)."""
        import bisect

        lo = bisect.bisect_left(self.timestamps, start_ts)
        hi = bisect.bisect_left(self.timestamps, end_ts)
        return range(lo, hi)


class BlockProducer:
    """Advances one chain's head under Poisson mining.

    The producer holds the chain tip (number, timestamp, difficulty) and
    appends to a :class:`ChainTrace`.  Hashrate, the winning-miner sampler,
    and the per-block transaction sampler are supplied per call so the
    driving scenario can change them daily.
    """

    def __init__(
        self,
        config: ChainConfig,
        trace: ChainTrace,
        start_number: int,
        start_timestamp: int,
        start_difficulty: int,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.trace = trace
        self.number = start_number
        self.timestamp = start_timestamp
        self.difficulty = start_difficulty
        #: Wall-clock time: equals the head timestamp while mining is
        #: continuous, but advances past it through idle stretches (zero
        #: hashrate), so the first block after a stall carries the full
        #: gap in its delta — the mechanism behind difficulty free-fall
        #: after an exodus.
        self.clock = start_timestamp
        self.rng = random.Random(seed)

    def advance_one(
        self,
        hashrate: float,
        miner_sampler: Callable[[random.Random], str],
        tx_sampler: Optional[Callable[[random.Random, float], Tuple[int, int]]] = None,
    ) -> int:
        """Mine exactly one block; returns its timestamp."""
        if hashrate <= 0:
            raise ValueError("cannot mine with zero hashrate")
        interval = self.rng.expovariate(hashrate / self.difficulty)
        # Consensus timestamps are integer seconds and must strictly
        # increase; quantize but never collapse to zero.  Solving starts at
        # the wall clock, which may sit past the head after an idle spell.
        step = max(1, round(interval))
        new_timestamp = max(self.timestamp + 1, self.clock + step)
        new_number = self.number + 1
        new_difficulty = self.config.compute_difficulty(
            self.difficulty, self.timestamp, new_timestamp, new_number
        )
        tx_count, contract_count = (0, 0)
        if tx_sampler is not None:
            tx_count, contract_count = tx_sampler(self.rng, step)
        self.trace.append(
            number=new_number,
            timestamp=new_timestamp,
            difficulty=new_difficulty,
            miner=miner_sampler(self.rng),
            tx_count=tx_count,
            contract_tx_count=contract_count,
        )
        self.number = new_number
        self.timestamp = new_timestamp
        self.clock = new_timestamp
        self.difficulty = new_difficulty
        return new_timestamp

    def run_until(
        self,
        end_timestamp: int,
        hashrate: float,
        miner_sampler: Callable[[random.Random], str],
        tx_sampler: Optional[Callable[[random.Random, float], Tuple[int, int]]] = None,
        max_blocks: int = 5_000_000,
    ) -> int:
        """Mine until the head timestamp passes ``end_timestamp``.

        With zero hashrate the chain simply does not advance (a stalled
        network — precisely ETC in the first post-fork hours if nobody had
        stayed).  Returns blocks produced.
        """
        produced = 0
        if hashrate <= 0:
            self.clock = max(self.clock, end_timestamp)
            return 0
        while self.clock < end_timestamp:
            self.advance_one(hashrate, miner_sampler, tx_sampler)
            produced += 1
            if produced > max_blocks:
                raise RuntimeError(
                    f"produced more than {max_blocks} blocks before "
                    f"t={end_timestamp}; runaway parameters?"
                )
        return produced
