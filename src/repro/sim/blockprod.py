"""Per-block fast simulation: traces and the block producer.

Month-scale experiments (Figures 2-5) need ~1.7M blocks per chain; pushing
those through the message-level simulator would be wasteful, since header
dynamics depend only on the difficulty rule and the hashrate trajectory.
:class:`BlockProducer` therefore advances one chain block-by-block:

    interval ~ Exponential(mean = difficulty / hashrate)
    difficulty' = rule(difficulty, timestamp, timestamp + interval, number)

which is *exactly* the consensus difficulty algorithm fed by exact Poisson
mining — not an approximation of the dynamics, only of the networking.
Results append to a columnar :class:`ChainTrace` (Python lists of scalars;
~40 bytes/block instead of a full object graph).
"""

from __future__ import annotations

import math
import random
from array import array
from bisect import bisect_left, bisect_right
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..chain.config import ChainConfig
from ..chain.difficulty import (
    BOMB_PERIOD,
    DIFFICULTY_BOUND_DIVISOR,
    HOMESTEAD_CLAMP,
    MIN_DIFFICULTY,
    frontier_difficulty,
    homestead_difficulty,
)
from ..data.records import BlockRecord

__all__ = ["ChainTrace", "BlockProducer"]

_INF = float("inf")


def _expovariate_inline_ok() -> bool:
    """Probe whether ``Random.expovariate(lambd)`` is bit-identical to
    ``-log(1.0 - random()) / lambd`` on this interpreter.

    CPython has used exactly that formula for decades, but the batch
    kernel's trajectory guarantee must not rest on an assumption about
    the standard library: probe a few draws (values *and* RNG state) at
    import time and fall back to calling ``expovariate`` if they ever
    diverge.
    """
    try:
        import math

        for seed, lambd in ((12345, 0.5), (7, 3.25e-7), (99, 1.0)):
            a, b = random.Random(seed), random.Random(seed)
            if a.expovariate(lambd) != -math.log(1.0 - b.random()) / lambd:
                return False
            if a.getstate() != b.getstate():
                return False
        return True
    except Exception:  # pragma: no cover - exotic interpreters
        return False


_INLINE_EXPOVARIATE = _expovariate_inline_ok()


def _randbelow_inline_ok() -> bool:
    """Probe whether ``Random.randrange(n)`` (positive ``n``) is
    bit-identical to an inline ``getrandbits`` accept/reject loop.

    ``randrange`` with a single positive int argument draws via
    ``_randbelow_with_getrandbits``: draw ``n.bit_length()`` bits, retry
    while the value is >= ``n``.  The batch kernel inlines exactly that
    loop (with the bit length precomputed) to skip two Python frames per
    solo-miner draw.  As with the expovariate probe, verify values *and*
    RNG state on draws that exercise the retry path, and fall back to
    calling the sampler if anything diverges.
    """
    try:
        for seed, bound in ((12345, 2000), (7, 3), (99, (1 << 40) - 17)):
            a, b = random.Random(seed), random.Random(seed)
            getrandbits = b.getrandbits
            k = bound.bit_length()
            for _ in range(8):
                r = getrandbits(k)
                while r >= bound:
                    r = getrandbits(k)
                if a.randrange(bound) != r:
                    return False
            if a.getstate() != b.getstate():
                return False
        return True
    except Exception:  # pragma: no cover - exotic interpreters
        return False


_INLINE_RANDBELOW = _randbelow_inline_ok()


class ChainTrace:
    """Columnar block history for one chain.

    Columns (aligned by index): ``numbers``, ``timestamps``,
    ``difficulties``, ``miner_ids`` (indexes into ``miner_labels``),
    ``tx_counts``, ``contract_tx_counts``.  Columns are ``array('q')``
    (packed int64) so month-scale traces — millions of blocks — stay tens
    of megabytes instead of gigabytes of boxed integers.
    """

    def __init__(self, chain: str) -> None:
        self.chain = chain
        self.numbers = array("q")
        self.timestamps = array("q")
        self.difficulties = array("q")
        self.miner_ids = array("q")
        self.tx_counts = array("q")
        self.contract_tx_counts = array("q")
        self.miner_labels: List[str] = []
        self._label_index: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.numbers)

    def label_id(self, label: str) -> int:
        index = self._label_index.get(label)
        if index is None:
            index = len(self.miner_labels)
            self.miner_labels.append(label)
            self._label_index[label] = index
        return index

    def append(
        self,
        number: int,
        timestamp: int,
        difficulty: int,
        miner: str,
        tx_count: int = 0,
        contract_tx_count: int = 0,
    ) -> None:
        self.numbers.append(number)
        self.timestamps.append(timestamp)
        self.difficulties.append(difficulty)
        self.miner_ids.append(self.label_id(miner))
        self.tx_counts.append(tx_count)
        self.contract_tx_counts.append(contract_tx_count)

    def miner_of(self, index: int) -> str:
        return self.miner_labels[self.miner_ids[index]]

    @classmethod
    def forked_from(cls, parent: "ChainTrace", chain: str) -> "ChainTrace":
        """A new trace sharing ``parent``'s full history as its prefix.

        This is the storage-level mirror of a hard fork: ETH and ETC both
        contain every pre-fork block, then diverge.  Columns are copied
        (packed arrays, so this is cheap) and the label table is shared by
        value, letting pre-fork pool identities persist on both sides.
        """
        child = cls(chain)
        child.numbers = array("q", parent.numbers)
        child.timestamps = array("q", parent.timestamps)
        child.difficulties = array("q", parent.difficulties)
        child.miner_ids = array("q", parent.miner_ids)
        child.tx_counts = array("q", parent.tx_counts)
        child.contract_tx_counts = array("q", parent.contract_tx_counts)
        child.miner_labels = list(parent.miner_labels)
        child._label_index = dict(parent._label_index)
        return child

    def iter_block_records(self) -> Iterator[BlockRecord]:
        """Yield analysis records lazily, one block at a time.

        Month-scale traces hold millions of blocks; materializing them
        as a list of :class:`BlockRecord` objects costs gigabytes.  Bulk
        consumers (:meth:`~repro.sim.engine.ForkSimResult.to_database`)
        stream through this generator instead, so peak memory stays at
        the columnar arrays plus one record.
        """
        chain = self.chain
        labels = self.miner_labels
        numbers = self.numbers
        timestamps = self.timestamps
        difficulties = self.difficulties
        miner_ids = self.miner_ids
        tx_counts = self.tx_counts
        contract_tx_counts = self.contract_tx_counts
        for i in range(len(numbers)):
            yield BlockRecord(
                chain=chain,
                number=numbers[i],
                timestamp=timestamps[i],
                difficulty=difficulties[i],
                miner=labels[miner_ids[i]],
                tx_count=tx_counts[i],
                contract_tx_count=contract_tx_counts[i],
            )

    def block_records(self) -> List[BlockRecord]:
        """Materialize as analysis records (thin wrapper; prefer
        :meth:`iter_block_records` for million-block traces)."""
        return list(self.iter_block_records())

    def slice_by_time(self, start_ts: float, end_ts: float) -> range:
        """Index range of blocks with timestamp in [start_ts, end_ts)."""
        lo = bisect_left(self.timestamps, start_ts)
        hi = bisect_left(self.timestamps, end_ts)
        return range(lo, hi)


class BlockProducer:
    """Advances one chain's head under Poisson mining.

    The producer holds the chain tip (number, timestamp, difficulty) and
    appends to a :class:`ChainTrace`.  Hashrate, the winning-miner sampler,
    and the per-block transaction sampler are supplied per call so the
    driving scenario can change them daily.
    """

    def __init__(
        self,
        config: ChainConfig,
        trace: ChainTrace,
        start_number: int,
        start_timestamp: int,
        start_difficulty: int,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.trace = trace
        self.number = start_number
        self.timestamp = start_timestamp
        self.difficulty = start_difficulty
        #: Wall-clock time: equals the head timestamp while mining is
        #: continuous, but advances past it through idle stretches (zero
        #: hashrate), so the first block after a stall carries the full
        #: gap in its delta — the mechanism behind difficulty free-fall
        #: after an exodus.
        self.clock = start_timestamp
        self.rng = random.Random(seed)
        #: ``(solo_labels, ids)`` memo for the batch kernel's inline
        #: sampler — see :meth:`advance_batch`.
        self._solo_memo: Optional[Tuple[List[str], List[Optional[int]]]] = None

    def advance_one(
        self,
        hashrate: float,
        miner_sampler: Callable[[random.Random], str],
        tx_sampler: Optional[Callable[[random.Random, float], Tuple[int, int]]] = None,
    ) -> int:
        """Mine exactly one block; returns its timestamp."""
        if hashrate <= 0:
            raise ValueError("cannot mine with zero hashrate")
        interval = self.rng.expovariate(hashrate / self.difficulty)
        # Consensus timestamps are integer seconds and must strictly
        # increase; quantize but never collapse to zero.  Solving starts at
        # the wall clock, which may sit past the head after an idle spell.
        step = max(1, round(interval))
        new_timestamp = max(self.timestamp + 1, self.clock + step)
        new_number = self.number + 1
        new_difficulty = self.config.compute_difficulty(
            self.difficulty, self.timestamp, new_timestamp, new_number
        )
        tx_count, contract_count = (0, 0)
        if tx_sampler is not None:
            tx_count, contract_count = tx_sampler(self.rng, step)
        self.trace.append(
            number=new_number,
            timestamp=new_timestamp,
            difficulty=new_difficulty,
            miner=miner_sampler(self.rng),
            tx_count=tx_count,
            contract_tx_count=contract_count,
        )
        self.number = new_number
        self.timestamp = new_timestamp
        self.clock = new_timestamp
        self.difficulty = new_difficulty
        return new_timestamp

    def advance_batch(
        self,
        n: int,
        hashrate: float,
        miner_sampler: Callable[[random.Random], str],
        tx_sampler: Optional[Callable[[random.Random, float], Tuple[int, int]]] = None,
        end_timestamp: Optional[int] = None,
    ) -> int:
        """Mine up to ``n`` blocks in one call; returns blocks produced.

        The batched hot-loop kernel: trajectory-identical to ``n``
        successive :meth:`advance_one` calls (stopping early once the
        clock reaches ``end_timestamp``, when given) — RNG draws happen
        in the exact same order (interval, then transactions, then the
        winning miner), proven by the differential tests in
        ``tests/test_perf_kernels.py``.  The speed comes from hoisting
        every attribute and method lookup out of the loop: the chain tip
        lives in locals, the three always-present trace columns buffer
        interleaved through one bound ``array.extend`` per block (de-
        interleaved by stepped slices in the flush), the miner-label
        intern table is a bound ``dict.get``, and the Homestead/Frontier
        difficulty rule is
        inlined as straight integer arithmetic (generic rules fall back
        to the per-config closure from
        :attr:`~repro.chain.config.ChainConfig.fast_difficulty`).
        """
        if hashrate <= 0:
            raise ValueError("cannot mine with zero hashrate")
        if n <= 0:
            return 0
        end = _INF if end_timestamp is None else end_timestamp

        # -- hoisted bindings (the whole point of the kernel) -------------
        rng = self.rng
        expovariate = rng.expovariate
        rng_random = rng.random
        _log = math.log
        inline_expo = _INLINE_EXPOVARIATE
        trace = self.trace
        label_get = trace._label_index.get
        label_id = trace.label_id
        _round = round
        _bisect_right = bisect_right
        # The three always-present columns (timestamp, difficulty, miner)
        # buffer interleaved in ONE packed array: a single
        # ``extend((ts, diff, mid))`` per block replaces three bound
        # appends — one C call instead of three — and the flush
        # de-interleaves with stepped slices (``buf[0::3]`` etc.), which
        # is a same-typecode array copy, ~2 orders of magnitude cheaper
        # than the per-block calls it absorbs.  Block numbers are
        # consecutive, so they need no per-block append at all — a
        # single ``extend(range(...))`` in the flush; likewise the
        # transaction columns zero-fill in one C call when no
        # transaction sampler is installed.  The flush runs in a
        # ``finally`` so the columns stay aligned (complete blocks only)
        # even if a sampler raises mid-batch — the buffer gains a
        # block's triple only after every draw for that block succeeded,
        # matching the reference path's exception behavior.
        buf = array("q")
        put = buf.extend
        append_txs = trace.tx_counts.append
        append_contract_txs = trace.contract_tx_counts.append

        # The standard pool sampler publishes its closure parameters so
        # the categorical draw can run inline: one ``random()`` plus a
        # bisect (or a ``_randbelow`` on solo wins), with miner-label ids
        # memoized lazily per index.  The memo preserves the reference
        # path's first-win label interning order exactly — ids are only
        # assigned the first time a miner actually wins a block.
        parts = getattr(miner_sampler, "categorical_parts", None)
        inline_sampler = _INLINE_RANDBELOW and parts is not None
        if inline_sampler:
            (
                cumulative,
                pool_labels,
                pooled_mass,
                solo_count,
                solo_labels,
                last_pool,
            ) = parts
            if solo_count <= 0:
                inline_sampler = False
            else:
                getrandbits = rng.getrandbits
                solo_bits = solo_count.bit_length()
                pool_ids: List[Optional[int]] = [None] * len(pool_labels)
                # The solo-label list is shared across days (one list per
                # landscape), so its id memo survives between batches;
                # the identity check keys the cache without hashing, and
                # holding the list itself keeps the key from being
                # recycled.  Pool labels are rebuilt daily, so their memo
                # is per-batch.
                memo = self._solo_memo
                if memo is not None and memo[0] is solo_labels:
                    solo_ids = memo[1]
                else:
                    solo_ids: List[Optional[int]] = [None] * solo_count
                    self._solo_memo = (solo_labels, solo_ids)

        number = start_number = self.number
        timestamp = self.timestamp
        difficulty = self.difficulty
        clock = self.clock
        has_tx = tx_sampler is not None

        rule = self.config.difficulty_rule
        compute = rule.compute
        bomb_delay = self.config.bomb_delay
        bomb_floor = 2 * BOMB_PERIOD + bomb_delay
        # Consensus constants as locals: LOAD_FAST instead of LOAD_GLOBAL
        # on every block.
        bound_divisor = DIFFICULTY_BOUND_DIVISOR
        clamp = HOMESTEAD_CLAMP
        min_difficulty = MIN_DIFFICULTY
        bomb_period = BOMB_PERIOD
        homestead = compute is homestead_difficulty
        frontier = compute is frontier_difficulty
        fast_rule = (
            None if homestead or frontier else self.config.fast_difficulty
        )

        # Bomb cache for the dedicated loops: the bomb term is constant
        # between exponent boundaries (every ``bomb_period`` blocks), so
        # recompute the shift only when ``number`` crosses one.  Starting
        # ``bomb_next`` at the activation floor folds the is-the-bomb-
        # active test into the same compare: below the floor the cached
        # term stays 0, and adding 0 is exact integer identity.
        bomb_term = 0
        bomb_next = bomb_floor

        produced = 0
        # A ``for`` over ``range`` replaces the per-iteration
        # ``produced < n`` compare and counter increment with a single C
        # iterator step; ``produced`` lands on the block count either way.
        #
        # The dominant configuration — Homestead rule, inline expovariate,
        # inline categorical sampler — gets dedicated loops with zero
        # per-iteration mode checks, specialized once more on whether a
        # transaction sampler is installed (so the difficulty-only loop
        # carries no dead ``has_tx`` tests and the workload loop no
        # always-true ones); every other combination runs the general
        # loop in the ``else`` branch.  All bodies are
        # expression-for-expression the same where they overlap, and all
        # are held to the reference trajectory by the differential tests.
        # The ``finally`` flush keeps the derived columns (numbers, the
        # zero-filled transaction columns) and the chain tip consistent
        # with whatever full blocks were appended, even if a sampler
        # raises mid-batch — the same partial-progress state the
        # reference per-call loop leaves behind.
        try:
            if homestead and inline_expo and inline_sampler and not has_tx:
                for produced in range(1, n + 1):
                    if clock >= end:
                        produced -= 1
                        break
                    # interval ~ Exponential(hashrate / difficulty),
                    # inlined (see _expovariate_inline_ok).
                    interval = -_log(1.0 - rng_random()) / (
                        hashrate / difficulty
                    )
                    step = _round(interval)
                    if step < 1:
                        step = 1
                    # ``clock >= timestamp`` is an invariant of every
                    # producer code path (construction sets them equal,
                    # the loops keep them equal, the zero-hashrate stall
                    # only raises the clock), so with ``step >= 1`` the
                    # reference path's ``new_timestamp <= timestamp``
                    # clamp can never fire — elided here; the digest
                    # gate would catch any divergence.
                    new_timestamp = clock + step
                    number += 1
                    # EIP-2 difficulty update + bomb, straight-line.  A
                    # zero multiplier (block time in [10, 20)) adds
                    # nothing, so skip the divide/multiply entirely; the
                    # cached bomb term is exact between exponent
                    # boundaries (and exactly 0 before activation).
                    multiplier = 1 - (new_timestamp - timestamp) // 10
                    if multiplier < clamp:
                        multiplier = clamp
                    if multiplier:
                        difficulty += (
                            difficulty // bound_divisor * multiplier
                        )
                    if number >= bomb_next:
                        bomb_exp = (number - bomb_delay) // bomb_period
                        bomb_term = 1 << (bomb_exp - 2)
                        bomb_next = (
                            bomb_exp + 1
                        ) * bomb_period + bomb_delay
                    difficulty += bomb_term
                    if difficulty < min_difficulty:
                        difficulty = min_difficulty
                    # The winning-miner draw, in advance_one's exact RNG
                    # order (no transaction draw in this loop); appends
                    # only after every draw for the block succeeded.
                    point = rng_random()
                    if point >= pooled_mass:
                        slot = getrandbits(solo_bits)
                        while slot >= solo_count:
                            slot = getrandbits(solo_bits)
                        miner_id = solo_ids[slot]
                        if miner_id is None:
                            miner = solo_labels[slot]
                            miner_id = label_get(miner)
                            if miner_id is None:
                                miner_id = label_id(miner)
                            solo_ids[slot] = miner_id
                    else:
                        slot = _bisect_right(cumulative, point)
                        if slot > last_pool:
                            slot = last_pool
                        miner_id = pool_ids[slot]
                        if miner_id is None:
                            miner = pool_labels[slot]
                            miner_id = label_get(miner)
                            if miner_id is None:
                                miner_id = label_id(miner)
                            pool_ids[slot] = miner_id
                    put((new_timestamp, difficulty, miner_id))
                    timestamp = clock = new_timestamp
            elif homestead and inline_expo and inline_sampler:
                for produced in range(1, n + 1):
                    if clock >= end:
                        produced -= 1
                        break
                    # Same body as the loop above, with the transaction
                    # draw between the interval and the winning miner —
                    # advance_one's exact RNG order.
                    interval = -_log(1.0 - rng_random()) / (
                        hashrate / difficulty
                    )
                    step = _round(interval)
                    if step < 1:
                        step = 1
                    new_timestamp = clock + step
                    if new_timestamp <= timestamp:
                        new_timestamp = timestamp + 1
                    number += 1
                    multiplier = 1 - (new_timestamp - timestamp) // 10
                    if multiplier < clamp:
                        multiplier = clamp
                    if multiplier:
                        difficulty += (
                            difficulty // bound_divisor * multiplier
                        )
                    if number >= bomb_next:
                        bomb_exp = (number - bomb_delay) // bomb_period
                        bomb_term = 1 << (bomb_exp - 2)
                        bomb_next = (
                            bomb_exp + 1
                        ) * bomb_period + bomb_delay
                    difficulty += bomb_term
                    if difficulty < min_difficulty:
                        difficulty = min_difficulty
                    tx_count, contract_count = tx_sampler(rng, step)
                    point = rng_random()
                    if point >= pooled_mass:
                        slot = getrandbits(solo_bits)
                        while slot >= solo_count:
                            slot = getrandbits(solo_bits)
                        miner_id = solo_ids[slot]
                        if miner_id is None:
                            miner = solo_labels[slot]
                            miner_id = label_get(miner)
                            if miner_id is None:
                                miner_id = label_id(miner)
                            solo_ids[slot] = miner_id
                    else:
                        slot = _bisect_right(cumulative, point)
                        if slot > last_pool:
                            slot = last_pool
                        miner_id = pool_ids[slot]
                        if miner_id is None:
                            miner = pool_labels[slot]
                            miner_id = label_get(miner)
                            if miner_id is None:
                                miner_id = label_id(miner)
                            pool_ids[slot] = miner_id
                    append_txs(tx_count)
                    append_contract_txs(contract_count)
                    put((new_timestamp, difficulty, miner_id))
                    timestamp = clock = new_timestamp
            else:
                for produced in range(1, n + 1):
                    if clock >= end:
                        produced -= 1
                        break
                    # ``Random.expovariate`` is a Python-level wrapper
                    # around ``-log(1.0 - random()) / lambd``; inline it
                    # (same single draw, same operation order, bit-
                    # identical result — see _expovariate_inline_ok).
                    if inline_expo:
                        interval = -_log(1.0 - rng_random()) / (
                            hashrate / difficulty
                        )
                    else:  # pragma: no cover - non-CPython fallback
                        interval = expovariate(hashrate / difficulty)
                    step = _round(interval)
                    if step < 1:
                        step = 1
                    new_timestamp = clock + step
                    if new_timestamp <= timestamp:
                        new_timestamp = timestamp + 1
                    number += 1
                    # -- difficulty rule, inlined for the consensus
                    # algorithms ------------------------------------------
                    if homestead:
                        multiplier = 1 - (new_timestamp - timestamp) // 10
                        if multiplier < clamp:
                            multiplier = clamp
                        difficulty += (
                            difficulty // bound_divisor * multiplier
                        )
                        if number >= bomb_floor:
                            difficulty += 1 << (
                                (number - bomb_delay) // bomb_period - 2
                            )
                        if difficulty < min_difficulty:
                            difficulty = min_difficulty
                    elif frontier:
                        adjustment = difficulty // bound_divisor
                        if new_timestamp - timestamp < 13:
                            difficulty += adjustment
                        else:
                            difficulty -= adjustment
                        if number >= bomb_floor:
                            difficulty += 1 << (
                                (number - bomb_delay) // bomb_period - 2
                            )
                        if difficulty < min_difficulty:
                            difficulty = min_difficulty
                    else:
                        difficulty = fast_rule(
                            difficulty, timestamp, new_timestamp, number
                        )
                    # -- samplers, in advance_one's exact RNG draw order --
                    if has_tx:
                        tx_count, contract_count = tx_sampler(rng, step)
                    if inline_sampler:
                        point = rng_random()
                        if point >= pooled_mass:
                            slot = getrandbits(solo_bits)
                            while slot >= solo_count:
                                slot = getrandbits(solo_bits)
                            miner_id = solo_ids[slot]
                            if miner_id is None:
                                miner = solo_labels[slot]
                                miner_id = label_get(miner)
                                if miner_id is None:
                                    miner_id = label_id(miner)
                                solo_ids[slot] = miner_id
                        else:
                            slot = _bisect_right(cumulative, point)
                            if slot > last_pool:
                                slot = last_pool
                            miner_id = pool_ids[slot]
                            if miner_id is None:
                                miner = pool_labels[slot]
                                miner_id = label_get(miner)
                                if miner_id is None:
                                    miner_id = label_id(miner)
                                pool_ids[slot] = miner_id
                    else:
                        miner = miner_sampler(rng)
                        miner_id = label_get(miner)
                        if miner_id is None:
                            miner_id = label_id(miner)
                    if has_tx:
                        append_txs(tx_count)
                        append_contract_txs(contract_count)
                    put((new_timestamp, difficulty, miner_id))
                    timestamp = clock = new_timestamp
        finally:
            # De-interleave the per-block triples into their columns
            # (same-typecode array extends), then derive the rest: block
            # numbers are consecutive, so one ``extend(range(...))``
            # covers them.
            trace.timestamps.extend(buf[0::3])
            trace.difficulties.extend(buf[1::3])
            trace.miner_ids.extend(buf[2::3])
            trace.numbers.extend(range(start_number + 1, number + 1))
            if not has_tx:
                # Without a transaction sampler every block carries zero
                # transactions; fill both columns in one C call instead
                # of two dead appends per block.
                zeros = bytes(8 * (number - start_number))
                trace.tx_counts.frombytes(zeros)
                trace.contract_tx_counts.frombytes(zeros)
            self.number = number
            self.timestamp = timestamp
            self.clock = clock
            self.difficulty = difficulty
        return produced

    #: Class-level switch: ``False`` routes :meth:`run_until` through the
    #: per-call reference loop instead of :meth:`advance_batch` — used by
    #: :func:`repro.perf.reference.reference_block_loop` for differential
    #: tests and benchmark baselines.  Trajectories are identical either
    #: way.
    use_batch_kernel = True

    def run_until(
        self,
        end_timestamp: int,
        hashrate: float,
        miner_sampler: Callable[[random.Random], str],
        tx_sampler: Optional[Callable[[random.Random, float], Tuple[int, int]]] = None,
        max_blocks: int = 5_000_000,
    ) -> int:
        """Mine until the head timestamp passes ``end_timestamp``.

        With zero hashrate the chain simply does not advance (a stalled
        network — precisely ETC in the first post-fork hours if nobody had
        stayed).  Returns blocks produced.
        """
        if hashrate <= 0:
            self.clock = max(self.clock, end_timestamp)
            return 0
        if not self.use_batch_kernel:
            return self._run_until_reference(
                end_timestamp, hashrate, miner_sampler, tx_sampler, max_blocks
            )
        produced = self.advance_batch(
            max_blocks + 1,
            hashrate,
            miner_sampler,
            tx_sampler,
            end_timestamp=end_timestamp,
        )
        if produced > max_blocks:
            raise RuntimeError(
                f"produced more than {max_blocks} blocks before "
                f"t={end_timestamp}; runaway parameters?"
            )
        return produced

    def _run_until_reference(
        self,
        end_timestamp: int,
        hashrate: float,
        miner_sampler: Callable[[random.Random], str],
        tx_sampler: Optional[Callable[[random.Random, float], Tuple[int, int]]] = None,
        max_blocks: int = 5_000_000,
    ) -> int:
        """The pre-kernel per-block loop, kept verbatim as the oracle the
        differential tests and benchmarks compare :meth:`advance_batch`
        against."""
        produced = 0
        while self.clock < end_timestamp:
            self.advance_one(hashrate, miner_sampler, tx_sampler)
            produced += 1
            if produced > max_blocks:
                raise RuntimeError(
                    f"produced more than {max_blocks} blocks before "
                    f"t={end_timestamp}; runaway parameters?"
                )
        return produced
