"""Pool landscapes: who wins blocks, per chain per day (Figure 5's input).

The paper's Figure 5 observations, restated as model requirements:

1. ETH's top-pool block shares are constant over time and equal to the
   pre-fork shares (the big pools "immediately and pervasively chose to
   migrate to ETH") — so the ETH landscape is a *fixed* weight vector with
   small daily churn.
2. ETC's pools start much smaller ("for several months after the fork, the
   top mining pools in ETC mined a considerably smaller fraction") and
   *slowly coalesce* — a fragmented weight vector relaxing toward a
   concentrated one over ~6 months.
3. "Pools are highly dynamic (pools come and go regularly)", so the
   analysis must pick top pools per day; the model includes pool identity
   turnover in the small-pool tail to honour that.

Weights are block-winning probabilities (hashrate shares); a residual
"solo" mass is spread over many individual miner identities so it can
never masquerade as a top pool.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "PoolSpec",
    "PoolLandscape",
    "eth_pool_landscape",
    "etc_pool_landscape",
    "prefork_pool_landscape",
]


@dataclass(frozen=True)
class PoolSpec:
    name: str
    weight: float

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("pool weight must be non-negative")


class PoolLandscape:
    """A time-varying categorical distribution over miner labels.

    ``start`` and ``target`` are weight vectors (they may be identical for
    a static landscape); the landscape interpolates between them with an
    exponential relaxation of time-scale ``coalesce_days``.  Daily
    lognormal churn perturbs each pool's weight; the small-pool tail
    rotates identity every ``turnover_days``.
    """

    def __init__(
        self,
        start: Sequence[PoolSpec],
        target: Sequence[PoolSpec],
        solo_fraction: float = 0.15,
        solo_identities: int = 2000,
        coalesce_days: float = 1.0,
        churn_sigma: float = 0.06,
        turnover_days: float = 45.0,
        tail_threshold: float = 0.04,
        seed: int = 0,
    ) -> None:
        start_names = [spec.name for spec in start]
        target_names = [spec.name for spec in target]
        if start_names != target_names:
            raise ValueError("start/target must list the same pools in order")
        if not 0 <= solo_fraction < 1:
            raise ValueError("solo fraction must be in [0, 1)")
        self.pool_names = start_names
        self.start_weights = [spec.weight for spec in start]
        self.target_weights = [spec.weight for spec in target]
        self.solo_fraction = solo_fraction
        self.solo_identities = solo_identities
        self.coalesce_days = coalesce_days
        self.churn_sigma = churn_sigma
        self.turnover_days = turnover_days
        self.tail_threshold = tail_threshold
        self.seed = seed
        self._solo_label_cache: Optional[List[str]] = None

    def _solo_labels(self) -> List[str]:
        """Interned solo-miner labels, built once per landscape.

        The per-block sampler used to format ``f"solo-{i:05d}"`` on every
        solo win — measurable string traffic at millions of blocks.  The
        label for a given index is unchanged; only the formatting moved
        out of the hot loop.
        """
        if self._solo_label_cache is None:
            self._solo_label_cache = [
                f"solo-{i:05d}" for i in range(self.solo_identities)
            ]
        return self._solo_label_cache

    def _mixture(self, day: float) -> List[float]:
        m = 1.0 - math.exp(-max(day, 0.0) / self.coalesce_days)
        return [
            (1 - m) * s + m * t
            for s, t in zip(self.start_weights, self.target_weights)
        ]

    def weights_on_day(self, day: float) -> Dict[str, float]:
        """Pool label -> winning probability for ``day`` (plus churn).

        Deterministic per (landscape seed, day) so every consumer sees one
        consistent landscape.  Small pools below ``tail_threshold`` carry a
        generation suffix that rotates every ``turnover_days`` — the same
        hashpower re-appearing under a new pool brand.
        """
        rng = random.Random(f"{self.seed}:{int(day)}")
        raw = self._mixture(day)
        churned = [
            weight * rng.lognormvariate(0.0, self.churn_sigma) for weight in raw
        ]
        total = sum(churned)
        scale = (1.0 - self.solo_fraction) / total if total > 0 else 0.0
        weights: Dict[str, float] = {}
        generation = int(day // self.turnover_days)
        for name, base_weight, weight in zip(
            self.pool_names, raw, churned
        ):
            label = name
            if base_weight < self.tail_threshold:
                label = f"{name}-g{generation}"
            weights[label] = weight * scale
        return weights

    def make_sampler(
        self, day: float
    ) -> Callable[[random.Random], str]:
        """Per-block winner sampler for the :class:`BlockProducer`."""
        weights = self.weights_on_day(day)
        labels = list(weights)
        cumulative: List[float] = []
        running = 0.0
        for label in labels:
            running += weights[label]
            cumulative.append(running)
        pooled_mass = running
        solo_count = self.solo_identities
        solo_labels = self._solo_labels()
        last = len(labels) - 1
        _bisect_right = bisect_right

        def sampler(rng: random.Random) -> str:
            # One rng.random() per block, exactly as before; the clamp,
            # bisect lookup, and solo label are all hoisted/bound so the
            # per-call cost is two C calls and an index.
            point = rng.random()
            if point >= pooled_mass:
                return solo_labels[rng.randrange(solo_count)]
            index = _bisect_right(cumulative, point)
            return labels[index if index < last else last]

        # Expose the closure's parameters so the batch kernel
        # (:meth:`repro.sim.blockprod.BlockProducer.advance_batch`) can
        # inline the categorical draw without an indirect call per block.
        # The inlined arithmetic mirrors the body above expression for
        # expression; the differential tests hold both paths to identical
        # winner sequences.
        sampler.categorical_parts = (
            cumulative,
            labels,
            pooled_mass,
            solo_count,
            solo_labels,
            last,
        )
        return sampler

    def make_sampler_reference(
        self, day: float
    ) -> Callable[[random.Random], str]:
        """The pre-optimization sampler, kept verbatim as the oracle.

        Draw-for-draw identical to :meth:`make_sampler` (one
        ``rng.random()``, one ``rng.randrange`` on solo wins) but with
        the original per-call costs (inner import, f-string solo labels,
        ``min``/``len`` clamp).  :func:`repro.perf.reference` swaps this
        in to measure the kernels against the seed-state hot loop, and
        the differential tests assert both samplers yield identical
        winner sequences.
        """
        weights = self.weights_on_day(day)
        labels = list(weights)
        cumulative: List[float] = []
        running = 0.0
        for label in labels:
            running += weights[label]
            cumulative.append(running)
        pooled_mass = running
        solo_count = self.solo_identities

        def sampler(rng: random.Random) -> str:
            point = rng.random()
            if point >= pooled_mass:
                return f"solo-{rng.randrange(solo_count):05d}"
            import bisect

            index = bisect.bisect_right(cumulative, point)
            return labels[min(index, len(labels) - 1)]

        return sampler


#: Pre-fork pool shares, calibrated to mid-2016 Ethereum: a handful of
#: pools (dwarfpool, f2pool, ethpool/ethermine, ...) controlled ~75-80% of
#: blocks with the largest near 25-30%.
_PREFORK_POOLS = [
    PoolSpec("dwarfpool", 0.26),
    PoolSpec("f2pool", 0.21),
    PoolSpec("ethermine", 0.14),
    PoolSpec("ethfans", 0.08),
    PoolSpec("miningpoolhub", 0.06),
    PoolSpec("nanopool", 0.035),
    PoolSpec("coinotron", 0.025),
    PoolSpec("talkether", 0.015),
    PoolSpec("alpereum", 0.010),
]

#: Fragmented post-fork ETC: fourteen comparable outfits, none dominant —
#: the day-one top-5 hold ~45% of blocks versus ETH's ~76%.
_ETC_START_POOLS = [
    PoolSpec("epool", 0.16),
    PoolSpec("etc-f2pool", 0.12),
    PoolSpec("91pool", 0.10),
    PoolSpec("etcpool-org", 0.09),
    PoolSpec("minergate", 0.08),
    PoolSpec("etc-nanopool", 0.05),
    PoolSpec("clona", 0.05),
    PoolSpec("etc-suprnova", 0.05),
    PoolSpec("epool-eu", 0.05),
    PoolSpec("etc-dwarf", 0.05),
    PoolSpec("private-1", 0.05),
    PoolSpec("private-2", 0.05),
    PoolSpec("private-3", 0.05),
    PoolSpec("private-4", 0.05),
]

#: The distribution ETC *converged to*: the same relative ratios as the
#: ETH (and pre-fork) pools, with the long tail squeezed out.
_ETC_TARGET_POOLS = [
    PoolSpec("epool", 0.26),
    PoolSpec("etc-f2pool", 0.21),
    PoolSpec("91pool", 0.14),
    PoolSpec("etcpool-org", 0.08),
    PoolSpec("minergate", 0.06),
    PoolSpec("etc-nanopool", 0.012),
    PoolSpec("clona", 0.011),
    PoolSpec("etc-suprnova", 0.010),
    PoolSpec("epool-eu", 0.009),
    PoolSpec("etc-dwarf", 0.009),
    PoolSpec("private-1", 0.009),
    PoolSpec("private-2", 0.008),
    PoolSpec("private-3", 0.008),
    PoolSpec("private-4", 0.008),
]


def prefork_pool_landscape(seed: int = 7) -> PoolLandscape:
    """The single pre-fork network's (static) pool distribution."""
    return PoolLandscape(
        start=_PREFORK_POOLS,
        target=_PREFORK_POOLS,
        solo_fraction=0.155,
        seed=seed,
    )


def eth_pool_landscape(seed: int = 7) -> PoolLandscape:
    """ETH after the fork: the pre-fork pools, unchanged (Observation:
    same addresses, same ratios as before the fork)."""
    return PoolLandscape(
        start=_PREFORK_POOLS,
        target=_PREFORK_POOLS,
        solo_fraction=0.155,
        seed=seed,  # same seed as pre-fork: identical pool identities
    )


def etc_pool_landscape(seed: int = 9) -> PoolLandscape:
    """ETC after the fork: fragmented, coalescing over ~6 months."""
    return PoolLandscape(
        start=_ETC_START_POOLS,
        target=_ETC_TARGET_POOLS,
        solo_fraction=0.18,
        coalesce_days=75.0,
        churn_sigma=0.10,
        seed=seed,
    )
