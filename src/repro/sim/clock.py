"""Calendar anchoring for simulated time.

Figures in the paper run on calendar axes ("07/21", "09/16", ...).  The
fast simulator works in Unix seconds anchored at the real DAO-fork moment
(2016-07-20 13:20:40 UTC), so simulated series line up with the paper's
dates and reports can print the same tick labels.
"""

from __future__ import annotations

import datetime as _dt

from ..chain.config import DAO_FORK_TIMESTAMP

__all__ = [
    "FORK_TIMESTAMP",
    "SECONDS_PER_DAY",
    "day_to_timestamp",
    "timestamp_to_day",
    "format_date",
    "month_label",
]

FORK_TIMESTAMP = DAO_FORK_TIMESTAMP
SECONDS_PER_DAY = 86_400


def day_to_timestamp(day: float) -> int:
    """Unix timestamp for ``day`` days after the fork (may be negative)."""
    return int(FORK_TIMESTAMP + day * SECONDS_PER_DAY)


def timestamp_to_day(timestamp: float) -> float:
    """Days since the fork (fractional)."""
    return (timestamp - FORK_TIMESTAMP) / SECONDS_PER_DAY


def format_date(timestamp: float) -> str:
    """ISO date (UTC) for a Unix timestamp — report axis labels."""
    moment = _dt.datetime.fromtimestamp(timestamp, tz=_dt.timezone.utc)
    return moment.strftime("%Y-%m-%d")


def month_label(timestamp: float) -> str:
    """The paper's MM/YY tick format (e.g. "07/16")."""
    moment = _dt.datetime.fromtimestamp(timestamp, tz=_dt.timezone.utc)
    return moment.strftime("%m/%y")
