"""Transaction-demand model: the usage side of Figure 2.

The paper's Figure 2 (middle/bottom) shows the two networks being *used*
differently despite being variants of one system: ETH carried roughly
2.5x ETC's transactions for most of the window, rising to ~5x in late
March 2017 (speculation influx), while the contract-call fraction stayed
similar on both chains "until very recently".

The model is an anchored daily-rate trajectory per chain (same machinery
as the price processes) with Poisson noise, plus an anchored contract-call
fraction.  Daily totals spread over the day's blocks proportional to the
inter-block gaps, so a stalled chain (post-fork ETC) shows the backlog
compressing into the few blocks that do get mined.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence, Tuple

__all__ = [
    "RateAnchor",
    "AnchoredRate",
    "TransactionWorkload",
    "eth_workload",
    "etc_workload",
]


@dataclass(frozen=True)
class RateAnchor:
    day: float
    value: float


class AnchoredRate:
    """Piecewise-linear day->value interpolation (shared helper)."""

    def __init__(self, anchors: Sequence[RateAnchor]) -> None:
        if len(anchors) < 2:
            raise ValueError("need at least two anchors")
        days = [anchor.day for anchor in anchors]
        if days != sorted(days):
            raise ValueError("anchors out of order")
        self.anchors = list(anchors)

    def at(self, day: float) -> float:
        anchors = self.anchors
        if day <= anchors[0].day:
            return anchors[0].value
        if day >= anchors[-1].day:
            return anchors[-1].value
        for left, right in zip(anchors, anchors[1:]):
            if left.day <= day <= right.day:
                span = right.day - left.day
                frac = (day - left.day) / span if span else 0.0
                return (1 - frac) * left.value + frac * right.value
        raise AssertionError("unreachable")  # pragma: no cover


class TransactionWorkload:
    """Daily transaction demand for one chain.

    ``daily_count(day, rng)`` draws the day's transaction total (Poisson
    around the trajectory — approximated by a Gaussian above 1000 for
    speed) and ``contract_fraction(day)`` gives the expected share of
    contract interactions.  ``per_block_sampler`` adapts a day total into
    the per-block sampler the :class:`BlockProducer` consumes.
    """

    def __init__(
        self,
        rate: AnchoredRate,
        contract_fraction_rate: AnchoredRate,
        noise_cv: float = 0.08,
    ) -> None:
        self.rate = rate
        self.contract_fraction_rate = contract_fraction_rate
        self.noise_cv = noise_cv

    def daily_count(self, day: float, rng: random.Random) -> int:
        mean = self.rate.at(day)
        if mean <= 0:
            return 0
        # Poisson + an extra lognormal day effect (usage is burstier than
        # pure Poisson: news days, airdrops, attacks).
        day_effect = rng.lognormvariate(0.0, self.noise_cv)
        lam = mean * day_effect
        if lam > 1000:
            return max(0, round(rng.gauss(lam, math.sqrt(lam))))
        return _poisson(lam, rng)

    def contract_fraction(self, day: float) -> float:
        return min(1.0, max(0.0, self.contract_fraction_rate.at(day)))

    def per_block_sampler(self, day: float, daily_total: int, seconds_in_day: float = 86_400.0):
        """Build ``tx_sampler(rng, block_gap) -> (tx, contract_tx)``.

        Transactions arrive uniformly in time, so a block claims a share
        of the day's total proportional to the gap it closes.  The
        contract share is binomial around the day's expected fraction.
        """
        contract_p = self.contract_fraction(day)
        rate_per_second = daily_total / seconds_in_day

        def sampler(rng: random.Random, gap_seconds: float) -> Tuple[int, int]:
            lam = rate_per_second * gap_seconds
            if lam <= 0:
                return 0, 0
            if lam > 1000:
                count = max(0, round(rng.gauss(lam, math.sqrt(lam))))
            else:
                count = _poisson(lam, rng)
            if count == 0:
                return 0, 0
            contracts = sum(
                1 for _ in range(count) if rng.random() < contract_p
            ) if count <= 64 else max(
                0,
                min(
                    count,
                    round(rng.gauss(count * contract_p,
                                    math.sqrt(count * contract_p * (1 - contract_p) + 1e-9))),
                ),
            )
            return count, contracts

        return sampler


def _poisson(lam: float, rng: random.Random) -> int:
    """Knuth's algorithm (small lambda only)."""
    threshold = math.exp(-lam)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def eth_workload() -> TransactionWorkload:
    """ETH demand: ~40k/day post-fork rising to ~110k/day in late March."""
    return TransactionWorkload(
        rate=AnchoredRate(
            [
                RateAnchor(0, 42_000),
                RateAnchor(60, 45_000),
                RateAnchor(120, 48_000),
                RateAnchor(180, 52_000),
                RateAnchor(230, 65_000),
                RateAnchor(250, 100_000),
                RateAnchor(270, 112_000),
            ]
        ),
        contract_fraction_rate=AnchoredRate(
            [
                RateAnchor(0, 0.32),
                RateAnchor(90, 0.36),
                RateAnchor(180, 0.38),
                RateAnchor(240, 0.50),
                RateAnchor(270, 0.62),
            ]
        ),
    )


def etc_workload() -> TransactionWorkload:
    """ETC demand: ~2.5:1 below ETH for most of the window, ~5:1 by March."""
    return TransactionWorkload(
        rate=AnchoredRate(
            [
                RateAnchor(0, 17_000),
                RateAnchor(60, 18_000),
                RateAnchor(120, 19_000),
                RateAnchor(180, 20_500),
                RateAnchor(230, 21_000),
                RateAnchor(250, 21_500),
                RateAnchor(270, 22_000),
            ]
        ),
        contract_fraction_rate=AnchoredRate(
            [
                RateAnchor(0, 0.30),
                RateAnchor(90, 0.33),
                RateAnchor(180, 0.34),
                RateAnchor(240, 0.26),
                RateAnchor(270, 0.18),
            ]
        ),
    )
