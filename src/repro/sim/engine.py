"""The two-chain fork simulation: one engine behind Figures 1, 2, 3 and 5.

:class:`ForkSimulation` reconstructs the July 2016 partition end-to-end at
day granularity:

1. A **pre-fork segment** mines the shared prefix under the pre-fork pool
   landscape.
2. At the fork instant the trace splits (:meth:`ChainTrace.forked_from`):
   ideologically pro-fork hashpower and — crucially — the entire
   profit-driven majority *follow the upgrade to ETH*, leaving ETC with
   only its "code is law" loyalists (~1% of hashpower).  That initial
   condition is what collapses ETC block production to a handful of blocks
   per hour while the clamped difficulty algorithm grinds down
   (Observations 1-2, Figure 1).
3. Each simulated day, the market model produces ETH/ETC prices, the
   supply model produces available hashpower (growth + Zcash draw), and
   the lagged arbitrage allocator moves profit hashpower toward the
   revenue-equalizing split — sending a slice *back* to ETC as its price
   finds a floor (the mirror-image difficulty drift in Figure 1's second
   fortnight, and Figure 3's near-identical hashes-per-USD curves).
4. Block production for the day runs through the exact consensus
   difficulty rule; the transaction workload model fills blocks.

Everything downstream (the figures) reads the resulting traces and rate
series through :class:`~repro.data.store.ChainDatabase`.
"""

from __future__ import annotations

import bisect
import hashlib
import random
import struct
from contextlib import nullcontext
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import Observability

#: Shared reusable no-op context for the obs-disabled path.
_NULL_CONTEXT = nullcontext()

from ..chain.config import ETC_CONFIG, ETH_CONFIG, PRE_FORK_CONFIG, DAO_FORK_BLOCK
from ..data.store import ChainDatabase
from ..market.arbitrage import LaggedAllocator
from ..market.events import DEFAULT_EVENTS, ExternalDraw, HashpowerSupply
from ..market.exchange import ExchangeRateSeries
from ..market.price import etc_price_process, eth_price_process
from .blockprod import BlockProducer, ChainTrace
from .checkpoint import ForkSimCheckpoint
from .clock import FORK_TIMESTAMP, SECONDS_PER_DAY
from .population import (
    PoolLandscape,
    etc_pool_landscape,
    eth_pool_landscape,
    prefork_pool_landscape,
)
from .workload import TransactionWorkload, etc_workload, eth_workload

__all__ = ["ForkSimConfig", "ForkSimResult", "ForkSimulation", "run_fork_sim"]


@dataclass
class ForkSimConfig:
    """Calibration knobs for the fork reconstruction.

    Defaults reproduce the paper's measurement window: 270 days from the
    fork (July 2016 → April 2017), total hashpower ~4.8 TH/s at the fork
    (putting equilibrium difficulty at the ~6.7e13 the paper's Figure 1
    shows), ~1.2% of hashpower ideologically committed to ETC at the
    instant of the fork, and a daily arbitrage adjustment rate of 18%.
    """

    days: int = 270
    prefork_days: int = 14
    seed: int = 2016_07_20
    total_hashrate_at_fork: float = 4.8e12
    hashrate_growth_per_day: float = 0.005
    #: Fractions of fork-time hashpower that are ideologically pinned.
    etc_loyal_fraction: float = 0.012
    eth_loyal_fraction: float = 0.35
    #: ETC loyalist hashpower online at the fork instant.  The anti-fork
    #: camp needed days to regroup (dedicated clients, new bootnodes, pool
    #: infrastructure), so day-zero ETC ran on a sliver of its eventual
    #: loyalist base; the rest ramps in over ``etc_loyal_ramp_days``.
    etc_day0_fraction: float = 0.005
    etc_loyal_ramp_days: float = 3.0
    #: Day ETC became tradeable (Poloniex listed it ~July 24, day 4).
    #: Profit-driven hashpower cannot arbitrage an unpriced asset, so no
    #: profit flow reaches ETC before this day.
    etc_listing_day: int = 4
    #: Lagged-allocator daily adjustment rate.
    allocator_alpha: float = 0.12
    events: Sequence[ExternalDraw] = field(default_factory=lambda: list(DEFAULT_EVENTS))
    #: Include the per-block transaction workload (disable for
    #: difficulty-only experiments to halve runtime).
    with_transactions: bool = True

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable snapshot of every calibration knob.

        The harness hashes this dict (canonically ordered) into cache
        keys, so it must capture *everything* that influences the run —
        including the event list, serialized field by field.
        """
        payload: Dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "events":
                value = [
                    {
                        "name": event.name,
                        "day": event.day,
                        "peak_fraction": event.peak_fraction,
                        "ramp_days": event.ramp_days,
                        "decay_days": event.decay_days,
                    }
                    for event in value
                ]
            payload[spec.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ForkSimConfig":
        """Inverse of :meth:`to_dict` (round-trips exactly)."""
        kwargs = dict(payload)
        if "events" in kwargs:
            kwargs["events"] = [
                ExternalDraw(**event) for event in kwargs["events"]
            ]
        return cls(**kwargs)


@dataclass
class ForkSimResult:
    """Everything a figure needs, in one bundle."""

    config: ForkSimConfig
    eth_trace: ChainTrace
    etc_trace: ChainTrace
    fork_timestamp: int
    fork_number: int
    rates: ExchangeRateSeries
    #: Day index -> allocated hashrate per chain.
    daily_hashrate: Dict[str, List[float]]
    #: Set on partial runs (``until_day`` short of the horizon): resume
    #: state for the remaining days.  Deliberately excluded from
    #: :meth:`digest` — a chunk's digest fingerprints the *mined
    #: outcome*, and the final chunk of a resumed sequence must hash
    #: identically to a single-shot run (which carries no checkpoint).
    checkpoint: Optional[ForkSimCheckpoint] = None

    def traces(self) -> Dict[str, ChainTrace]:
        return {"ETH": self.eth_trace, "ETC": self.etc_trace}

    def digest(self) -> str:
        """Bit-exact fingerprint of the simulated outcome.

        Hashes every trace column, the miner label tables, the daily
        hashrate allocation, and the price series — two runs with the
        same config must produce the same digest whether they executed
        in this process or a worker subprocess.  The harness's cache
        correctness rests on this property.
        """
        hasher = hashlib.sha256()
        for trace in (self.eth_trace, self.etc_trace):
            hasher.update(trace.chain.encode("utf-8"))
            for column in (
                trace.numbers,
                trace.timestamps,
                trace.difficulties,
                trace.miner_ids,
                trace.tx_counts,
                trace.contract_tx_counts,
            ):
                hasher.update(column.tobytes())
            hasher.update("\x00".join(trace.miner_labels).encode("utf-8"))
        hasher.update(struct.pack("<qq", self.fork_timestamp, self.fork_number))
        for chain in sorted(self.daily_hashrate):
            values = self.daily_hashrate[chain]
            hasher.update(chain.encode("utf-8"))
            hasher.update(struct.pack(f"<{len(values)}d", *values))
        for asset in self.rates.assets():
            series = self.rates.series(asset)
            hasher.update(asset.encode("utf-8"))
            hasher.update(struct.pack(f"<{len(series)}d", *series))
        return hasher.hexdigest()

    def to_database(self, include_prefix: bool = True, columnar: bool = False):
        """Load block records into a fresh analysis database.

        ``columnar=False`` (the record path, retained as the oracle)
        streams through :meth:`ChainTrace.iter_block_records` so the bulk
        ingest never holds a second full copy of a million-block trace in
        memory.  ``columnar=True`` returns a
        :class:`~repro.data.columnar.ColumnarChainDatabase` that adopts
        the trace columns zero-copy — no boxing at all, byte-identical
        query results (pinned by ``tests/test_data_columnar.py``).
        """
        if columnar:
            from ..data.columnar import ColumnarChainDatabase

            columnar_db = ColumnarChainDatabase()
            for trace in (self.eth_trace, self.etc_trace):
                start = 0
                if not include_prefix:
                    # Block numbers are strictly increasing, so the
                    # record path's ``number > fork_number`` filter is a
                    # suffix starting at this bisection point.
                    start = bisect.bisect_right(
                        trace.numbers, self.fork_number
                    )
                columnar_db.adopt_trace(trace, start_index=start)
            return columnar_db
        database = ChainDatabase()
        for trace in (self.eth_trace, self.etc_trace):
            records = trace.iter_block_records()
            if not include_prefix:
                fork_number = self.fork_number
                records = (
                    record
                    for record in records
                    if record.number > fork_number
                )
            database.insert_blocks(records)
        return database


class ForkSimulation:
    """Runs the full scenario; see the module docstring for the phases.

    ``obs`` (a :class:`repro.obs.Observability`) is optional: when set,
    the run records per-phase wall-time spans plus deterministic
    per-chain metrics (block counts, final difficulty, daily-block
    histograms) into the bundle.  The simulated trajectory is identical
    with or without it.
    """

    def __init__(
        self,
        config: Optional[ForkSimConfig] = None,
        obs: Optional["Observability"] = None,
    ) -> None:
        self.config = config or ForkSimConfig()
        self.obs = obs

    def _span(self, label: str):
        if self.obs is None:
            return _NULL_CONTEXT
        return self.obs.span(label)

    def run(
        self,
        resume_from: Optional[ForkSimCheckpoint] = None,
        until_day: Optional[int] = None,
    ) -> ForkSimResult:
        """Simulate the scenario, optionally in resumable day chunks.

        ``until_day`` stops the day loop early (after mining days
        ``[0, until_day)``); the partial result then carries a
        :class:`ForkSimCheckpoint` for the remaining days.
        ``resume_from`` picks up from such a checkpoint instead of
        re-mining the prefix.  Chaining chunks produces a final result
        whose :meth:`ForkSimResult.digest` is byte-identical to a
        single-shot run: producer RNG state is restored exactly, and
        every other daily input (prices, supply, pool landscapes,
        transaction workloads) is a pure function of ``config.seed``
        recomputed identically on every (re)entry.
        """
        config = self.config
        if until_day is not None and until_day < 1:
            raise ValueError("until_day must be >= 1")
        stop = config.days if until_day is None else min(until_day, config.days)
        if resume_from is not None:
            if resume_from.config != config.to_dict():
                raise ValueError(
                    "checkpoint was taken under a different configuration"
                )
            if resume_from.day > stop:
                raise ValueError(
                    f"checkpoint already covers day {resume_from.day}; "
                    f"cannot resume to day {stop}"
                )

        # -- market inputs, precomputed day by day -------------------------
        with self._span("forksim.market"):
            eth_prices = eth_price_process(seed=config.seed + 1).series(
                config.days
            )
            etc_prices = etc_price_process(seed=config.seed + 2).series(
                config.days
            )
        rates = ExchangeRateSeries()
        rates.set_series("ETH", eth_prices)
        rates.set_series("ETC", etc_prices)

        supply = HashpowerSupply(
            base_hashrate=config.total_hashrate_at_fork,
            growth_rate_per_day=config.hashrate_growth_per_day,
            events=config.events,
        )

        allocator = LaggedAllocator(alpha=config.allocator_alpha)

        if resume_from is None:
            # -- phase 1: the shared prefix --------------------------------
            prefork_landscape = prefork_pool_landscape(seed=config.seed + 3)
            prefork_workload = eth_workload()
            equilibrium_difficulty = int(
                config.total_hashrate_at_fork * 14
            )
            prefork_trace = ChainTrace("pre-fork")
            start_ts = FORK_TIMESTAMP - config.prefork_days * SECONDS_PER_DAY
            producer = BlockProducer(
                config=PRE_FORK_CONFIG,
                trace=prefork_trace,
                start_number=DAO_FORK_BLOCK
                - self._expected_blocks(config.prefork_days),
                start_timestamp=start_ts,
                start_difficulty=equilibrium_difficulty,
                seed=config.seed + 4,
            )
            with self._span("forksim.prefix"):
                for day_offset in range(config.prefork_days):
                    day = day_offset - config.prefork_days  # negative: before fork
                    hashrate = supply.trend(day)
                    sampler = prefork_landscape.make_sampler(day)
                    tx_sampler = None
                    if config.with_transactions:
                        rng = random.Random(
                            f"{config.seed}:wl-pre:{day_offset}"
                        )
                        total = prefork_workload.daily_count(0, rng)
                        tx_sampler = prefork_workload.per_block_sampler(
                            0, total
                        )
                    producer.run_until(
                        start_ts + (day_offset + 1) * SECONDS_PER_DAY,
                        hashrate,
                        sampler,
                        tx_sampler,
                    )

            fork_number = producer.number
            fork_timestamp = producer.timestamp

            # -- phase 2: the split ----------------------------------------
            eth_trace = ChainTrace.forked_from(prefork_trace, "ETH")
            etc_trace = ChainTrace.forked_from(prefork_trace, "ETC")
            eth_producer = BlockProducer(
                ETH_CONFIG,
                eth_trace,
                producer.number,
                producer.timestamp,
                producer.difficulty,
                seed=config.seed + 5,
            )
            etc_producer = BlockProducer(
                ETC_CONFIG,
                etc_trace,
                producer.number,
                producer.timestamp,
                producer.difficulty,
                seed=config.seed + 6,
            )

            # Initial allocation: ETC holds only its day-zero loyalists;
            # everyone else — the pro-fork bloc and the entire profit bloc —
            # is on ETH.
            fork_supply = supply.available(0)
            allocator.reset(
                {
                    "ETH": fork_supply * (1 - config.etc_day0_fraction),
                    "ETC": fork_supply * config.etc_day0_fraction,
                }
            )
            producers = {"ETH": eth_producer, "ETC": etc_producer}
            daily_hashrate: Dict[str, List[float]] = {"ETH": [], "ETC": []}
            first_day = 0
        else:
            # -- resume: restore exactly what the day loop carries ---------
            fork_number = resume_from.fork_number
            fork_timestamp = resume_from.fork_timestamp
            eth_trace = resume_from.traces["ETH"].restore()
            etc_trace = resume_from.traces["ETC"].restore()
            producers = {}
            for chain, chain_config, trace in (
                ("ETH", ETH_CONFIG, eth_trace),
                ("ETC", ETC_CONFIG, etc_trace),
            ):
                state = resume_from.producers[chain]
                restored = BlockProducer(
                    chain_config,
                    trace,
                    state.number,
                    state.timestamp,
                    state.difficulty,
                )
                state.apply(restored)
                producers[chain] = restored
            allocator.reset(resume_from.allocation)
            daily_hashrate = {
                chain: list(values)
                for chain, values in resume_from.daily_hashrate.items()
            }
            first_day = resume_from.day

        landscapes: Dict[str, PoolLandscape] = {
            "ETH": eth_pool_landscape(seed=config.seed + 3),
            "ETC": etc_pool_landscape(seed=config.seed + 7),
        }
        workloads: Dict[str, TransactionWorkload] = {
            "ETH": eth_workload(),
            "ETC": etc_workload(),
        }

        # -- phase 3+4: the day loop ------------------------------------------
        with self._span("forksim.day_loop"):
            for day in range(first_day, stop):
                day_supply = supply.available(day)
                etc_loyal_today = config.etc_day0_fraction + (
                    config.etc_loyal_fraction - config.etc_day0_fraction
                ) * min(1.0, day / config.etc_loyal_ramp_days)
                floors = {
                    "ETH": config.eth_loyal_fraction * day_supply,
                    "ETC": etc_loyal_today * day_supply,
                }
                profit = max(0.0, day_supply - sum(floors.values()))
                if day < config.etc_listing_day:
                    # No market for ETC yet: profit hashpower cannot price
                    # it and stays on ETH.  Pin the allocation directly (and
                    # keep the allocator's state in sync for the handover).
                    allocation = {
                        "ETH": floors["ETH"] + profit,
                        "ETC": floors["ETC"],
                    }
                    allocator.reset(allocation)
                else:
                    prices = {"ETH": eth_prices[day], "ETC": etc_prices[day]}
                    allocation = allocator.step(profit, prices, floors)

                day_end = fork_timestamp + (day + 1) * SECONDS_PER_DAY
                for chain in ("ETH", "ETC"):
                    hashrate = allocation[chain]
                    daily_hashrate[chain].append(hashrate)
                    sampler = landscapes[chain].make_sampler(day)
                    tx_sampler = None
                    if config.with_transactions:
                        rng = random.Random(f"{config.seed}:wl:{chain}:{day}")
                        total = workloads[chain].daily_count(day, rng)
                        tx_sampler = workloads[chain].per_block_sampler(
                            day, total
                        )
                    producers[chain].run_until(
                        day_end, hashrate, sampler, tx_sampler
                    )

        checkpoint: Optional[ForkSimCheckpoint] = None
        if stop < config.days:
            checkpoint = ForkSimCheckpoint.capture(
                config=config,
                day=stop,
                fork_number=fork_number,
                fork_timestamp=fork_timestamp,
                producers=producers,
                traces={"ETH": eth_trace, "ETC": etc_trace},
                allocation=allocator.current,
                daily_hashrate=daily_hashrate,
            )

        result = ForkSimResult(
            config=config,
            eth_trace=eth_trace,
            etc_trace=etc_trace,
            fork_timestamp=fork_timestamp,
            fork_number=fork_number,
            rates=rates,
            daily_hashrate=daily_hashrate,
            checkpoint=checkpoint,
        )
        if self.obs is not None and self.obs.metrics is not None:
            self._record_metrics(result)
        return result

    def _record_metrics(self, result: ForkSimResult) -> None:
        """Deterministic per-chain accounting for the run's registry.

        Everything recorded here derives from the simulated traces
        (virtual time and seeded RNG only), so same-seed runs dump
        byte-identical registries.
        """
        metrics = self.obs.metrics
        metrics.counter("forksim.days").inc(self.config.days)
        for chain, trace in result.traces().items():
            key = chain.lower()
            # Block numbers are strictly increasing, so the post-fork
            # suffix starts at a bisection point — no full-trace scan.
            start = bisect.bisect_right(trace.numbers, result.fork_number)
            post_fork = range(start, len(trace.numbers))
            metrics.counter(f"forksim.{key}.blocks").inc(len(post_fork))
            if len(trace.difficulties):
                metrics.gauge(f"forksim.{key}.final_difficulty").set(
                    float(trace.difficulties[-1])
                )
            # Daily block production, bucketed: the collapse signature
            # (ETC's handful of blocks per day vs ETH's ~5900) in one
            # histogram per chain.
            hist = metrics.histogram(
                f"forksim.{key}.blocks_per_day",
                buckets=(10.0, 50.0, 100.0, 500.0, 1000.0, 2000.0,
                         4000.0, 6000.0, 8000.0),
            )
            per_day: Dict[int, int] = {}
            for i in post_fork:
                day = int(
                    (trace.timestamps[i] - result.fork_timestamp)
                    // SECONDS_PER_DAY
                )
                per_day[day] = per_day.get(day, 0) + 1
            for day in sorted(per_day):
                hist.observe(float(per_day[day]))

    @staticmethod
    def _expected_blocks(days: int) -> int:
        """Rough pre-fork block count for numbering the prefix."""
        return int(days * SECONDS_PER_DAY / 14)


def run_fork_sim(
    config: ForkSimConfig, obs: Optional["Observability"] = None
) -> ForkSimResult:
    """Pure entry point for cross-process dispatch.

    Every source of randomness below here is derived from
    ``config.seed`` (no module-level RNG state), so a worker subprocess
    running this function produces a bit-identical
    :meth:`ForkSimResult.digest` to an in-process call — the property
    the harness cache keys depend on.  ``obs`` records metrics/spans
    without perturbing the trajectory.
    """
    return ForkSimulation(config, obs=obs).run()
