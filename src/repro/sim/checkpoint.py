"""Mid-horizon simulator checkpoints: pause a fork run, resume bit-exact.

A 270-day reconstruction mines ~1.7M blocks per chain in one
:meth:`~repro.sim.engine.ForkSimulation.run` call.  The chunked sweep
harness (§10) can already split a *grid* of runs into resumable chunks,
but a single horizon was all-or-nothing: a preempted worker lost the
whole run.  :class:`ForkSimCheckpoint` closes that gap by snapshotting
everything the day loop carries across iterations:

* the chain tips (number, timestamp, wall clock, difficulty) and the
  **full Mersenne Twister state** of each producer's RNG,
* the trace columns mined so far (packed ``array('q')`` snapshots),
* the lagged allocator's current hashpower split,
* the per-day hashrate ledger.

Everything else the loop consumes — price processes, hashpower supply,
pool landscapes, transaction workloads — is a pure function of the
config seed and is recomputed identically on resume, so the checkpoint
stays small (the trace columns dominate: ~48 bytes/block).

The determinism contract, pinned by ``tests/test_sim_checkpoint.py``:
running days ``[0, k)``, checkpointing, and resuming through ``[k,
days)`` yields a :meth:`~repro.sim.engine.ForkSimResult.digest`
byte-identical to the single-shot run — through any number of chunk
boundaries, and through a JSON round-trip of the checkpoint itself.
"""

from __future__ import annotations

import base64
import hashlib
import json
import sys
from array import array
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .blockprod import BlockProducer, ChainTrace

__all__ = [
    "CHECKPOINT_VERSION",
    "ProducerState",
    "TraceSnapshot",
    "ForkSimCheckpoint",
]

#: Bump on any change to the serialized layout; ``from_dict`` rejects
#: mismatches instead of guessing.
CHECKPOINT_VERSION = 1

_COLUMNS = (
    "numbers",
    "timestamps",
    "difficulties",
    "miner_ids",
    "tx_counts",
    "contract_tx_counts",
)


def _pack_column(column: array) -> str:
    """Base64 of the column's int64 payload, normalized little-endian."""
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
        column = array("q", column)
        column.byteswap()
    return base64.b64encode(column.tobytes()).decode("ascii")


def _unpack_column(payload: str) -> array:
    column = array("q")
    column.frombytes(base64.b64decode(payload.encode("ascii")))
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
        column.byteswap()
    return column


@dataclass
class ProducerState:
    """One :class:`~repro.sim.blockprod.BlockProducer`'s resumable state.

    The ``(number, timestamp, clock, difficulty)`` tip plus the full RNG
    state (``random.Random.getstate()``: version, 625 Mersenne words,
    and the Gaussian carry).  The producer's ``_solo_memo`` is a lazily
    rebuilt cache keyed by list identity, so it is deliberately *not*
    part of the state — a resumed producer re-warms it on first use
    with identical results.
    """

    number: int
    timestamp: int
    clock: int
    difficulty: int
    rng_state: Tuple[int, Tuple[int, ...], Optional[float]]

    @classmethod
    def capture(cls, producer: BlockProducer) -> "ProducerState":
        return cls(
            number=producer.number,
            timestamp=producer.timestamp,
            clock=producer.clock,
            difficulty=producer.difficulty,
            rng_state=producer.rng.getstate(),
        )

    def apply(self, producer: BlockProducer) -> None:
        """Overwrite a freshly constructed producer's tip and RNG."""
        producer.number = self.number
        producer.timestamp = self.timestamp
        producer.clock = self.clock
        producer.difficulty = self.difficulty
        producer.rng.setstate(self.rng_state)

    def to_dict(self) -> Dict[str, Any]:
        version, words, gauss_next = self.rng_state
        return {
            "number": self.number,
            "timestamp": self.timestamp,
            "clock": self.clock,
            "difficulty": self.difficulty,
            "rng_state": [version, list(words), gauss_next],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ProducerState":
        version, words, gauss_next = payload["rng_state"]
        return cls(
            number=payload["number"],
            timestamp=payload["timestamp"],
            clock=payload["clock"],
            difficulty=payload["difficulty"],
            rng_state=(version, tuple(words), gauss_next),
        )


@dataclass
class TraceSnapshot:
    """Deep copy of one :class:`~repro.sim.blockprod.ChainTrace`.

    Columns are copied at capture *and* at restore so neither the
    checkpoint nor a resumed run can mutate the other's arrays — a
    checkpoint can seed any number of independent resumes.
    """

    chain: str
    columns: Dict[str, array]
    miner_labels: List[str]

    @classmethod
    def capture(cls, trace: ChainTrace) -> "TraceSnapshot":
        return cls(
            chain=trace.chain,
            columns={
                name: array("q", getattr(trace, name)) for name in _COLUMNS
            },
            miner_labels=list(trace.miner_labels),
        )

    def restore(self) -> ChainTrace:
        trace = ChainTrace(self.chain)
        for name in _COLUMNS:
            setattr(trace, name, array("q", self.columns[name]))
        trace.miner_labels = list(self.miner_labels)
        trace._label_index = {
            label: index for index, label in enumerate(trace.miner_labels)
        }
        return trace

    def to_dict(self) -> Dict[str, Any]:
        return {
            "chain": self.chain,
            "columns": {
                name: _pack_column(column)
                for name, column in self.columns.items()
            },
            "miner_labels": self.miner_labels,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceSnapshot":
        return cls(
            chain=payload["chain"],
            columns={
                name: _unpack_column(payload["columns"][name])
                for name in _COLUMNS
            },
            miner_labels=list(payload["miner_labels"]),
        )


@dataclass
class ForkSimCheckpoint:
    """Everything :meth:`ForkSimulation.run` needs to pick up at day ``day``.

    ``config`` is the owning :meth:`ForkSimConfig.to_dict` snapshot;
    resume refuses a checkpoint taken under a different configuration
    (same-seed purity of the recomputed inputs is what makes resumption
    exact, so a mismatched config would silently diverge).
    """

    config: Dict[str, Any]
    #: Next day index to simulate (days ``[0, day)`` are already mined).
    day: int
    fork_number: int
    fork_timestamp: int
    producers: Dict[str, ProducerState]
    traces: Dict[str, TraceSnapshot]
    #: The lagged allocator's current per-chain hashrate split.
    allocation: Dict[str, float]
    #: Per-chain daily hashrate mined so far (``day`` entries each).
    daily_hashrate: Dict[str, List[float]]
    version: int = CHECKPOINT_VERSION

    @classmethod
    def capture(
        cls,
        config: Any,
        day: int,
        fork_number: int,
        fork_timestamp: int,
        producers: Dict[str, BlockProducer],
        traces: Dict[str, ChainTrace],
        allocation: Dict[str, float],
        daily_hashrate: Dict[str, List[float]],
    ) -> "ForkSimCheckpoint":
        return cls(
            config=config.to_dict(),
            day=day,
            fork_number=fork_number,
            fork_timestamp=fork_timestamp,
            producers={
                chain: ProducerState.capture(producer)
                for chain, producer in producers.items()
            },
            traces={
                chain: TraceSnapshot.capture(trace)
                for chain, trace in traces.items()
            },
            allocation=dict(allocation),
            daily_hashrate={
                chain: list(values)
                for chain, values in daily_hashrate.items()
            },
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload (round-trips exactly through ``from_dict``).

        Floats survive via ``repr``-based JSON serialization (shortest
        round-trip), int64 columns via base64, RNG words as plain ints —
        nothing lossy anywhere, which the resume-digest tests depend on.
        """
        return {
            "version": self.version,
            "config": self.config,
            "day": self.day,
            "fork_number": self.fork_number,
            "fork_timestamp": self.fork_timestamp,
            "producers": {
                chain: state.to_dict()
                for chain, state in self.producers.items()
            },
            "traces": {
                chain: snapshot.to_dict()
                for chain, snapshot in self.traces.items()
            },
            "allocation": self.allocation,
            "daily_hashrate": self.daily_hashrate,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ForkSimCheckpoint":
        version = payload.get("version")
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version!r} "
                f"(expected {CHECKPOINT_VERSION})"
            )
        return cls(
            config=payload["config"],
            day=payload["day"],
            fork_number=payload["fork_number"],
            fork_timestamp=payload["fork_timestamp"],
            producers={
                chain: ProducerState.from_dict(state)
                for chain, state in payload["producers"].items()
            },
            traces={
                chain: TraceSnapshot.from_dict(snapshot)
                for chain, snapshot in payload["traces"].items()
            },
            allocation=dict(payload["allocation"]),
            daily_hashrate={
                chain: list(values)
                for chain, values in payload["daily_hashrate"].items()
            },
            version=version,
        )

    def digest(self) -> str:
        """Fingerprint of the serialized checkpoint (ledger audit trail)."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
