"""Figure generators: regenerate every figure's series from simulation.

Each ``figure_N`` function returns a :class:`FigureData` carrying the same
series the paper plots, a plain-text rendering (weekly/daily sampled rows,
for benchmark output), and CSV export.  The benchmarks call these — one
per figure — so ``pytest benchmarks/`` literally prints the paper's
figures as tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..data.csvio import write_series_csv
from ..data.windows import DAY, HOUR
from ..sim.clock import format_date, timestamp_to_day
from ..sim.engine import ForkSimResult
from .echoes import EchoDetector, EchoReport
from .market_analysis import hashes_per_usd_series, market_efficiency_report
from .metrics import (
    db_blocks_per_hour,
    db_contract_fraction_per_day,
    db_daily_mean_difficulty,
    db_hourly_mean_block_delta,
    db_transactions_per_day,
    trace_block_deltas,
    trace_blocks_per_hour,
    trace_contract_fraction_per_day,
    trace_daily_mean_difficulty,
    trace_transactions_per_day,
)
from .pools import db_top_n_share_series, trace_top_n_share_series
from .timeseries import TimeSeries

__all__ = [
    "FigureData",
    "figure_1",
    "figure_2",
    "figure_3",
    "figure_4",
    "figure_5",
    "figure_1_db",
    "figure_2_db",
    "figure_3_db",
    "figure_4_db",
    "figure_5_db",
    "figures_from_database",
]


@dataclass
class FigureData:
    """One regenerated figure: named series sharing a time axis."""

    figure_id: str
    title: str
    series: Dict[str, TimeSeries]
    notes: str = ""

    def render(self, sample_days: int = 7, max_rows: int = 60) -> str:
        """A text table sampled every ``sample_days`` days."""
        lines = [f"=== {self.figure_id}: {self.title} ==="]
        if self.notes:
            lines.append(self.notes)
        names = list(self.series)
        lines.append("date        " + "".join(f"{name:>24}" for name in names))

        # Collect the union of timestamps, sampled.
        all_ts = sorted(
            {t for series in self.series.values() for t, _ in series}
        )
        if not all_ts:
            return "\n".join(lines + ["(no data)"])
        step = max(1, sample_days)
        sampled: List[float] = []
        last_day = None
        for timestamp in all_ts:
            day = math.floor(timestamp_to_day(timestamp))
            if last_day is None or day >= last_day + step:
                sampled.append(timestamp)
                last_day = day
        sampled = sampled[:max_rows]

        lookup = {
            name: dict(zip(series.timestamps, series.values))
            for name, series in self.series.items()
        }
        for timestamp in sampled:
            row = [f"{format_date(timestamp)}"]
            for name in names:
                value = _nearest(lookup[name], timestamp)
                row.append(f"{value:>24.4g}" if value is not None else f"{'-':>24}")
            lines.append(" ".join(row))
        return "\n".join(lines)

    def write_csv(self, path) -> int:
        """Dense export on the union time axis (empty cells = nan)."""
        all_ts = sorted(
            {t for series in self.series.values() for t, _ in series}
        )
        columns: Dict[str, List[float]] = {}
        for name, series in self.series.items():
            lookup = dict(zip(series.timestamps, series.values))
            columns[name] = [
                lookup.get(t, float("nan")) for t in all_ts
            ]
        return write_series_csv(path, columns, index_name="timestamp", index=all_ts)


def _nearest(lookup: Dict[float, float], timestamp: float) -> Optional[float]:
    if timestamp in lookup:
        return lookup[timestamp]
    # fall back to the closest earlier point within a week
    best = None
    for t in lookup:
        if t <= timestamp and (best is None or t > best):
            best = t
    if best is not None and timestamp - best <= 7 * DAY:
        return lookup[best]
    return None


def figure_1(result: ForkSimResult, horizon_days: int = 30) -> FigureData:
    """Blocks/hour, block difficulty, inter-block delta — the fork month."""
    start = result.fork_timestamp - 12 * HOUR
    end = result.fork_timestamp + horizon_days * DAY
    series: Dict[str, TimeSeries] = {}
    for name, trace in result.traces().items():
        series[f"{name} blocks/hr"] = trace_blocks_per_hour(trace).clip_time(
            start, end
        )
        series[f"{name} difficulty"] = (
            trace_daily_mean_difficulty(trace).clip_time(start, end)
        )
        series[f"{name} delta(s)"] = (
            trace_block_deltas(trace).resample_mean(HOUR).clip_time(start, end)
        )
    return FigureData(
        figure_id="Figure 1",
        title="Blocks per hour, block difficulty, and time delta between "
        "blocks in the month following the hard fork",
        series=series,
        notes="(difficulty and delta shown as daily/hourly means)",
    )


def figure_2(result: ForkSimResult) -> FigureData:
    """Difficulty, transactions/day, contract fraction — nine months."""
    start = result.fork_timestamp
    series: Dict[str, TimeSeries] = {}
    for name, trace in result.traces().items():
        series[f"{name} difficulty"] = trace_daily_mean_difficulty(
            trace, start_ts=start
        )
        series[f"{name} tx/day"] = trace_transactions_per_day(
            trace, start_ts=start
        )
        series[f"{name} contract %"] = trace_contract_fraction_per_day(
            trace, start_ts=start
        ).map(lambda v: 100 * v)
    return FigureData(
        figure_id="Figure 2",
        title="Overall difficulty per block, transactions per day, and "
        "fraction of contract transactions in the nine months since the fork",
        series=series,
    )


def figure_3(result: ForkSimResult) -> FigureData:
    """Expected hashes per USD for both chains."""
    series: Dict[str, TimeSeries] = {}
    for name, trace in result.traces().items():
        daily_difficulty = trace_daily_mean_difficulty(
            trace, start_ts=result.fork_timestamp
        )
        series[f"{name} hashes/USD"] = hashes_per_usd_series(
            daily_difficulty, result.rates, name, result.fork_timestamp
        )
    report = market_efficiency_report(
        series["ETH hashes/USD"],
        series["ETC hashes/USD"],
        result.fork_timestamp,
    )
    return FigureData(
        figure_id="Figure 3",
        title="Expected payoff for mining in ETH and ETC (hashes per USD)",
        series=series,
        notes=(
            f"pearson correlation = {report.correlation:.4f}, "
            f"median relative gap = {report.median_relative_gap:.3f}"
        ),
    )


def figure_4(
    result: ForkSimResult, detector: EchoDetector
) -> FigureData:
    """Rebroadcast (echo) counts and percentages."""
    series: Dict[str, TimeSeries] = {}
    for chain, trace in result.traces().items():
        daily_totals = trace_transactions_per_day(
            trace, start_ts=result.fork_timestamp
        )
        report = EchoReport.build(detector, chain, daily_totals)
        series[f"into {chain}/day"] = report.echoes_per_day
        series[f"% of {chain} txs"] = report.percent_of_transactions
    series["same-time/day"] = detector.daily_counts(same_time=True)
    return FigureData(
        figure_id="Figure 4",
        title="Rebroadcast transactions ('echoes') per day and the "
        "percentage of all transactions they represent",
        series=series,
    )


# --------------------------------------------------------------------------
# database-backed figure generators
#
# Each ``figure_N_db`` regenerates figure N from an analysis database (the
# record-backed :class:`~repro.data.store.ChainDatabase` or its columnar
# twin) instead of the result's traces, reading only aggregated queries —
# no per-record iteration on the figure path.  On a full-prefix database
# (``result.to_database(include_prefix=True, ...)``) the output is
# byte-identical to the trace-backed generator above, on either backend;
# ``tests/test_data_columnar.py`` pins CSV bytes three ways.


def figure_1_db(
    result: ForkSimResult, db, horizon_days: int = 30
) -> FigureData:
    """Figure 1 regenerated from database aggregates."""
    start = result.fork_timestamp - 12 * HOUR
    end = result.fork_timestamp + horizon_days * DAY
    series: Dict[str, TimeSeries] = {}
    for name in ("ETH", "ETC"):
        series[f"{name} blocks/hr"] = db_blocks_per_hour(db, name).clip_time(
            start, end
        )
        series[f"{name} difficulty"] = (
            db_daily_mean_difficulty(db, name).clip_time(start, end)
        )
        series[f"{name} delta(s)"] = (
            db_hourly_mean_block_delta(db, name).clip_time(start, end)
        )
    return FigureData(
        figure_id="Figure 1",
        title="Blocks per hour, block difficulty, and time delta between "
        "blocks in the month following the hard fork",
        series=series,
        notes="(difficulty and delta shown as daily/hourly means)",
    )


def figure_2_db(result: ForkSimResult, db) -> FigureData:
    """Figure 2 regenerated from database aggregates."""
    start = result.fork_timestamp
    series: Dict[str, TimeSeries] = {}
    for name in ("ETH", "ETC"):
        series[f"{name} difficulty"] = db_daily_mean_difficulty(
            db, name, start_ts=start
        )
        series[f"{name} tx/day"] = db_transactions_per_day(
            db, name, start_ts=start
        )
        series[f"{name} contract %"] = db_contract_fraction_per_day(
            db, name, start_ts=start
        ).map(lambda v: 100 * v)
    return FigureData(
        figure_id="Figure 2",
        title="Overall difficulty per block, transactions per day, and "
        "fraction of contract transactions in the nine months since the fork",
        series=series,
    )


def figure_3_db(result: ForkSimResult, db) -> FigureData:
    """Figure 3 regenerated from database aggregates."""
    series: Dict[str, TimeSeries] = {}
    for name in ("ETH", "ETC"):
        daily_difficulty = db_daily_mean_difficulty(
            db, name, start_ts=result.fork_timestamp
        )
        series[f"{name} hashes/USD"] = hashes_per_usd_series(
            daily_difficulty, result.rates, name, result.fork_timestamp
        )
    report = market_efficiency_report(
        series["ETH hashes/USD"],
        series["ETC hashes/USD"],
        result.fork_timestamp,
    )
    return FigureData(
        figure_id="Figure 3",
        title="Expected payoff for mining in ETH and ETC (hashes per USD)",
        series=series,
        notes=(
            f"pearson correlation = {report.correlation:.4f}, "
            f"median relative gap = {report.median_relative_gap:.3f}"
        ),
    )


def figure_4_db(
    result: ForkSimResult, db, detector: EchoDetector
) -> FigureData:
    """Figure 4 with daily totals drawn from database aggregates."""
    series: Dict[str, TimeSeries] = {}
    for chain in ("ETH", "ETC"):
        daily_totals = db_transactions_per_day(
            db, chain, start_ts=result.fork_timestamp
        )
        report = EchoReport.build(detector, chain, daily_totals)
        series[f"into {chain}/day"] = report.echoes_per_day
        series[f"% of {chain} txs"] = report.percent_of_transactions
    series["same-time/day"] = detector.daily_counts(same_time=True)
    return FigureData(
        figure_id="Figure 4",
        title="Rebroadcast transactions ('echoes') per day and the "
        "percentage of all transactions they represent",
        series=series,
    )


def figure_5_db(result: ForkSimResult, db) -> FigureData:
    """Figure 5 regenerated from database aggregates."""
    series: Dict[str, TimeSeries] = {}
    for name in ("ETH", "ETC"):
        for top_n in (1, 3, 5):
            series[f"{name} top {top_n}"] = db_top_n_share_series(
                db, name, top_n, start_ts=result.fork_timestamp
            )
    return FigureData(
        figure_id="Figure 5",
        title="Percent of all mined blocks won by the top 1, 3, and 5 "
        "mining pools in ETH and ETC",
        series=series,
    )


def figures_from_database(
    result: ForkSimResult,
    db,
    detector: Optional[EchoDetector] = None,
    horizon_days: int = 30,
) -> Dict[int, FigureData]:
    """Every regenerable figure from one database pass.

    Figure 4 is included only when an echo ``detector`` is supplied (its
    echo stream does not live in the block table).  This is the bench
    gate's analysis workload: on the columnar backend the whole pass
    touches no :class:`~repro.data.records.BlockRecord` outside the
    small stabilization window.
    """
    figures = {
        1: figure_1_db(result, db, horizon_days=horizon_days),
        2: figure_2_db(result, db),
        3: figure_3_db(result, db),
        5: figure_5_db(result, db),
    }
    if detector is not None:
        figures[4] = figure_4_db(result, db, detector)
    return figures


def figure_5(result: ForkSimResult) -> FigureData:
    """Percent of blocks mined by the top 1/3/5 pools, daily."""
    series: Dict[str, TimeSeries] = {}
    for name, trace in result.traces().items():
        for top_n in (1, 3, 5):
            series[f"{name} top {top_n}"] = trace_top_n_share_series(
                trace, top_n, start_ts=result.fork_timestamp
            )
    return FigureData(
        figure_id="Figure 5",
        title="Percent of all mined blocks won by the top 1, 3, and 5 "
        "mining pools in ETH and ETC",
        series=series,
    )
