"""Echo intent classification — the paper's first "future work" item.

Section 4: "Our findings open up a number of interesting avenues for
future work, such as exploring the transactions to detect malicious
versus benign rebroadcasts."  This module implements that exploration.

A rebroadcast is *benign* when the original sender intended the transfer
to happen on both chains (they consider their pre-fork balance one pot of
money); it is *malicious* (an attack, in the paper's replay-attack sense)
when a third party — typically the recipient — re-broadcasts to collect a
second time against the sender's intent.  On-chain data never shows intent
directly, so the classifier scores observable proxies:

* **lag** — intentional double-spends are broadcast together (seconds to
  minutes apart); scavenged replays wait for the victim's transaction to
  appear, be confirmed, and be scraped (hours to days);
* **repeat victimization** — a sender echoed once may be unlucky; a sender
  whose *every* transaction echoes is either intentionally mirroring or
  being systematically farmed, and systematic farming correlates with
  long lags;
* **post-protection persistence** — an echo of a transaction sent *after*
  cheap protection existed (EIP-155 on the destination chain) leans
  malicious: a benign dual-intent user would adopt the safe dual-send
  pattern instead.

Scores combine into :class:`EchoVerdict` labels with a confidence value.
The classifier is validated against the replay workload's ground truth
(which knows which echoes were intentional) in the test suite and the
``abl-intent`` benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..data.windows import DAY, HOUR
from .echoes import Echo

__all__ = ["EchoVerdict", "IntentClassifier", "ClassificationReport"]


@dataclass(frozen=True)
class EchoVerdict:
    """One echo, labeled."""

    echo: Echo
    label: str  # "benign" | "malicious"
    #: P(malicious) in [0, 1]; the label thresholds this at 0.5.
    malicious_score: float


@dataclass
class ClassificationReport:
    """Aggregate classification outcome (and, in tests, its accuracy)."""

    verdicts: List[EchoVerdict]

    @property
    def malicious(self) -> List[EchoVerdict]:
        return [v for v in self.verdicts if v.label == "malicious"]

    @property
    def benign(self) -> List[EchoVerdict]:
        return [v for v in self.verdicts if v.label == "benign"]

    def malicious_fraction(self) -> float:
        if not self.verdicts:
            return 0.0
        return len(self.malicious) / len(self.verdicts)

    def daily_malicious_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for verdict in self.malicious:
            index = verdict.echo.echo_timestamp // DAY
            counts[index] = counts.get(index, 0) + 1
        return counts


class IntentClassifier:
    """Score echoes as benign (intentional) vs malicious (scavenged).

    Parameters are interpretable knobs, not fitted weights:

    ``benign_lag_seconds``
        Lags at or below this are strong benign evidence (broadcast
        together); the benign likelihood decays exponentially past it
        with scale ``lag_decay_seconds``.
    ``protection_day``
        Absolute day timestamp after which the destination chain offered
        replay protection; echoes of later transactions lean malicious.
    """

    def __init__(
        self,
        benign_lag_seconds: float = 15 * 60.0,
        lag_decay_seconds: float = 1 * HOUR,
        protection_timestamp: Optional[int] = None,
        sender_of: Optional[Dict[bytes, bytes]] = None,
    ) -> None:
        if benign_lag_seconds <= 0 or lag_decay_seconds <= 0:
            raise ValueError("lag parameters must be positive")
        self.benign_lag_seconds = benign_lag_seconds
        self.lag_decay_seconds = lag_decay_seconds
        self.protection_timestamp = protection_timestamp
        #: Optional tx hash -> sender mapping enabling the repeat-victim
        #: feature (supplied from TxRecords when available).
        self.sender_of = sender_of or {}

    # -- feature scores (each returns P-ish evidence of malice in [0,1]) --

    def _lag_score(self, echo: Echo) -> float:
        lag = max(0.0, float(echo.lag_seconds))
        if lag <= self.benign_lag_seconds:
            return 0.05
        # Evidence of malice saturates as the lag grows past the decay
        # scale: nobody waits a day to execute their own dual intent.
        excess = lag - self.benign_lag_seconds
        return 1.0 - 0.95 * math.exp(-excess / self.lag_decay_seconds)

    def _protection_score(self, echo: Echo) -> float:
        if self.protection_timestamp is None:
            return 0.5  # uninformative
        if echo.origin_timestamp >= self.protection_timestamp:
            return 0.8
        return 0.5

    def _repeat_score(self, echo: Echo, echo_counts: Dict[bytes, int]) -> float:
        sender = self.sender_of.get(echo.tx_hash)
        if sender is None:
            return 0.5
        repeats = echo_counts.get(sender, 1)
        if repeats >= 5:
            return 0.75  # systematically farmed (or mirrored; lag decides)
        return 0.5

    # -- classification -----------------------------------------------------

    def score(self, echo: Echo, echo_counts: Optional[Dict[bytes, int]] = None) -> float:
        """Combined P(malicious), a log-odds average of the features."""
        features = [
            self._lag_score(echo),
            self._protection_score(echo),
            self._repeat_score(echo, echo_counts or {}),
        ]
        logit = sum(_logit(p) for p in features)
        return _sigmoid(logit)

    def classify(self, echoes: Iterable[Echo]) -> ClassificationReport:
        echoes = list(echoes)
        echo_counts: Dict[bytes, int] = {}
        for echo in echoes:
            sender = self.sender_of.get(echo.tx_hash)
            if sender is not None:
                echo_counts[sender] = echo_counts.get(sender, 0) + 1

        verdicts = []
        for echo in echoes:
            score = self.score(echo, echo_counts)
            verdicts.append(
                EchoVerdict(
                    echo=echo,
                    label="malicious" if score >= 0.5 else "benign",
                    malicious_score=score,
                )
            )
        return ClassificationReport(verdicts=verdicts)


def _logit(p: float) -> float:
    p = min(max(p, 1e-6), 1 - 1e-6)
    return math.log(p / (1 - p))


def _sigmoid(x: float) -> float:
    if x >= 0:
        z = math.exp(-x)
        return 1 / (1 + z)
    z = math.exp(x)
    return z / (1 + z)
