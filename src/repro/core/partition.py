"""Partition detection and post-fork stabilization analysis.

Quantifies the paper's Observations 1 and 2:

1. "ETC experienced a sudden loss of roughly 90% of the nodes in its
   network immediately after the fork" — :func:`node_loss_fraction` over
   P2P censuses, and :func:`hashpower_loss_fraction` over chain data.
2. "It took two days for ETC to resume producing blocks at the target
   rate" — :func:`stabilization_time`; "the average time delta per block
   spiked to over 1,200 seconds" — :func:`peak_block_delta`.

Plus the structural primitive: :func:`find_fork_point` locates where two
chains diverge, from data alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..chain.chainstore import Blockchain
from ..data.windows import HOUR
from ..net.network import NetworkCensus
from ..sim.blockprod import ChainTrace

__all__ = [
    "find_fork_point",
    "find_trace_fork_point",
    "node_loss_fraction",
    "hashpower_loss_fraction",
    "stabilization_time",
    "stabilization_time_db",
    "peak_block_delta",
    "StabilizationReport",
]


def find_fork_point(chain_a: Blockchain, chain_b: Blockchain) -> Optional[int]:
    """Height of the last block canonical on both chains (None if even the
    genesis differs)."""
    ancestor = chain_a.common_ancestor(chain_b)
    return ancestor.number if ancestor is not None else None


def find_trace_fork_point(trace_a: ChainTrace, trace_b: ChainTrace) -> Optional[int]:
    """Fork height from columnar traces.

    Traces carry no hashes, so divergence is detected where the
    (timestamp, miner) sequences stop agreeing — the data-level shadow of
    the hash comparison, and exact for traces built by
    :meth:`ChainTrace.forked_from`.
    """
    limit = min(len(trace_a), len(trace_b))
    for index in range(limit):
        if (
            trace_a.timestamps[index] != trace_b.timestamps[index]
            or trace_a.miner_ids[index] != trace_b.miner_ids[index]
            or trace_a.numbers[index] != trace_b.numbers[index]
        ):
            return trace_a.numbers[index] - 1 if index > 0 else None
    if limit == 0:
        return None
    return trace_a.numbers[limit - 1]


def node_loss_fraction(
    before: NetworkCensus, after: NetworkCensus, network_name: str
) -> float:
    """Fraction of a network's nodes lost between two censuses.

    ``before`` is typically taken just under the fork height (everyone
    still in one group — compare against the total) and ``after`` shortly
    past it.
    """
    baseline = before.count(network_name)
    if baseline == 0:
        # Pre-fork, the group may not exist yet: everyone is "pre-fork".
        baseline = sum(len(names) for names in before.members.values())
    if baseline == 0:
        raise ValueError("empty baseline census")
    remaining = after.count(network_name)
    return 1.0 - remaining / baseline


def hashpower_loss_fraction(
    trace: ChainTrace,
    fork_timestamp: int,
    window: int = 6 * HOUR,
) -> float:
    """Hashpower lost at the fork, inferred from block production.

    Compares the block rate in the ``window`` before the fork with the
    *effective hashrate* just after (block rate × difficulty, which is
    hashrate by the Poisson identity, so the unchanged difficulty right
    after the fork doesn't bias the estimate).
    """
    before = trace.slice_by_time(fork_timestamp - window, fork_timestamp)
    after = trace.slice_by_time(fork_timestamp, fork_timestamp + window)
    if len(before) == 0:
        raise ValueError("no pre-fork blocks in window")
    hashrate_before = (
        sum(trace.difficulties[i] for i in before) / window
    )
    hashrate_after = (
        sum(trace.difficulties[i] for i in after) / window
    )
    return 1.0 - hashrate_after / hashrate_before


@dataclass(frozen=True)
class StabilizationReport:
    """How the difficulty mechanism digested the partition."""

    #: Seconds from the fork until block production sustainably returned
    #: to the target rate (None = never within the data).
    stabilization_seconds: Optional[float]
    #: Largest inter-block gap observed during recovery.
    peak_delta_seconds: float
    #: Difficulty at the fork and at the recovery point.
    difficulty_at_fork: int
    difficulty_at_recovery: Optional[int]

    @property
    def stabilization_days(self) -> Optional[float]:
        if self.stabilization_seconds is None:
            return None
        return self.stabilization_seconds / 86_400


def stabilization_time(
    trace: ChainTrace,
    fork_timestamp: int,
    target_block_time: float = 14.0,
    rate_tolerance: float = 0.5,
    sustain_hours: int = 6,
    horizon_days: int = 14,
) -> StabilizationReport:
    """Observation 2's statistic, computed the way the paper eyeballs it.

    Finds the first hour after the fork where the hourly block count
    reaches ``(1 - rate_tolerance)`` of the target rate and *stays* there
    for ``sustain_hours`` consecutive hours.
    """
    target_per_hour = HOUR / target_block_time
    threshold = target_per_hour * (1.0 - rate_tolerance)

    indices = trace.slice_by_time(
        fork_timestamp, fork_timestamp + horizon_days * 24 * HOUR
    )
    if len(indices) == 0:
        raise ValueError("no post-fork blocks to analyze")

    hourly: dict = {}
    peak_delta = 0.0
    previous_ts = None
    difficulty_at_fork = trace.difficulties[indices[0]]
    for i in indices:
        timestamp = trace.timestamps[i]
        hour = (timestamp - fork_timestamp) // HOUR
        hourly[hour] = hourly.get(hour, 0) + 1
        if previous_ts is not None:
            peak_delta = max(peak_delta, timestamp - previous_ts)
        previous_ts = timestamp

    last_hour = max(hourly)
    run = 0
    recovery_hour: Optional[int] = None
    for hour in range(0, int(last_hour) + 1):
        if hourly.get(hour, 0) >= threshold:
            run += 1
            if run >= sustain_hours:
                recovery_hour = hour - sustain_hours + 1
                break
        else:
            run = 0

    difficulty_at_recovery = None
    stabilization_seconds = None
    if recovery_hour is not None:
        stabilization_seconds = recovery_hour * HOUR
        recovery_ts = fork_timestamp + stabilization_seconds
        recovered = trace.slice_by_time(recovery_ts, recovery_ts + HOUR)
        if len(recovered) > 0:
            difficulty_at_recovery = trace.difficulties[recovered[0]]

    return StabilizationReport(
        stabilization_seconds=stabilization_seconds,
        peak_delta_seconds=peak_delta,
        difficulty_at_fork=difficulty_at_fork,
        difficulty_at_recovery=difficulty_at_recovery,
    )


def stabilization_time_db(
    db,
    chain: str,
    fork_timestamp: int,
    target_block_time: float = 14.0,
    rate_tolerance: float = 0.5,
    sustain_hours: int = 6,
    horizon_days: int = 14,
) -> StabilizationReport:
    """:func:`stabilization_time` over an analysis database.

    Identical statistic computed from ``blocks_between`` windows instead
    of trace slices — byte-identical on a full-prefix database from
    either backend (the window is small, so the boxed records are cheap
    even on the columnar side).
    """
    target_per_hour = HOUR / target_block_time
    threshold = target_per_hour * (1.0 - rate_tolerance)

    records = db.blocks_between(
        chain, fork_timestamp, fork_timestamp + horizon_days * 24 * HOUR
    )
    if not records:
        raise ValueError("no post-fork blocks to analyze")

    hourly: dict = {}
    peak_delta = 0.0
    previous_ts = None
    difficulty_at_fork = records[0].difficulty
    for record in records:
        timestamp = record.timestamp
        hour = (timestamp - fork_timestamp) // HOUR
        hourly[hour] = hourly.get(hour, 0) + 1
        if previous_ts is not None:
            peak_delta = max(peak_delta, timestamp - previous_ts)
        previous_ts = timestamp

    last_hour = max(hourly)
    run = 0
    recovery_hour: Optional[int] = None
    for hour in range(0, int(last_hour) + 1):
        if hourly.get(hour, 0) >= threshold:
            run += 1
            if run >= sustain_hours:
                recovery_hour = hour - sustain_hours + 1
                break
        else:
            run = 0

    difficulty_at_recovery = None
    stabilization_seconds = None
    if recovery_hour is not None:
        stabilization_seconds = recovery_hour * HOUR
        recovery_ts = fork_timestamp + stabilization_seconds
        recovered = db.blocks_between(chain, recovery_ts, recovery_ts + HOUR)
        if recovered:
            difficulty_at_recovery = recovered[0].difficulty

    return StabilizationReport(
        stabilization_seconds=stabilization_seconds,
        peak_delta_seconds=peak_delta,
        difficulty_at_fork=difficulty_at_fork,
        difficulty_at_recovery=difficulty_at_recovery,
    )


def peak_block_delta(
    trace: ChainTrace, start_ts: int, end_ts: int
) -> float:
    """Largest inter-block gap in a window (the 1,200+ second spike)."""
    indices = trace.slice_by_time(start_ts, end_ts)
    peak = 0.0
    previous = None
    for i in indices:
        timestamp = trace.timestamps[i]
        if previous is not None:
            peak = max(peak, timestamp - previous)
        previous = timestamp
    return peak
