"""A small time-series type shared by all the analyses.

Each figure in the paper is one or more (time, value) series; this module
gives them a common representation with the few operations the analyses
need: windowed resampling, alignment, Pearson correlation (Figure 3's
"strong correlation" claim), and ratio series (the 2.5:1 → 5:1 transaction
ratio claim).  Deliberately minimal — not a pandas replacement.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

__all__ = ["TimeSeries", "pearson", "align"]


class TimeSeries:
    """An ordered sequence of (timestamp, value) pairs."""

    def __init__(
        self,
        timestamps: Sequence[float],
        values: Sequence[float],
        name: str = "",
    ) -> None:
        if len(timestamps) != len(values):
            raise ValueError("timestamps and values must align")
        pairs = sorted(zip(timestamps, values))
        self.timestamps: List[float] = [t for t, _ in pairs]
        self.values: List[float] = [v for _, v in pairs]
        self.name = name

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[Tuple[float, float]], name: str = ""
    ) -> "TimeSeries":
        pairs = list(pairs)
        return cls([t for t, _ in pairs], [v for _, v in pairs], name)

    @classmethod
    def from_window_dict(
        cls, windows: Dict[int, float], width: int, name: str = ""
    ) -> "TimeSeries":
        """Build from a window-index dict (see :mod:`repro.data.windows`);
        timestamps are window starts."""
        indices = sorted(windows)
        return cls(
            [index * width for index in indices],
            [windows[index] for index in indices],
            name,
        )

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(zip(self.timestamps, self.values))

    def is_empty(self) -> bool:
        return not self.values

    # -- arithmetic -----------------------------------------------------------

    def map(self, fn: Callable[[float], float], name: str = "") -> "TimeSeries":
        return TimeSeries(
            self.timestamps, [fn(v) for v in self.values], name or self.name
        )

    def ratio_to(self, other: "TimeSeries", name: str = "") -> "TimeSeries":
        """Pointwise self/other on the shared timestamps.

        A zero denominator yields NaN — a *gap*, not a value.  The old
        behaviour returned ``inf`` (and ``0/0`` became ``inf`` too),
        which silently poisoned every downstream mean: one zero-volume
        window turned a whole resampled figure series infinite.  NaN
        gaps are skipped by :meth:`resample_mean` and :meth:`mean`.
        """
        mine, theirs = align(self, other)
        values = [
            a / b if b else float("nan")
            for a, b in zip(mine.values, theirs.values)
        ]
        return TimeSeries(mine.timestamps, values, name)

    # -- resampling ----------------------------------------------------------

    def resample_mean(self, width: int) -> "TimeSeries":
        """Mean value per window of ``width`` seconds.

        NaN values mark gaps and are excluded from their window's mean;
        a window containing only NaN is dropped entirely (no timestamp),
        so a resampled series never manufactures values out of gaps.
        """
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for timestamp, value in self:
            if math.isnan(value):
                continue
            index = int(timestamp // width)
            sums[index] = sums.get(index, 0.0) + value
            counts[index] = counts.get(index, 0) + 1
        indices = sorted(sums)
        return TimeSeries(
            [index * width for index in indices],
            [sums[index] / counts[index] for index in indices],
            self.name,
        )

    def clip_time(self, start: float, end: float) -> "TimeSeries":
        pairs = [(t, v) for t, v in self if start <= t < end]
        return TimeSeries.from_pairs(pairs, self.name)

    # -- summaries -------------------------------------------------------------

    def mean(self) -> float:
        """Arithmetic mean over the finite values (NaN gaps skipped)."""
        finite = [v for v in self.values if not math.isnan(v)]
        if not finite:
            raise ValueError("series has no non-NaN values to average")
        return sum(finite) / len(finite)

    def max(self) -> float:
        return max(self.values)

    def min(self) -> float:
        return min(self.values)

    def argmax(self) -> float:
        """Timestamp of the maximum value."""
        best = max(range(len(self.values)), key=lambda i: self.values[i])
        return self.timestamps[best]


def align(a: TimeSeries, b: TimeSeries) -> Tuple[TimeSeries, TimeSeries]:
    """Restrict both series to their common timestamps."""
    common = sorted(set(a.timestamps) & set(b.timestamps))
    index_a = dict(zip(a.timestamps, a.values))
    index_b = dict(zip(b.timestamps, b.values))
    return (
        TimeSeries(common, [index_a[t] for t in common], a.name),
        TimeSeries(common, [index_b[t] for t in common], b.name),
    )


def pearson(a: TimeSeries, b: TimeSeries) -> float:
    """Pearson correlation over the shared timestamps.

    This is the statistic behind the paper's Figure 3 reading: "there is a
    very strong correlation between the expected number of hashes per USD
    in ETH and ETC; in fact, the curves are almost identical."
    """
    mine, theirs = align(a, b)
    n = len(mine)
    if n < 2:
        raise ValueError("need at least two shared points")
    mean_a = mine.mean()
    mean_b = theirs.mean()
    cov = sum(
        (x - mean_a) * (y - mean_b) for x, y in zip(mine.values, theirs.values)
    )
    var_a = sum((x - mean_a) ** 2 for x in mine.values)
    var_b = sum((y - mean_b) ** 2 for y in theirs.values)
    if var_a == 0 or var_b == 0:
        raise ValueError("constant series have undefined correlation")
    return cov / math.sqrt(var_a * var_b)
