"""Cross-chain echo (rebroadcast / replay) detection — Figure 4.

The paper's definition (Section 3.3): "We say that there was an 'echo' in
ETH if we first saw that same transaction appear in ETC (and vice versa)."
Plus a third class for transactions appearing in both networks within the
same observation window ("Same time" in Figure 4), whose direction cannot
be attributed.

:class:`EchoDetector` is a streaming one-pass join over time-ordered
transaction sightings from any number of chains.  For each transaction
hash it remembers the first sighting; a later sighting on a *different*
chain is classified as an echo into that chain (or "same time" if the two
sightings fall within ``same_time_window`` seconds).  Memory is bounded by
the number of distinct transaction hashes seen, and the stream never needs
to be materialized twice — unlike the naive two-pass hash join kept in
:mod:`repro.baselines.naive_echo` as the ablation comparator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..data.records import TxRecord
from ..data.windows import DAY
from .timeseries import TimeSeries

__all__ = ["Echo", "EchoDetector", "EchoReport", "SAME_TIME_WINDOW"]

#: Two sightings closer than this are direction-ambiguous ("Same time").
#: Fifteen minutes: close enough that block-timestamp ordering cannot
#: establish which network saw the transaction first — the signature of
#: a user intentionally broadcasting on both chains at once, which is the
#: small residual class Figure 4 plots as "Same time".
SAME_TIME_WINDOW = 900


@dataclass(frozen=True)
class Echo:
    """One detected rebroadcast."""

    tx_hash: bytes
    #: Chain where the transaction appeared first.
    origin_chain: str
    #: Chain it was rebroadcast into (where the echo materialized).
    echo_chain: str
    origin_timestamp: int
    echo_timestamp: int
    #: True when the gap is inside the same-time window.
    same_time: bool

    @property
    def lag_seconds(self) -> int:
        return self.echo_timestamp - self.origin_timestamp


class EchoDetector:
    """Streaming cross-chain duplicate-transaction detector."""

    def __init__(self, same_time_window: int = SAME_TIME_WINDOW) -> None:
        if same_time_window < 0:
            raise ValueError("window must be non-negative")
        self.same_time_window = same_time_window
        #: tx hash -> (first chain, first timestamp)
        self._first_seen: Dict[bytes, Tuple[str, int]] = {}
        #: (hash, chain) pairs already reported, to dedup repeat sightings.
        self._reported: set = set()
        self.echoes: List[Echo] = []
        self.sightings = 0

    def observe(self, chain: str, tx_hash: bytes, timestamp: int) -> Optional[Echo]:
        """Feed one sighting; returns an :class:`Echo` if one was detected.

        Sightings should arrive in non-decreasing timestamp order for
        direction attribution to match the paper's first-seen rule; the
        detector itself tolerates disorder (attribution then follows feed
        order, as it would for a live observer).
        """
        self.sightings += 1
        key = bytes(tx_hash)
        first = self._first_seen.get(key)
        if first is None:
            self._first_seen[key] = (chain, timestamp)
            return None
        first_chain, first_ts = first
        if first_chain == chain:
            return None  # same-chain duplicate (reorg resurrection); not an echo
        report_key = (key, chain)
        if report_key in self._reported:
            return None
        self._reported.add(report_key)
        echo = Echo(
            tx_hash=key,
            origin_chain=first_chain,
            echo_chain=chain,
            origin_timestamp=first_ts,
            echo_timestamp=timestamp,
            same_time=abs(timestamp - first_ts) <= self.same_time_window,
        )
        self.echoes.append(echo)
        return echo

    def observe_records(self, records: Iterable[TxRecord]) -> int:
        """Feed a time-ordered record stream; returns echoes found."""
        found = 0
        for record in records:
            if self.observe(record.chain, record.tx_hash, record.timestamp) is not None:
                found += 1
        return found

    # -- aggregation (the Figure 4 panels) ---------------------------------

    def echoes_into(self, chain: str, include_same_time: bool = True) -> List[Echo]:
        return [
            echo
            for echo in self.echoes
            if echo.echo_chain == chain
            and (include_same_time or not echo.same_time)
        ]

    def daily_counts(self, chain: Optional[str] = None, same_time: Optional[bool] = None) -> TimeSeries:
        """Echoes per day (Figure 4, bottom).

        ``chain`` filters by destination; ``same_time`` selects only the
        ambiguous (True) or attributed (False) class.
        """
        counts: Dict[int, int] = {}
        for echo in self.echoes:
            if chain is not None and echo.echo_chain != chain:
                continue
            if same_time is not None and echo.same_time != same_time:
                continue
            index = echo.echo_timestamp // DAY
            counts[index] = counts.get(index, 0) + 1
        label = chain or "all"
        return TimeSeries.from_window_dict(
            {k: float(v) for k, v in counts.items()},
            DAY,
            name=f"echoes/day into {label}",
        )

    def direction_totals(self) -> Dict[Tuple[str, str], int]:
        """(origin, destination) -> echo count.

        The paper's finding: "Most of the rebroadcasts were originally
        broadcast in ETH and then rebroadcast into ETC" — i.e. the
        ("ETH", "ETC") entry dominates.
        """
        totals: Dict[Tuple[str, str], int] = {}
        for echo in self.echoes:
            key = (echo.origin_chain, echo.echo_chain)
            totals[key] = totals.get(key, 0) + 1
        return totals


@dataclass
class EchoReport:
    """Figure 4's two panels for one destination chain."""

    chain: str
    echoes_per_day: TimeSeries
    percent_of_transactions: TimeSeries

    @classmethod
    def build(
        cls,
        detector: EchoDetector,
        chain: str,
        daily_tx_totals: TimeSeries,
    ) -> "EchoReport":
        """Combine echo counts with the chain's total daily transactions.

        ``daily_tx_totals`` comes from the trace/database (it includes the
        vast majority of transactions that were never echoed, so the
        denominator is the real daily volume).
        """
        per_day = detector.daily_counts(chain=chain)
        totals_by_index = {
            int(t // DAY): v for t, v in daily_tx_totals
        }
        timestamps = []
        percents = []
        for timestamp, count in per_day:
            index = int(timestamp // DAY)
            total = totals_by_index.get(index, 0.0)
            if total > 0:
                timestamps.append(timestamp)
                percents.append(100.0 * count / total)
        return cls(
            chain=chain,
            echoes_per_day=per_day,
            percent_of_transactions=TimeSeries(
                timestamps, percents, name=f"% {chain} txs that are echoes"
            ),
        )
