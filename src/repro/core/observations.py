"""The paper's six headline observations, as checkable predicates.

Section 1 enumerates six findings; each function here evaluates one of
them against simulation outputs and returns an :class:`Observation` with
the measured quantities and a pass/fail verdict.  The benchmark harness
prints these verdicts, and the integration tests assert them — so "the
reproduction reproduces the paper" is itself a tested property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..data.windows import DAY
from ..scenarios.partition_event import PartitionResult
from ..sim.engine import ForkSimResult
from .echoes import EchoDetector
from .market_analysis import hashes_per_usd_series, market_efficiency_report
from .metrics import db_daily_mean_difficulty, trace_daily_mean_difficulty
from .partition import stabilization_time, stabilization_time_db
from .pools import convergence_day, db_top_n_share_series, trace_top_n_share_series

__all__ = [
    "Observation",
    "evaluate_all",
    "evaluate_all_db",
    *(f"observation_{i}" for i in range(1, 7)),
    "observation_2_db",
    "observation_3_db",
    "observation_4_db",
    "observation_6_db",
]


@dataclass
class Observation:
    number: int
    claim: str
    holds: bool
    details: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        verdict = "REPRODUCED" if self.holds else "NOT REPRODUCED"
        detail = ", ".join(f"{k}={v:.3g}" for k, v in self.details.items())
        return f"Observation {self.number} [{verdict}]: {self.claim}\n    {detail}"


def observation_1(partition: PartitionResult) -> Observation:
    """Forks can lead to drastic, rapid partitions (~90% node loss)."""
    loss = partition.node_loss_fraction()
    return Observation(
        number=1,
        claim="ETC suddenly lost roughly 90% of the nodes in its network",
        holds=0.75 <= loss <= 0.99,
        details={
            "node_loss_fraction": loss,
            "incompatible_disconnects": float(
                partition.incompatible_disconnects
            ),
        },
    )


def observation_2(result: ForkSimResult) -> Observation:
    """Stabilization takes days; an influx returns over two weeks."""
    report = stabilization_time(result.etc_trace, result.fork_timestamp)
    days = report.stabilization_days or float("inf")
    # The return influx: ETC difficulty at day 14 well above its
    # post-recovery trough.
    etc_daily = trace_daily_mean_difficulty(
        result.etc_trace, start_ts=result.fork_timestamp
    )
    trough = min(etc_daily.values[:7]) if len(etc_daily) >= 7 else 0.0
    day14 = (
        etc_daily.values[14] if len(etc_daily) > 14 else float("nan")
    )
    influx = day14 / trough if trough else float("nan")
    return Observation(
        number=2,
        claim="ETC took ~2 days to resume the target block rate; miners "
        "flowed back over the following two weeks",
        holds=(1.0 <= days <= 4.0) and influx > 2.0,
        details={
            "stabilization_days": days,
            "peak_delta_seconds": report.peak_delta_seconds,
            "difficulty_influx_ratio_day14": influx,
        },
    )


def observation_3(result: ForkSimResult) -> Observation:
    """The fork persists; ETH's mining power grows, ETC's holds steady."""
    horizon = result.config.days
    eth = trace_daily_mean_difficulty(
        result.eth_trace, start_ts=result.fork_timestamp + 14 * DAY
    )
    etc = trace_daily_mean_difficulty(
        result.etc_trace, start_ts=result.fork_timestamp + 14 * DAY
    )
    if not eth.values or not etc.values:
        # Horizon too short to even reach the comparison window.
        return Observation(
            number=3,
            claim="ETH difficulty grew tremendously while ETC's held roughly "
            "constant; both chains persist",
            holds=False,
            details={"horizon_days": float(horizon)},
        )
    eth_growth = eth.values[-1] / eth.values[0]
    etc_growth = etc.values[-1] / etc.values[0]
    ratio_end = eth.values[-1] / etc.values[-1]
    return Observation(
        number=3,
        claim="ETH difficulty grew tremendously while ETC's held roughly "
        "constant; both chains persist",
        holds=eth_growth > 2.0 and etc_growth < eth_growth / 1.5 and ratio_end > 5,
        details={
            "eth_difficulty_growth": eth_growth,
            "etc_difficulty_growth": etc_growth,
            "difficulty_ratio_at_end": ratio_end,
            "horizon_days": float(horizon),
        },
    )


def observation_4(result: ForkSimResult) -> Observation:
    """The market operates efficiently: mining payoff is near-identical."""
    eth_series = hashes_per_usd_series(
        trace_daily_mean_difficulty(result.eth_trace, result.fork_timestamp),
        result.rates,
        "ETH",
        result.fork_timestamp,
    )
    etc_series = hashes_per_usd_series(
        trace_daily_mean_difficulty(result.etc_trace, result.fork_timestamp),
        result.rates,
        "ETC",
        result.fork_timestamp,
    )
    report = market_efficiency_report(
        eth_series, etc_series, result.fork_timestamp
    )
    return Observation(
        number=4,
        claim="expected mining return (hashes per USD) is almost identical "
        "between ETH and ETC",
        holds=report.curves_nearly_identical,
        details={
            "pearson_correlation": report.correlation,
            "median_relative_gap": report.median_relative_gap,
        },
    )


def observation_5(detector: EchoDetector, horizon_days: int = 270) -> Observation:
    """Replay vulnerability: echoes spike at the fork and persist."""
    into_etc = detector.daily_counts(chain="ETC")
    if into_etc.is_empty():
        return Observation(
            number=5,
            claim="rebroadcast transactions persist",
            holds=False,
            details={},
        )
    first_week_peak = max(into_etc.values[:7]) if into_etc.values else 0.0
    tail = [v for v in into_etc.values[-30:]]
    tail_mean = sum(tail) / len(tail) if tail else 0.0
    directions = detector.direction_totals()
    eth_to_etc = directions.get(("ETH", "ETC"), 0)
    etc_to_eth = directions.get(("ETC", "ETH"), 0)
    return Observation(
        number=5,
        claim="the fork introduced a replay vulnerability: a spike of "
        "rebroadcasts at the fork, still hundreds daily months later, "
        "mostly ETH-origin replayed into ETC",
        holds=(
            first_week_peak > 10 * max(tail_mean, 1.0)
            and tail_mean >= 100
            and eth_to_etc > 3 * max(etc_to_eth, 1)
        ),
        details={
            "first_week_peak_per_day": first_week_peak,
            "final_month_mean_per_day": tail_mean,
            "eth_to_etc_total": float(eth_to_etc),
            "etc_to_eth_total": float(etc_to_eth),
        },
    )


def observation_6(result: ForkSimResult) -> Observation:
    """ETC pool concentration slowly converged to ETH's distribution."""
    eth_top5 = trace_top_n_share_series(
        result.eth_trace, 5, start_ts=result.fork_timestamp
    )
    etc_top5 = trace_top_n_share_series(
        result.etc_trace, 5, start_ts=result.fork_timestamp
    )
    # Early gap: ETC top-5 well below ETH's in the first month.
    early_gap = (
        sum(eth_top5.values[:30]) / 30 - sum(etc_top5.values[:30]) / 30
    )
    converged_at = convergence_day(eth_top5, etc_top5)
    converged_days = (
        (converged_at - result.fork_timestamp) / DAY
        if converged_at is not None
        else float("inf")
    )
    return Observation(
        number=6,
        claim="ETC's top-pool block share started far below ETH's and "
        "slowly converged to the same distribution",
        holds=early_gap > 10.0
        and converged_at is not None
        and 30 <= converged_days <= result.config.days,
        details={
            "early_top5_gap_points": early_gap,
            "convergence_day": converged_days,
        },
    )


def evaluate_all(
    result: ForkSimResult,
    partition: Optional[PartitionResult] = None,
    detector: Optional[EchoDetector] = None,
) -> List[Observation]:
    """Evaluate every observation the supplied inputs allow."""
    observations = []
    if partition is not None:
        observations.append(observation_1(partition))
    observations.append(observation_2(result))
    observations.append(observation_3(result))
    observations.append(observation_4(result))
    if detector is not None:
        observations.append(observation_5(detector, result.config.days))
    observations.append(observation_6(result))
    return observations


# --------------------------------------------------------------------------
# database-backed variants
#
# Identical statistics computed from a full-prefix analysis database
# (either backend) instead of the result's traces.  Observations 1 and 5
# never read chain data (they consume the partition scenario and the echo
# detector), so only 2/3/4/6 have ``_db`` twins; the differential tests
# pin their details dicts byte-identical to the trace versions.


def observation_2_db(result: ForkSimResult, db) -> Observation:
    """:func:`observation_2` from database aggregates."""
    report = stabilization_time_db(db, "ETC", result.fork_timestamp)
    days = report.stabilization_days or float("inf")
    etc_daily = db_daily_mean_difficulty(
        db, "ETC", start_ts=result.fork_timestamp
    )
    trough = min(etc_daily.values[:7]) if len(etc_daily) >= 7 else 0.0
    day14 = (
        etc_daily.values[14] if len(etc_daily) > 14 else float("nan")
    )
    influx = day14 / trough if trough else float("nan")
    return Observation(
        number=2,
        claim="ETC took ~2 days to resume the target block rate; miners "
        "flowed back over the following two weeks",
        holds=(1.0 <= days <= 4.0) and influx > 2.0,
        details={
            "stabilization_days": days,
            "peak_delta_seconds": report.peak_delta_seconds,
            "difficulty_influx_ratio_day14": influx,
        },
    )


def observation_3_db(result: ForkSimResult, db) -> Observation:
    """:func:`observation_3` from database aggregates."""
    horizon = result.config.days
    eth = db_daily_mean_difficulty(
        db, "ETH", start_ts=result.fork_timestamp + 14 * DAY
    )
    etc = db_daily_mean_difficulty(
        db, "ETC", start_ts=result.fork_timestamp + 14 * DAY
    )
    if not eth.values or not etc.values:
        return Observation(
            number=3,
            claim="ETH difficulty grew tremendously while ETC's held roughly "
            "constant; both chains persist",
            holds=False,
            details={"horizon_days": float(horizon)},
        )
    eth_growth = eth.values[-1] / eth.values[0]
    etc_growth = etc.values[-1] / etc.values[0]
    ratio_end = eth.values[-1] / etc.values[-1]
    return Observation(
        number=3,
        claim="ETH difficulty grew tremendously while ETC's held roughly "
        "constant; both chains persist",
        holds=eth_growth > 2.0 and etc_growth < eth_growth / 1.5 and ratio_end > 5,
        details={
            "eth_difficulty_growth": eth_growth,
            "etc_difficulty_growth": etc_growth,
            "difficulty_ratio_at_end": ratio_end,
            "horizon_days": float(horizon),
        },
    )


def observation_4_db(result: ForkSimResult, db) -> Observation:
    """:func:`observation_4` from database aggregates."""
    eth_series = hashes_per_usd_series(
        db_daily_mean_difficulty(db, "ETH", result.fork_timestamp),
        result.rates,
        "ETH",
        result.fork_timestamp,
    )
    etc_series = hashes_per_usd_series(
        db_daily_mean_difficulty(db, "ETC", result.fork_timestamp),
        result.rates,
        "ETC",
        result.fork_timestamp,
    )
    report = market_efficiency_report(
        eth_series, etc_series, result.fork_timestamp
    )
    return Observation(
        number=4,
        claim="expected mining return (hashes per USD) is almost identical "
        "between ETH and ETC",
        holds=report.curves_nearly_identical,
        details={
            "pearson_correlation": report.correlation,
            "median_relative_gap": report.median_relative_gap,
        },
    )


def observation_6_db(result: ForkSimResult, db) -> Observation:
    """:func:`observation_6` from database aggregates."""
    eth_top5 = db_top_n_share_series(
        db, "ETH", 5, start_ts=result.fork_timestamp
    )
    etc_top5 = db_top_n_share_series(
        db, "ETC", 5, start_ts=result.fork_timestamp
    )
    early_gap = (
        sum(eth_top5.values[:30]) / 30 - sum(etc_top5.values[:30]) / 30
    )
    converged_at = convergence_day(eth_top5, etc_top5)
    converged_days = (
        (converged_at - result.fork_timestamp) / DAY
        if converged_at is not None
        else float("inf")
    )
    return Observation(
        number=6,
        claim="ETC's top-pool block share started far below ETH's and "
        "slowly converged to the same distribution",
        holds=early_gap > 10.0
        and converged_at is not None
        and 30 <= converged_days <= result.config.days,
        details={
            "early_top5_gap_points": early_gap,
            "convergence_day": converged_days,
        },
    )


def evaluate_all_db(
    result: ForkSimResult,
    db,
    partition: Optional[PartitionResult] = None,
    detector: Optional[EchoDetector] = None,
) -> List[Observation]:
    """:func:`evaluate_all` reading chain data from a database.

    Same scoreboard, same order; observations 1 and 5 are unchanged
    because they never touch the block table.
    """
    observations = []
    if partition is not None:
        observations.append(observation_1(partition))
    observations.append(observation_2_db(result, db))
    observations.append(observation_3_db(result, db))
    observations.append(observation_4_db(result, db))
    if detector is not None:
        observations.append(observation_5(detector, result.config.days))
    observations.append(observation_6_db(result, db))
    return observations
