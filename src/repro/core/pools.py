"""Mining-pool concentration analysis — Figure 5.

The paper computes, per day, the share of all mined blocks won by the top
1, 3, and 5 coinbase addresses, choosing the top pools *each day* "because
pools are highly dynamic (pools come and go regularly)".  It then makes
three observations this module's functions quantify:

* ETH's ratios are constant and identical to pre-fork (pool migration was
  immediate and wholesale) — :func:`migration_consistency`;
* ETC's top pools start much smaller and grow; — visible in the
  :func:`top_n_share_series` trajectories;
* ETC eventually converges to the same ratios as ETH —
  :func:`convergence_day`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..data.windows import DAY
from ..sim.blockprod import ChainTrace
from .timeseries import TimeSeries

__all__ = [
    "daily_top_n_shares",
    "top_n_share_series",
    "trace_top_n_share_series",
    "db_top_n_share_series",
    "daily_top_pools",
    "migration_consistency",
    "convergence_day",
]


def daily_top_n_shares(
    daily_winner_counts: Counter, top_n: int
) -> float:
    """Fraction of one day's blocks won by that day's top ``top_n`` miners."""
    total = sum(daily_winner_counts.values())
    if total == 0:
        return 0.0
    top = daily_winner_counts.most_common(top_n)
    return sum(count for _, count in top) / total


def _bucket_winners(
    labeled_blocks: Iterable[Tuple[int, str]],
) -> Dict[int, Counter]:
    days: Dict[int, Counter] = {}
    for timestamp, label in labeled_blocks:
        days.setdefault(int(timestamp // DAY), Counter())[label] += 1
    return days


def top_n_share_series(
    labeled_blocks: Iterable[Tuple[int, str]],
    top_n: int,
    name: str = "",
) -> TimeSeries:
    """Daily top-N share over a stream of (timestamp, miner label)."""
    days = _bucket_winners(labeled_blocks)
    indices = sorted(days)
    return TimeSeries(
        [index * DAY for index in indices],
        [100.0 * daily_top_n_shares(days[index], top_n) for index in indices],
        name=name or f"top-{top_n} share %",
    )


def trace_top_n_share_series(
    trace: ChainTrace,
    top_n: int,
    start_ts: Optional[float] = None,
    solo_prefix: str = "solo-",
) -> TimeSeries:
    """Figure 5 series straight from a columnar trace.

    ``solo_prefix`` marks coinbases known to be individuals; they are
    counted in the denominator but can never constitute a "pool".  (The
    paper cannot make this distinction — a prolific solo miner would count
    — but with thousands of solo identities none ever reaches the top 5,
    so the result is unchanged; the flag exists for the ablation test.)
    """
    days: Dict[int, Counter] = {}
    day_totals: Dict[int, int] = {}
    for timestamp, miner_id in zip(trace.timestamps, trace.miner_ids):
        if start_ts is not None and timestamp < start_ts:
            continue
        index = timestamp // DAY
        day_totals[index] = day_totals.get(index, 0) + 1
        label = trace.miner_labels[miner_id]
        if not label.startswith(solo_prefix):
            days.setdefault(index, Counter())[label] += 1
    indices = sorted(day_totals)
    values = []
    for index in indices:
        counter = days.get(index, Counter())
        top = counter.most_common(top_n)
        values.append(
            100.0 * sum(count for _, count in top) / day_totals[index]
        )
    return TimeSeries(
        [index * DAY for index in indices],
        values,
        name=f"{trace.chain} top-{top_n} %",
    )


def db_top_n_share_series(
    db,
    chain: str,
    top_n: int,
    start_ts: Optional[float] = None,
    solo_prefix: str = "solo-",
) -> TimeSeries:
    """Figure 5 series from a database's aggregated miner counts.

    Byte-identical to :func:`trace_top_n_share_series` on a full-prefix
    database from either backend: ``daily_miner_counts`` preserves
    first-occurrence insertion order, the solo filter below preserves
    relative order among the survivors, and ``most_common``'s stable
    sort therefore breaks ties the same way.  Solo miners stay in the
    denominator but never constitute a pool.
    """
    days = db.daily_miner_counts(chain, start_ts)
    indices = sorted(days)
    values = []
    for index in indices:
        counter = days[index]
        total = sum(counter.values())
        pools = Counter(
            {
                label: count
                for label, count in counter.items()
                if not label.startswith(solo_prefix)
            }
        )
        top = pools.most_common(top_n)
        values.append(100.0 * sum(count for _, count in top) / total)
    return TimeSeries(
        [index * DAY for index in indices],
        values,
        name=f"{chain} top-{top_n} %",
    )


def daily_top_pools(
    labeled_blocks: Iterable[Tuple[int, str]], top_n: int
) -> Dict[int, List[str]]:
    """Day index -> that day's top-N pool labels (identity tracking)."""
    days = _bucket_winners(labeled_blocks)
    return {
        index: [label for label, _ in counter.most_common(top_n)]
        for index, counter in days.items()
    }


def migration_consistency(
    prefork_blocks: Iterable[Tuple[int, str]],
    postfork_blocks: Iterable[Tuple[int, str]],
    top_n: int = 5,
) -> float:
    """Jaccard overlap between pre-fork and post-fork top-pool sets.

    The paper "verified that the top mining pools' addresses before the
    fork are consistent across ETH"; a value near 1.0 reproduces that: the
    same pool identities dominate both eras.
    """
    pre = Counter(label for _, label in prefork_blocks)
    post = Counter(label for _, label in postfork_blocks)
    pre_top: Set[str] = {label for label, _ in pre.most_common(top_n)}
    post_top: Set[str] = {label for label, _ in post.most_common(top_n)}
    union = pre_top | post_top
    if not union:
        return 0.0
    return len(pre_top & post_top) / len(union)


def convergence_day(
    series_a: TimeSeries,
    series_b: TimeSeries,
    tolerance: float = 8.0,
    sustain_days: int = 14,
) -> Optional[float]:
    """First timestamp after which |a - b| stays within ``tolerance``
    percentage points for ``sustain_days`` consecutive shared days.

    Applied to the ETH and ETC top-N share series, this quantifies the
    paper's "eventually they have converged on the same relative ratios".
    Returns None if convergence never sustains.
    """
    from .timeseries import align

    a, b = align(series_a, series_b)
    run_start: Optional[float] = None
    run_length = 0
    for timestamp, (x, y) in zip(a.timestamps, zip(a.values, b.values)):
        if abs(x - y) <= tolerance:
            if run_start is None:
                run_start = timestamp
            run_length += 1
            if run_length >= sustain_days:
                return run_start
        else:
            run_start = None
            run_length = 0
    return None
