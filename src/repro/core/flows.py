"""Miner-flow estimation — the paper's second "future work" item.

Section 4 lists "how miners actually moved between both chains" as open
work: the blockchain shows difficulty, not migrations.  This module
inverts the visible signal.  By the Poisson mining identity, a chain's
effective hashrate over a window is

    H = (blocks in window x mean difficulty) / window seconds

so daily hashrate series for ETH and ETC fall straight out of the block
data.  Day-over-day *changes* then decompose into migration between the
two chains plus net entry/exit of the combined pool:

    net_flow(day)  = the portion of the changes explainable by migration
                     (mass leaving one chain appearing on the other)
    entry_exit(day) = the remainder (new rigs, rigs leaving for Zcash, …)

The decomposition attributes min(|ΔETH|, |ΔETC|) to migration when the
changes have opposite signs — a conservative lower bound on migration,
exact when entry/exit is zero.  Applied to the fork fortnight it recovers
the paper's hypothesis ("miners who originally 'took' the fork and
switched to ETH actually switched back"), and the tests validate it
against the simulator's ground-truth daily allocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..data.windows import DAY
from ..sim.blockprod import ChainTrace
from .timeseries import TimeSeries

__all__ = ["daily_hashrate_series", "MinerFlow", "estimate_flows", "FlowSummary"]


def daily_hashrate_series(
    trace: ChainTrace, start_ts: Optional[float] = None
) -> TimeSeries:
    """Effective hashrate per day, inferred from blocks alone."""
    work: Dict[int, float] = {}
    for timestamp, difficulty in zip(trace.timestamps, trace.difficulties):
        if start_ts is not None and timestamp < start_ts:
            continue
        index = timestamp // DAY
        work[index] = work.get(index, 0.0) + difficulty
    indices = sorted(work)
    return TimeSeries(
        [index * DAY for index in indices],
        [work[index] / DAY for index in indices],
        name=f"{trace.chain} hashrate",
    )


@dataclass(frozen=True)
class MinerFlow:
    """One day's decomposition of hashrate changes."""

    timestamp: int
    #: Hashrate moving between the chains this day; positive = toward the
    #: *second* chain of the pair passed to :func:`estimate_flows`
    #: (conventionally ETC, so positive = "switching back").
    migration: float
    #: Net hashpower entering (+) or leaving (-) the combined pool.
    entry_exit: float


@dataclass
class FlowSummary:
    flows: List[MinerFlow]
    pair: Tuple[str, str]

    def migration_series(self) -> TimeSeries:
        return TimeSeries(
            [flow.timestamp for flow in self.flows],
            [flow.migration for flow in self.flows],
            name=f"migration toward {self.pair[1]}",
        )

    def total_migration_toward_second(
        self, start_ts: float, end_ts: float
    ) -> float:
        """Cumulative migration toward the second chain in a window."""
        return sum(
            flow.migration
            for flow in self.flows
            if start_ts <= flow.timestamp < end_ts and flow.migration > 0
        )


def estimate_flows(
    first: TimeSeries, second: TimeSeries, pair: Tuple[str, str] = ("ETH", "ETC")
) -> FlowSummary:
    """Decompose aligned daily hashrate series into migration + entry/exit.

    For each day: ``delta1 = H1[d] - H1[d-1]``, ``delta2`` likewise.
    Opposite-signed deltas overlap by ``min(|delta1|, |delta2|)`` — that
    mass moved between the chains; the rest entered or left the pool.
    """
    from .timeseries import align

    a, b = align(first, second)
    flows: List[MinerFlow] = []
    for index in range(1, len(a)):
        delta1 = a.values[index] - a.values[index - 1]
        delta2 = b.values[index] - b.values[index - 1]
        if delta1 * delta2 < 0:
            moved = min(abs(delta1), abs(delta2))
            # Positive when the second chain is the gainer.
            migration = moved if delta2 > 0 else -moved
        else:
            migration = 0.0
        entry_exit = delta1 + delta2
        flows.append(
            MinerFlow(
                timestamp=int(a.timestamps[index]),
                migration=migration,
                entry_exit=entry_exit,
            )
        )
    return FlowSummary(flows=flows, pair=pair)
