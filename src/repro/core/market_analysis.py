"""Mining-economics analysis — Figure 3 and the market-efficiency claim.

Computes expected hashes per USD for each chain from daily difficulty and
exchange-rate series, measures their correlation (the paper: "a very strong
correlation ... the curves are almost identical"), and locates the two
event-driven excursions the paper reads off the figure: the Zcash-launch
dip (late October 2016) and the March 2017 repricing dip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..data.windows import DAY
from ..market.exchange import ExchangeRateSeries, expected_hashes_per_usd
from .timeseries import TimeSeries, align, pearson

__all__ = [
    "hashes_per_usd_series",
    "MarketEfficiencyReport",
    "market_efficiency_report",
    "relative_gap_series",
    "find_dip",
]


def hashes_per_usd_series(
    daily_difficulty: TimeSeries,
    rates: ExchangeRateSeries,
    asset: str,
    fork_timestamp: int,
    block_reward_ether: float = 5.0,
) -> TimeSeries:
    """Figure 3's y-value per day for one chain.

    ``daily_difficulty`` carries absolute timestamps; the rate series is
    indexed by days since the fork, so conversion anchors at
    ``fork_timestamp``.
    """
    timestamps = []
    values = []
    for timestamp, difficulty in daily_difficulty:
        day = int((timestamp - fork_timestamp) // DAY)
        if day < 0:
            continue
        price = rates.rate(asset, day)
        timestamps.append(timestamp)
        values.append(
            expected_hashes_per_usd(difficulty, price, block_reward_ether)
        )
    return TimeSeries(timestamps, values, name=f"{asset} hashes/USD")


def relative_gap_series(a: TimeSeries, b: TimeSeries) -> TimeSeries:
    """|a-b| / mean(a,b) per shared day — how far from 'identical'."""
    x, y = align(a, b)
    values = [
        abs(u - v) / ((u + v) / 2) if (u + v) else 0.0
        for u, v in zip(x.values, y.values)
    ]
    return TimeSeries(x.timestamps, values, name="relative gap")


@dataclass(frozen=True)
class MarketEfficiencyReport:
    """The quantified version of the paper's three Figure 3 observations."""

    correlation: float
    median_relative_gap: float
    #: (timestamp, depth) of the detected autumn dip, if any.
    zcash_dip: Optional[Tuple[float, float]]
    #: (timestamp, depth) of the detected spring dip, if any.
    march_dip: Optional[Tuple[float, float]]

    @property
    def curves_nearly_identical(self) -> bool:
        """The paper's "the curves are almost identical" reading.

        Pointwise closeness (the median relative gap) is the primary
        signal — it is what "identical" means; correlation corroborates
        that the *movements* also track, but short windows with little
        shared trend depress Pearson without separating the curves, so
        its bar is modest.
        """
        return self.median_relative_gap < 0.15 and self.correlation > 0.8


def find_dip(
    series: TimeSeries,
    window_start: float,
    window_end: float,
    baseline_days: int = 21,
) -> Optional[Tuple[float, float]]:
    """Locate a local minimum in a window and report its relative depth.

    Depth is measured against the mean of the ``baseline_days`` preceding
    the window; returns None when the window is empty or not below the
    baseline at all.
    """
    clipped = series.clip_time(window_start, window_end)
    if clipped.is_empty():
        return None
    baseline = series.clip_time(
        window_start - baseline_days * DAY, window_start
    )
    if baseline.is_empty():
        return None
    base = baseline.mean()
    low_index = min(range(len(clipped)), key=lambda i: clipped.values[i])
    low_value = clipped.values[low_index]
    if low_value >= base:
        return None
    return (clipped.timestamps[low_index], 1.0 - low_value / base)


def market_efficiency_report(
    eth_hashes_per_usd: TimeSeries,
    etc_hashes_per_usd: TimeSeries,
    fork_timestamp: int,
    skip_days: int = 14,
) -> MarketEfficiencyReport:
    """Assemble the full Figure 3 reading.

    The first ``skip_days`` after the fork are excluded from the
    correlation, matching the paper's figure which begins in September
    2016 — the immediate post-fork chaos is Figure 1's subject, not
    Figure 3's.
    """
    start = fork_timestamp + skip_days * DAY
    eth = eth_hashes_per_usd.clip_time(start, float("inf"))
    etc = etc_hashes_per_usd.clip_time(start, float("inf"))
    if min(len(eth), len(etc)) < 2:
        # Horizon shorter than the transient window (quick-look runs):
        # fall back to the full post-fork series rather than crashing.
        eth = eth_hashes_per_usd.clip_time(fork_timestamp, float("inf"))
        etc = etc_hashes_per_usd.clip_time(fork_timestamp, float("inf"))
    try:
        correlation = pearson(eth, etc)
    except ValueError:
        correlation = float("nan")
    gaps = relative_gap_series(eth, etc)
    sorted_gaps = sorted(gaps.values)
    median_gap = sorted_gaps[len(sorted_gaps) // 2] if sorted_gaps else 0.0

    # Zcash launched ~day 100; look for the dip in days 95-140.
    zcash_dip = find_dip(
        eth, fork_timestamp + 95 * DAY, fork_timestamp + 140 * DAY
    )
    # The March 2017 rally: days 230-270.
    march_dip = find_dip(
        eth, fork_timestamp + 230 * DAY, fork_timestamp + 270 * DAY
    )
    return MarketEfficiencyReport(
        correlation=correlation,
        median_relative_gap=median_gap,
        zcash_dip=zcash_dip,
        march_dip=march_dip,
    )
