"""Chain metrics: the series plotted in Figures 1 and 2.

Every function takes either a :class:`~repro.sim.blockprod.ChainTrace`
(columnar, for month-scale data) or a :class:`~repro.data.store.ChainDatabase`
(record-level) and returns :class:`~repro.core.timeseries.TimeSeries`
objects ready for the report layer.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..data.store import ChainDatabase
from ..data.windows import DAY, HOUR
from ..sim.blockprod import ChainTrace
from .timeseries import TimeSeries

__all__ = [
    "blocks_per_hour",
    "difficulty_series",
    "block_delta_series",
    "transactions_per_day",
    "contract_fraction_per_day",
    "daily_mean_difficulty",
    "db_blocks_per_hour",
    "db_daily_mean_difficulty",
    "db_hourly_mean_block_delta",
    "db_transactions_per_day",
    "db_contract_fraction_per_day",
    "trace_blocks_per_hour",
    "trace_difficulty_series",
    "trace_block_deltas",
    "trace_transactions_per_day",
    "trace_contract_fraction_per_day",
    "trace_daily_mean_difficulty",
]


# -- database-backed (record-level) variants -----------------------------------


def blocks_per_hour(db: ChainDatabase, chain: str) -> TimeSeries:
    """Figure 1 (top): hourly block counts.

    Empty hours are *not* filled here; the report layer densifies over the
    plot range so that ETC's near-zero day renders as near-zero.
    """
    return TimeSeries.from_window_dict(
        {k: float(v) for k, v in db.blocks_per_hour(chain).items()},
        HOUR,
        name=f"{chain} blocks/hour",
    )


def difficulty_series(db: ChainDatabase, chain: str) -> TimeSeries:
    """Figures 1-2 (difficulty panels): per-block difficulty over time."""
    pairs = db.difficulty_series(chain)
    return TimeSeries(
        [t for t, _ in pairs],
        [float(d) for _, d in pairs],
        name=f"{chain} difficulty",
    )


def block_delta_series(db: ChainDatabase, chain: str) -> TimeSeries:
    """Figure 1 (bottom): seconds between consecutive blocks."""
    pairs = db.block_deltas(chain)
    return TimeSeries(
        [t for t, _ in pairs],
        [float(d) for _, d in pairs],
        name=f"{chain} block delta",
    )


def transactions_per_day(db: ChainDatabase, chain: str) -> TimeSeries:
    """Figure 2 (middle): daily transaction counts."""
    return TimeSeries.from_window_dict(
        {k: float(v) for k, v in db.transactions_per_day(chain).items()},
        DAY,
        name=f"{chain} tx/day",
    )


def contract_fraction_per_day(db: ChainDatabase, chain: str) -> TimeSeries:
    """Figure 2 (bottom): daily contract-call fraction."""
    return TimeSeries.from_window_dict(
        db.contract_fraction_per_day(chain),
        DAY,
        name=f"{chain} contract fraction",
    )


def daily_mean_difficulty(db: ChainDatabase, chain: str) -> TimeSeries:
    """Daily mean difficulty — the difficulty input to Figure 3."""
    return difficulty_series(db, chain).resample_mean(DAY)


# -- aggregated database variants (either backend) -------------------------------
#
# These wrap the aggregated queries shared by :class:`ChainDatabase` and
# :class:`~repro.data.columnar.ColumnarChainDatabase` and are pinned
# byte-identical to the ``trace_*`` helpers below on a full-prefix
# database (``to_database(include_prefix=True)``), on either backend —
# the contract ``tests/test_data_columnar.py`` enforces.  They are the
# figure pipeline's database face: no per-record iteration happens on
# this side of the query boundary.


def db_blocks_per_hour(db, chain: str, start_ts: Optional[float] = None) -> TimeSeries:
    """Figure 1 (top) from aggregated queries (= ``trace_blocks_per_hour``)."""
    return TimeSeries.from_window_dict(
        {k: float(v) for k, v in db.blocks_per_hour(chain, start_ts).items()},
        HOUR,
        name=f"{chain} blocks/hour",
    )


def db_daily_mean_difficulty(
    db, chain: str, start_ts: Optional[float] = None
) -> TimeSeries:
    """Daily mean difficulty (= ``trace_daily_mean_difficulty``)."""
    return TimeSeries.from_window_dict(
        db.daily_mean_difficulty(chain, start_ts),
        DAY,
        name=f"{chain} difficulty",
    )


def db_hourly_mean_block_delta(
    db, chain: str, start_ts: Optional[float] = None
) -> TimeSeries:
    """Hourly mean inter-block gap
    (= ``trace_block_deltas(...).resample_mean(HOUR)``)."""
    return TimeSeries.from_window_dict(
        db.hourly_mean_block_delta(chain, start_ts),
        HOUR,
        name=f"{chain} block delta",
    )


def db_transactions_per_day(
    db, chain: str, start_ts: Optional[float] = None
) -> TimeSeries:
    """Daily tx counts from per-block counts
    (= ``trace_transactions_per_day``)."""
    return TimeSeries.from_window_dict(
        {
            k: float(v)
            for k, v in db.block_transactions_per_day(chain, start_ts).items()
        },
        DAY,
        name=f"{chain} tx/day",
    )


def db_contract_fraction_per_day(
    db, chain: str, start_ts: Optional[float] = None
) -> TimeSeries:
    """Daily contract fraction from per-block counts
    (= ``trace_contract_fraction_per_day``)."""
    return TimeSeries.from_window_dict(
        db.block_contract_fraction_per_day(chain, start_ts),
        DAY,
        name=f"{chain} contract fraction",
    )


# -- trace-backed (columnar) variants -------------------------------------------


def trace_blocks_per_hour(trace: ChainTrace, start_ts: Optional[float] = None) -> TimeSeries:
    counts: Dict[int, int] = {}
    for timestamp in trace.timestamps:
        if start_ts is not None and timestamp < start_ts:
            continue
        index = timestamp // HOUR
        counts[index] = counts.get(index, 0) + 1
    return TimeSeries.from_window_dict(
        {k: float(v) for k, v in counts.items()},
        HOUR,
        name=f"{trace.chain} blocks/hour",
    )


def trace_difficulty_series(
    trace: ChainTrace, start_ts: Optional[float] = None
) -> TimeSeries:
    timestamps = []
    values = []
    for timestamp, difficulty in zip(trace.timestamps, trace.difficulties):
        if start_ts is not None and timestamp < start_ts:
            continue
        timestamps.append(timestamp)
        values.append(float(difficulty))
    return TimeSeries(timestamps, values, name=f"{trace.chain} difficulty")


def trace_block_deltas(
    trace: ChainTrace, start_ts: Optional[float] = None
) -> TimeSeries:
    timestamps = []
    values = []
    previous = None
    for timestamp in trace.timestamps:
        if previous is not None and (start_ts is None or timestamp >= start_ts):
            timestamps.append(timestamp)
            values.append(float(timestamp - previous))
        previous = timestamp
    return TimeSeries(timestamps, values, name=f"{trace.chain} block delta")


def trace_transactions_per_day(
    trace: ChainTrace, start_ts: Optional[float] = None
) -> TimeSeries:
    counts: Dict[int, int] = {}
    for timestamp, tx_count in zip(trace.timestamps, trace.tx_counts):
        if start_ts is not None and timestamp < start_ts:
            continue
        index = timestamp // DAY
        counts[index] = counts.get(index, 0) + tx_count
    return TimeSeries.from_window_dict(
        {k: float(v) for k, v in counts.items()},
        DAY,
        name=f"{trace.chain} tx/day",
    )


def trace_contract_fraction_per_day(
    trace: ChainTrace, start_ts: Optional[float] = None
) -> TimeSeries:
    totals: Dict[int, int] = {}
    contracts: Dict[int, int] = {}
    for timestamp, tx_count, contract_count in zip(
        trace.timestamps, trace.tx_counts, trace.contract_tx_counts
    ):
        if start_ts is not None and timestamp < start_ts:
            continue
        index = timestamp // DAY
        totals[index] = totals.get(index, 0) + tx_count
        contracts[index] = contracts.get(index, 0) + contract_count
    fractions = {
        index: contracts.get(index, 0) / totals[index]
        for index in totals
        if totals[index] > 0
    }
    return TimeSeries.from_window_dict(
        fractions, DAY, name=f"{trace.chain} contract fraction"
    )


def trace_daily_mean_difficulty(
    trace: ChainTrace, start_ts: Optional[float] = None
) -> TimeSeries:
    return trace_difficulty_series(trace, start_ts).resample_mean(DAY)
