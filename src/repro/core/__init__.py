"""The paper's contribution: the fork-analysis toolkit.

Partition detection and stabilization analysis (Figure 1 / Observations
1-2), chain-usage metrics (Figure 2), mining-economics analysis (Figure 3 /
Observation 4), cross-chain echo detection (Figure 4 / Observation 5),
pool-concentration analysis (Figure 5 / Observation 6), and the figure
generators and observation predicates that tie them to the paper.
"""

from .classification import (
    ClassificationReport,
    EchoVerdict,
    IntentClassifier,
)
from .echoes import SAME_TIME_WINDOW, Echo, EchoDetector, EchoReport
from .flows import (
    FlowSummary,
    MinerFlow,
    daily_hashrate_series,
    estimate_flows,
)
from .market_analysis import (
    MarketEfficiencyReport,
    find_dip,
    hashes_per_usd_series,
    market_efficiency_report,
    relative_gap_series,
)
from .metrics import (
    block_delta_series,
    blocks_per_hour,
    contract_fraction_per_day,
    daily_mean_difficulty,
    difficulty_series,
    trace_block_deltas,
    trace_blocks_per_hour,
    trace_contract_fraction_per_day,
    trace_daily_mean_difficulty,
    trace_difficulty_series,
    trace_transactions_per_day,
    transactions_per_day,
)
from .observations import Observation, evaluate_all
from .partition import (
    StabilizationReport,
    find_fork_point,
    find_trace_fork_point,
    hashpower_loss_fraction,
    node_loss_fraction,
    peak_block_delta,
    stabilization_time,
)
from .pools import (
    convergence_day,
    daily_top_n_shares,
    daily_top_pools,
    migration_consistency,
    top_n_share_series,
    trace_top_n_share_series,
)
from .report import FigureData, figure_1, figure_2, figure_3, figure_4, figure_5
from .timeseries import TimeSeries, align, pearson

__all__ = [
    "TimeSeries",
    "align",
    "pearson",
    "blocks_per_hour",
    "difficulty_series",
    "block_delta_series",
    "transactions_per_day",
    "contract_fraction_per_day",
    "daily_mean_difficulty",
    "trace_blocks_per_hour",
    "trace_difficulty_series",
    "trace_block_deltas",
    "trace_transactions_per_day",
    "trace_contract_fraction_per_day",
    "trace_daily_mean_difficulty",
    "EchoDetector",
    "Echo",
    "EchoReport",
    "SAME_TIME_WINDOW",
    "IntentClassifier",
    "EchoVerdict",
    "ClassificationReport",
    "daily_hashrate_series",
    "estimate_flows",
    "MinerFlow",
    "FlowSummary",
    "find_fork_point",
    "find_trace_fork_point",
    "node_loss_fraction",
    "hashpower_loss_fraction",
    "stabilization_time",
    "peak_block_delta",
    "StabilizationReport",
    "daily_top_n_shares",
    "top_n_share_series",
    "trace_top_n_share_series",
    "daily_top_pools",
    "migration_consistency",
    "convergence_day",
    "hashes_per_usd_series",
    "market_efficiency_report",
    "MarketEfficiencyReport",
    "relative_gap_series",
    "find_dip",
    "Observation",
    "evaluate_all",
    "FigureData",
    "figure_1",
    "figure_2",
    "figure_3",
    "figure_4",
    "figure_5",
]
