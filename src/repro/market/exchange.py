"""Exchange-rate series and mining-economics conversions.

:class:`ExchangeRateSeries` is the reproduction's coinmarketcap: a daily
USD rate table per asset.  The conversion helpers implement the paper's
Figure 3 arithmetic verbatim: "we divided the average number of hashes to
earn one ether (i.e., the difficulty divided by 5, as each block earns 5
ether) by the daily ETH/ETC to USD exchange rates."
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["ExchangeRateSeries", "expected_hashes_per_usd", "expected_hashes_per_ether"]


def expected_hashes_per_ether(difficulty: float, block_reward_ether: float = 5.0) -> float:
    """Average hashes a miner computes per ether earned.

    A block takes ``difficulty`` hashes in expectation and pays
    ``block_reward_ether``.
    """
    if block_reward_ether <= 0:
        raise ValueError("block reward must be positive")
    return difficulty / block_reward_ether


def expected_hashes_per_usd(
    difficulty: float, price_usd: float, block_reward_ether: float = 5.0
) -> float:
    """Figure 3's y-axis: hashes per USD of expected mining revenue."""
    if price_usd <= 0:
        raise ValueError("price must be positive")
    return expected_hashes_per_ether(difficulty, block_reward_ether) / price_usd


class ExchangeRateSeries:
    """Daily USD rates for one or more assets, indexed by day number."""

    def __init__(self) -> None:
        self._rates: Dict[str, List[float]] = {}

    def set_series(self, asset: str, daily_prices: Sequence[float]) -> None:
        if any(price <= 0 for price in daily_prices):
            raise ValueError("prices must be positive")
        self._rates[asset] = list(daily_prices)

    def assets(self) -> List[str]:
        return sorted(self._rates)

    def days(self, asset: str) -> int:
        return len(self._rates.get(asset, []))

    def rate(self, asset: str, day: int) -> float:
        """USD price of ``asset`` on ``day`` (clamped to series ends)."""
        series = self._rates.get(asset)
        if not series:
            raise KeyError(f"no rates for {asset!r}")
        if day < 0:
            return series[0]
        if day >= len(series):
            return series[-1]
        return series[day]

    def series(self, asset: str) -> List[float]:
        return list(self._rates.get(asset, []))

    def ratio_series(self, numerator: str, denominator: str) -> List[float]:
        """Daily price ratio (e.g. ETH:ETC, the ~10:1 driver)."""
        top = self._rates.get(numerator, [])
        bottom = self._rates.get(denominator, [])
        days = min(len(top), len(bottom))
        return [top[day] / bottom[day] for day in range(days)]

    def hashes_per_usd_series(
        self,
        asset: str,
        daily_difficulty: Sequence[float],
        block_reward_ether: float = 5.0,
    ) -> List[float]:
        """Apply the Figure 3 formula across aligned daily series."""
        days = min(len(daily_difficulty), self.days(asset))
        return [
            expected_hashes_per_usd(
                daily_difficulty[day], self.rate(asset, day), block_reward_ether
            )
            for day in range(days)
        ]
