"""The miner-arbitrage equilibrium: why Figure 3's curves coincide.

Under rational mining, hashpower flows toward the more profitable chain
until expected revenue per hash equalizes.  At the difficulty-adjustment
fixed point (block interval = target T), a chain with hashrate ``h`` sits
at difficulty ``d = T * h``, so revenue per hash is ``reward * price /
(T * h)``.  Equalizing across two chains gives

    h_ETH / h_ETC  =  price_ETH / price_ETC

— profit hashrate splits **proportional to price**, and the resulting
hashes-per-USD metric is *identical* on both chains.  That identity is the
paper's "the market is very efficient" observation; deviations come from
ideological hashpower floors and adjustment lag, both modeled here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["EquilibriumAllocation", "allocate_profit_hashpower", "LaggedAllocator"]


@dataclass(frozen=True)
class EquilibriumAllocation:
    """Per-chain hashrate after one allocation round."""

    hashrate: Dict[str, float]

    def share(self, chain: str) -> float:
        total = sum(self.hashrate.values())
        return self.hashrate.get(chain, 0.0) / total if total else 0.0


def allocate_profit_hashpower(
    profit_hashrate: float,
    prices: Dict[str, float],
    ideological_floors: Dict[str, float],
) -> EquilibriumAllocation:
    """Equal-revenue equilibrium with ideological floors (water-filling).

    Ideological hashpower never leaves its chain, but *profit* hashpower
    equalizes revenue per hash across whatever remains.  At equilibrium
    each chain's total hashrate is proportional to its price — **unless**
    a chain's floor already exceeds its price-proportional share, in which
    case the floor binds (that chain mines at a revenue *discount* its
    ideologues accept) and the rest of the pool splits proportionally over
    the other chains.

    This is why Figure 3's curves are near-identical even though a third
    of ETH's hashpower is ideologically pinned: the pins only matter when
    they exceed what profit would allocate anyway.
    """
    if profit_hashrate < 0:
        raise ValueError("profit hashrate must be non-negative")
    price_total = sum(prices.values())
    if price_total <= 0:
        raise ValueError("need positive prices")
    floors = {
        chain: ideological_floors.get(chain, 0.0) for chain in prices
    }
    total = profit_hashrate + sum(floors.values())

    # Iterative water-filling: pin chains whose floor exceeds their
    # proportional share, re-split the remainder over the rest.
    pinned: Dict[str, float] = {}
    free = dict(prices)
    budget = total
    while free:
        share_total = sum(free.values())
        overfloored = [
            chain
            for chain in free
            if floors[chain] > budget * free[chain] / share_total
        ]
        if not overfloored:
            break
        for chain in overfloored:
            pinned[chain] = floors[chain]
            budget -= floors[chain]
            del free[chain]
    share_total = sum(free.values()) or 1.0
    allocation = dict(pinned)
    for chain, price in free.items():
        allocation[chain] = budget * price / share_total
    return EquilibriumAllocation(hashrate=allocation)


class LaggedAllocator:
    """Equilibrium allocation with finite adjustment speed.

    Real miners re-point rigs over days, not instantly; the allocator moves
    a fraction ``alpha`` of the gap to equilibrium per step.  The lag is
    what makes hashes-per-USD *dip* when price jumps (March 2017) and
    *overshoot* when hashpower leaves (Zcash) — the two excursions the
    paper reads off Figure 3.
    """

    def __init__(self, alpha: float = 0.25) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._current: Dict[str, float] = {}

    def reset(self, initial: Dict[str, float]) -> None:
        self._current = dict(initial)

    @property
    def current(self) -> Dict[str, float]:
        return dict(self._current)

    def step(
        self,
        profit_hashrate: float,
        prices: Dict[str, float],
        ideological_floors: Dict[str, float],
    ) -> Dict[str, float]:
        """Advance one epoch toward equilibrium; returns the allocation."""
        target = allocate_profit_hashpower(
            profit_hashrate, prices, ideological_floors
        ).hashrate
        if not self._current:
            self._current = dict(target)
            return dict(self._current)

        # Move toward the target, then rescale so the pool of hashpower
        # that exists today (floors + profit supply) is fully allocated —
        # supply changes (growth, Zcash) bind immediately, while *relative*
        # shares adjust with lag.
        blended = {
            chain: (1 - self.alpha) * self._current.get(chain, 0.0)
            + self.alpha * target[chain]
            for chain in target
        }
        total_supply = sum(target.values())
        blended_total = sum(blended.values())
        if blended_total > 0:
            scale = total_supply / blended_total
            blended = {chain: rate * scale for chain, rate in blended.items()}
        self._current = blended
        return dict(blended)
