"""Exogenous market events affecting hashpower supply.

Figure 3's long-term dynamics are driven by events *outside* the two
Ethereum networks.  The paper identifies two: the Zcash launch (late
October 2016) pulling GPU hashpower away from both chains — Ethereum's
Ethash and Zcash's Equihash are both ASIC-resistant, so the same rigs mine
either — and the miners' gradual return through November/December.  We
model external pull as a time-varying fraction of the *profit-driven*
hashpower that is mining elsewhere; ideological hashpower never leaves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["ExternalDraw", "ZcashLaunch", "HashpowerSupply", "DEFAULT_EVENTS"]


@dataclass(frozen=True)
class ExternalDraw:
    """A pull of profit hashpower toward an external opportunity.

    The drawn fraction ramps up over ``ramp_days`` starting at ``day``,
    peaks at ``peak_fraction``, then decays exponentially with time scale
    ``decay_days`` as the opportunity's profitability normalizes.
    """

    name: str
    day: float
    peak_fraction: float
    ramp_days: float = 7.0
    decay_days: float = 30.0

    def __post_init__(self) -> None:
        if not 0 <= self.peak_fraction < 1:
            raise ValueError("peak fraction must be in [0, 1)")
        if self.ramp_days <= 0 or self.decay_days <= 0:
            raise ValueError("ramp/decay must be positive")

    def drawn_fraction(self, day: float) -> float:
        """Fraction of profit hashpower mining elsewhere at ``day``."""
        if day < self.day:
            return 0.0
        elapsed = day - self.day
        if elapsed < self.ramp_days:
            return self.peak_fraction * elapsed / self.ramp_days
        return self.peak_fraction * math.exp(
            -(elapsed - self.ramp_days) / self.decay_days
        )


def ZcashLaunch() -> ExternalDraw:
    """Zcash launched 2016-10-28 — day 100 after the DAO fork.

    Launch-week Zcash mining was briefly hyper-profitable (the first coins
    traded absurdly high), drawing a large share of GPU capacity; returns
    normalized within weeks and most hashpower drifted back — visible in
    the paper as the November/December hashes-per-USD rally.
    """
    return ExternalDraw(
        name="zcash-launch", day=100, peak_fraction=0.35, ramp_days=5, decay_days=25
    )


DEFAULT_EVENTS: Sequence[ExternalDraw] = (ZcashLaunch(),)


class HashpowerSupply:
    """Total profit-hashpower available to ETH+ETC on a given day.

    Combines a secular growth trend (GPU fleets grew substantially over
    the paper's nine-month window — total Ethereum-family hashrate roughly
    quadrupled) with the external-draw events.
    """

    def __init__(
        self,
        base_hashrate: float,
        growth_rate_per_day: float = 0.005,
        events: Sequence[ExternalDraw] = DEFAULT_EVENTS,
    ) -> None:
        if base_hashrate <= 0:
            raise ValueError("base hashrate must be positive")
        self.base_hashrate = base_hashrate
        self.growth_rate_per_day = growth_rate_per_day
        self.events = list(events)

    def trend(self, day: float) -> float:
        return self.base_hashrate * math.exp(self.growth_rate_per_day * day)

    def drawn_fraction(self, day: float) -> float:
        """Combined external pull (events overlap multiplicatively)."""
        remaining = 1.0
        for event in self.events:
            remaining *= 1.0 - event.drawn_fraction(day)
        return 1.0 - remaining

    def available(self, day: float) -> float:
        """Hashrate actually pointed at the ETH/ETC pair on ``day``."""
        return self.trend(day) * (1.0 - self.drawn_fraction(day))

    def series(self, num_days: int) -> List[float]:
        return [self.available(day) for day in range(num_days)]
