"""Market models: price processes, exogenous events, miner arbitrage."""

from .arbitrage import (
    EquilibriumAllocation,
    LaggedAllocator,
    allocate_profit_hashpower,
)
from .events import DEFAULT_EVENTS, ExternalDraw, HashpowerSupply, ZcashLaunch
from .exchange import (
    ExchangeRateSeries,
    expected_hashes_per_ether,
    expected_hashes_per_usd,
)
from .price import (
    ETC_PRICE_ANCHORS,
    ETH_PRICE_ANCHORS,
    AnchoredPriceProcess,
    PriceAnchor,
    etc_price_process,
    eth_price_process,
)

__all__ = [
    "PriceAnchor",
    "AnchoredPriceProcess",
    "ETH_PRICE_ANCHORS",
    "ETC_PRICE_ANCHORS",
    "eth_price_process",
    "etc_price_process",
    "ExternalDraw",
    "ZcashLaunch",
    "HashpowerSupply",
    "DEFAULT_EVENTS",
    "ExchangeRateSeries",
    "expected_hashes_per_usd",
    "expected_hashes_per_ether",
    "EquilibriumAllocation",
    "allocate_profit_hashpower",
    "LaggedAllocator",
]
