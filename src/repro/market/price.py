"""Exchange-rate processes for ETH and ETC.

The paper pulled daily USD rates from coinmarketcap.com (Section 3.1).  We
generate rate series with the same *shape* as the 2016-17 history: anchored
piecewise-linear trajectories in log-price space, decorated with
mean-reverting multiplicative noise.  Anchors are expressed in days since
the DAO fork (day 0 = 2016-07-20) and calibrated to the public record:

* ETH traded near $12 at the fork, drifted down through the autumn, dipped
  to ~$7-8 around December, recovered to ~$11 by February and exploded to
  ~$50 in late March 2017 (the Enterprise Ethereum Alliance press run the
  paper cites as [19]).
* ETC spiked speculatively in the fork week (~$2.5), collapsed to ~$0.9,
  and crept to ~$1.3-2.5 by spring 2017 — roughly a tenth of ETH, which is
  exactly the ratio that sustains Figure 2's order-of-magnitude difficulty
  gap under rational mining.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = [
    "PriceAnchor",
    "AnchoredPriceProcess",
    "ETH_PRICE_ANCHORS",
    "ETC_PRICE_ANCHORS",
    "eth_price_process",
    "etc_price_process",
]


@dataclass(frozen=True)
class PriceAnchor:
    """A (day, USD price) calibration point."""

    day: float
    price: float

    def __post_init__(self) -> None:
        if self.price <= 0:
            raise ValueError("anchor price must be positive")


#: Days are measured from the DAO fork (2016-07-20).
ETH_PRICE_ANCHORS: Tuple[PriceAnchor, ...] = (
    PriceAnchor(0, 12.0),
    PriceAnchor(30, 11.0),
    PriceAnchor(75, 13.0),
    PriceAnchor(100, 11.0),   # Zcash-era softness
    PriceAnchor(145, 7.8),    # December trough
    PriceAnchor(185, 10.5),
    PriceAnchor(215, 13.0),
    PriceAnchor(235, 18.0),   # early March
    PriceAnchor(250, 44.0),   # the late-March rally
    PriceAnchor(270, 50.0),
)

ETC_PRICE_ANCHORS: Tuple[PriceAnchor, ...] = (
    PriceAnchor(0, 0.75),
    PriceAnchor(4, 2.4),      # fork-week speculation spike
    PriceAnchor(14, 1.7),
    PriceAnchor(30, 1.5),
    PriceAnchor(75, 1.3),
    PriceAnchor(100, 1.0),
    PriceAnchor(145, 1.1),
    PriceAnchor(185, 1.35),
    PriceAnchor(235, 1.6),
    PriceAnchor(250, 2.6),    # ETC also rallied in March, less violently
    PriceAnchor(270, 2.9),
)


class AnchoredPriceProcess:
    """Log-linear interpolation through anchors + OU noise in log space.

    The noise is an Ornstein-Uhlenbeck process on log-price residuals:
    shocks persist for ~``1/reversion`` days then decay, giving the series
    realistic day-to-day autocorrelation without wandering off the anchor
    trajectory.
    """

    def __init__(
        self,
        anchors: Sequence[PriceAnchor],
        noise_sigma: float = 0.03,
        reversion: float = 0.15,
        seed: int = 0,
    ) -> None:
        if len(anchors) < 2:
            raise ValueError("need at least two anchors")
        days = [anchor.day for anchor in anchors]
        if days != sorted(days):
            raise ValueError("anchors must be in increasing day order")
        self.anchors = list(anchors)
        self.noise_sigma = noise_sigma
        self.reversion = reversion
        self.seed = seed

    def reference(self, day: float) -> float:
        """The noise-free anchor trajectory at ``day`` (log-interpolated)."""
        anchors = self.anchors
        if day <= anchors[0].day:
            return anchors[0].price
        if day >= anchors[-1].day:
            return anchors[-1].price
        for left, right in zip(anchors, anchors[1:]):
            if left.day <= day <= right.day:
                span = right.day - left.day
                frac = (day - left.day) / span if span else 0.0
                log_price = (1 - frac) * math.log(left.price) + frac * math.log(
                    right.price
                )
                return math.exp(log_price)
        raise AssertionError("unreachable")  # pragma: no cover

    def series(self, num_days: int) -> List[float]:
        """Daily prices for days 0..num_days-1 (deterministic per seed)."""
        rng = random.Random(self.seed)
        residual = 0.0
        prices = []
        for day in range(num_days):
            residual += (
                -self.reversion * residual
                + rng.gauss(0.0, self.noise_sigma)
            )
            prices.append(self.reference(day) * math.exp(residual))
        return prices


def eth_price_process(seed: int = 11) -> AnchoredPriceProcess:
    return AnchoredPriceProcess(ETH_PRICE_ANCHORS, seed=seed)


def etc_price_process(seed: int = 13) -> AnchoredPriceProcess:
    return AnchoredPriceProcess(ETC_PRICE_ANCHORS, seed=seed)
