"""The executor bridge: harness :class:`WorkerPool` runs, off the loop.

The event loop must never block on a simulation, so every engine-bound
job is handed to a small :class:`~concurrent.futures.ThreadPoolExecutor`
whose threads each drive one :class:`~repro.harness.pool.WorkerPool`
invocation — the *same* execution path as ``run-all``: content-addressed
cache lookup first, per-job timeout, bounded fresh-worker retries, and
``collect_metrics`` summaries on the job record.  With ``workers=1`` the
pool runs the job in the bridge thread itself (the serial path); with
more, it forks worker processes and the bridge thread merely supervises.

Progress crosses back to the loop through
:class:`EventLoopProgress`, a thread-safe
:class:`~repro.harness.progress.NullProgress` subclass that re-posts
every pool callback (``job_started``, ``job_finished``, ``note``) onto
the event loop via ``call_soon_threadsafe`` — the registry turns those
into SSE events for subscribers.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict
from typing import Callable, Optional

from ..harness.jobs import JobSpec
from ..harness.pool import DEFAULT_TIMEOUT, JobResult, WorkerPool
from ..harness.progress import NullProgress

__all__ = ["ExecutorBridge", "EventLoopProgress"]


class EventLoopProgress(NullProgress):
    """Pool progress callbacks, marshalled onto the event loop.

    Every method may be (and is) called from the bridge thread; each
    re-posts through ``call_soon_threadsafe``.  ``on_started`` fires at
    most once, when the pool first picks the job up.
    """

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        publish: Callable[[str, dict], None],
        on_started: Optional[Callable[[], None]] = None,
    ) -> None:
        self._loop = loop
        self._publish = publish
        self._on_started = on_started
        self._started_sent = False

    def _post(self, callback, *args) -> None:
        try:
            self._loop.call_soon_threadsafe(callback, *args)
        except RuntimeError:
            pass  # loop already closed mid-shutdown; drop the event

    def job_started(self, label: str) -> None:
        if not self._started_sent:
            self._started_sent = True
            if self._on_started is not None:
                self._post(self._on_started)
        self._post(self._publish, "started", {"label": label})

    def job_finished(self, record) -> None:
        payload = asdict(record)
        payload.pop("metrics", None)  # streamed separately when present
        self._post(self._publish, "progress", payload)

    def note(self, message: str) -> None:
        self._post(self._publish, "note", {"message": message})


class ExecutorBridge:
    """Owns the bridge threads and the pool configuration."""

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        timeout: Optional[float] = DEFAULT_TIMEOUT,
        retries: int = 1,
        collect_metrics: bool = True,
        max_threads: int = 4,
        retry_backoff: float = 0.0,
    ) -> None:
        if max_threads < 1:
            raise ValueError("max_threads must be >= 1")
        self.workers = workers
        self.cache_dir = str(cache_dir) if cache_dir else None
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.collect_metrics = collect_metrics
        self._threads = ThreadPoolExecutor(
            max_workers=max_threads, thread_name_prefix="repro-serve-exec"
        )

    async def execute(
        self,
        spec: JobSpec,
        publish: Callable[[str, dict], None],
        on_started: Optional[Callable[[], None]] = None,
    ) -> JobResult:
        """Run one spec through a WorkerPool in a bridge thread."""
        loop = asyncio.get_running_loop()
        progress = EventLoopProgress(loop, publish, on_started)
        return await loop.run_in_executor(
            self._threads, self._run_sync, spec, progress
        )

    def _run_sync(self, spec: JobSpec, progress: EventLoopProgress) -> JobResult:
        pool = WorkerPool(
            workers=self.workers,
            cache_dir=self.cache_dir,
            timeout=self.timeout,
            retries=self.retries,
            progress=progress,
            collect_metrics=self.collect_metrics,
            retry_backoff=self.retry_backoff,
        )
        return pool.run([spec])[0]

    def shutdown(self, wait: bool = False) -> None:
        self._threads.shutdown(wait=wait, cancel_futures=True)
