"""repro.serve — the multi-tenant scenario service.

A fifth layer on top of orchestration (:mod:`repro.harness`), chaos
(:mod:`repro.faults`), observability (:mod:`repro.obs`), and perf
(:mod:`repro.perf`): a long-running asyncio HTTP/JSON server — stdlib
only — that turns the harness's content-addressed jobs into a shared
service.  ``python -m repro serve`` starts it.

* :mod:`~repro.serve.http` — hand-rolled HTTP/1.1 + SSE on asyncio
  streams (no new runtime dependencies).
* :mod:`~repro.serve.summary` — canonical-JSON result summaries and the
  SHA-256 digest contract shared with local ``run-all`` execution.
* :mod:`~repro.serve.quotas` — tenant identity (token header → tenant
  id) and admission control (per-tenant in-flight/queued budgets, 429).
* :mod:`~repro.serve.registry` — single-flight job dedupe over four
  answer tiers (memory / durable store / in-flight / execute) with
  append-only event histories fanned out to any number of subscribers.
* :mod:`~repro.serve.executor` — the bridge running jobs on the
  existing :class:`~repro.harness.pool.WorkerPool` (same cache, same
  timeouts/retries, same ``collect_metrics``) in threads off the loop.
* :mod:`~repro.serve.app` — the endpoint table (``POST /jobs``,
  ``GET /jobs/{id}``, ``GET /jobs/{id}/events``, ``GET
  /results/{digest}``, ``GET /metrics``, ``GET /healthz``).
* :mod:`~repro.serve.server` — lifecycle: sockets, SIGTERM-graceful
  drain, the cache-pruning maintenance loop, and
  :class:`BackgroundServer` for embedding/tests.

Durability lives in :class:`repro.data.resultstore.ResultStore` (WAL
SQLite): job records and result summaries survive restarts, so a
resubmitted config is answered without recomputation and
``GET /results/{digest}`` works across process lifetimes.
"""

from .app import DEFAULT_ALLOWED_KINDS, ScenarioApp
from .executor import EventLoopProgress, ExecutorBridge
from .http import HttpError, Request, Response, read_request, sse_event
from .quotas import (
    AdmissionController,
    QuotaExceeded,
    TenantQuota,
    tenant_for,
)
from .registry import TERMINAL_EVENTS, JobRegistry, ServeJob
from .server import BackgroundServer, ScenarioServer, ServeConfig
from .summary import register_summarizer, summarize, summary_digest

__all__ = [
    "AdmissionController",
    "BackgroundServer",
    "DEFAULT_ALLOWED_KINDS",
    "EventLoopProgress",
    "ExecutorBridge",
    "HttpError",
    "JobRegistry",
    "QuotaExceeded",
    "Request",
    "Response",
    "ScenarioApp",
    "ScenarioServer",
    "ServeConfig",
    "ServeJob",
    "TERMINAL_EVENTS",
    "TenantQuota",
    "read_request",
    "register_summarizer",
    "sse_event",
    "summarize",
    "summary_digest",
    "tenant_for",
]
