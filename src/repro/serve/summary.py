"""Canonical result summaries: what the service persists and serves.

A job's *value* (a :class:`~repro.sim.engine.ForkSimResult`, a
:class:`~repro.scenarios.partition_event.PartitionResult`, a figure...)
is a heavyweight Python object that lives in the harness's pickle cache.
The service instead exposes a **summary**: a JSON-able dict derived
deterministically from the value, dumped as canonical JSON (sorted keys,
no whitespace variance, NaN rejected) and fingerprinted with SHA-256.

That digest is the service's determinism contract: the same config run
through ``POST /jobs``, ``run-all``, or a bare ``execute_job`` must
produce byte-identical canonical summaries — the differential test in
``tests/test_serve_server.py`` holds the HTTP path to exactly this.

Summarizers are registered per result type; unknown types fall back to
(1) the object's own ``digest()`` method when it has one, (2) embedding
the value verbatim when it is already canonical-JSON-able, (3) a SHA-256
over the pickle bytes — deterministic for the repo's result types, whose
construction order is seeded (the same property the cache relies on).
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import asdict
from typing import Any, Callable, Dict, Type

from ..core.observations import Observation
from ..core.report import FigureData
from ..harness.jobs import EchoBundle, canonical_json
from ..scenarios.partition_event import PartitionResult
from ..sim.engine import ForkSimResult

__all__ = ["summarize", "summary_digest", "register_summarizer"]

_SUMMARIZERS: Dict[Type, Callable[[Any], Dict[str, Any]]] = {}


def register_summarizer(result_type: Type):
    """Decorator: install the summary builder for one result type."""

    def decorator(fn: Callable[[Any], Dict[str, Any]]):
        _SUMMARIZERS[result_type] = fn
        return fn

    return decorator


@register_summarizer(ForkSimResult)
def _summarize_fork_sim(value: ForkSimResult) -> Dict[str, Any]:
    return {
        "type": "ForkSimResult",
        "digest": value.digest(),
        "fork_number": value.fork_number,
        "fork_timestamp": value.fork_timestamp,
        "eth_blocks": len(value.eth_trace.numbers),
        "etc_blocks": len(value.etc_trace.numbers),
        "days": value.config.days,
        "seed": value.config.seed,
    }


@register_summarizer(PartitionResult)
def _summarize_partition(value: PartitionResult) -> Dict[str, Any]:
    summary: Dict[str, Any] = {
        "type": "PartitionResult",
        "config": asdict(value.config),
        "fork_time": value.fork_time,
        "handshake_refusals": value.handshake_refusals,
        "incompatible_disconnects": value.incompatible_disconnects,
        "node_loss_fraction": value.node_loss_fraction(),
        "minimum_etc_reachable": value.minimum_etc_reachable(),
        "snapshots": [asdict(snapshot) for snapshot in value.snapshots],
    }
    if value.robustness is not None:
        summary["robustness_digest"] = value.robustness.digest()
    return summary


@register_summarizer(FigureData)
def _summarize_figure(value: FigureData) -> Dict[str, Any]:
    return {
        "type": "FigureData",
        "figure_id": value.figure_id,
        "title": value.title,
        "series": sorted(value.series),
        "pickle_sha256": _pickle_digest(value),
    }


def _pickle_digest(value: Any) -> str:
    # Protocol pinned: the digest must not move when the interpreter's
    # default protocol does.
    return hashlib.sha256(pickle.dumps(value, protocol=4)).hexdigest()


def _summarize_fallback(value: Any) -> Dict[str, Any]:
    type_name = type(value).__name__
    digest_method = getattr(value, "digest", None)
    if callable(digest_method):
        return {"type": type_name, "digest": digest_method()}
    try:
        canonical_json({"value": value})
    except (TypeError, ValueError):
        return {"type": type_name, "pickle_sha256": _pickle_digest(value)}
    return {"type": type_name, "value": value}


def summarize(kind: str, value: Any) -> Dict[str, Any]:
    """The canonical summary for one job result."""
    if isinstance(value, list) and value and all(
        isinstance(item, Observation) for item in value
    ):
        summary: Dict[str, Any] = {
            "type": "Observations",
            "observations": [asdict(item) for item in value],
        }
    elif isinstance(value, EchoBundle):
        summary = {
            "type": "EchoBundle",
            "records": len(value.records),
            "pickle_sha256": _pickle_digest(value),
        }
    else:
        builder = _SUMMARIZERS.get(type(value), _summarize_fallback)
        summary = builder(value)
    summary["kind"] = kind
    return summary


def summary_digest(summary: Dict[str, Any]) -> str:
    """SHA-256 over the canonical-JSON rendering of a summary."""
    return hashlib.sha256(
        canonical_json(summary).encode("utf-8")
    ).hexdigest()
