"""The job registry: single-flight dedupe, live state, event fan-out.

Every submitted scenario reduces to a :class:`~repro.harness.JobSpec`
whose ``cache_key()`` is its content address, and the registry keys
everything on it.  ``submit`` resolves a request through four tiers,
cheapest first:

1. **memory** — a terminal ``ok`` job from this process's lifetime is
   returned as-is;
2. **store** — a completed row in the durable
   :class:`~repro.data.resultstore.ResultStore` (an earlier process
   computed it) is materialized into a terminal job, no engine work;
3. **inflight** (single-flight) — a queued/running job with the same key
   absorbs the request: the caller shares the job's id, its eventual
   digest, and its SSE stream, and ``serve.jobs.deduped`` counts the
   duplicate;
4. **executed** — only now does admission control charge the tenant and
   an executor task take the job to the worker pool.

Jobs publish a small event vocabulary (``queued``, ``started``,
``progress``, ``note``, ``metrics``, then terminal ``done``/``failed``)
into an append-only history; subscribers get the full history replayed
and then live events, so late SSE attachments never miss the digest.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import asdict
from typing import Any, Dict, List, Optional, Tuple

from ..data.resultstore import JobRow, ResultStore
from ..harness.jobs import JobSpec, canonical_json
from .quotas import AdmissionController
from .summary import summarize, summary_digest

__all__ = ["ServeJob", "JobRegistry", "TERMINAL_EVENTS"]

#: SSE event names that end a job's stream.
TERMINAL_EVENTS = ("done", "failed")

_TERMINAL_STATES = ("ok", "failed", "timeout")


class ServeJob:
    """One content-addressed job and its subscribers."""

    def __init__(
        self,
        key: str,
        kind: str,
        label: str,
        tenant: str,
        spec: Optional[JobSpec] = None,
    ) -> None:
        self.key = key
        self.kind = kind
        self.label = label
        self.tenant = tenant
        self.spec = spec
        self.state = "queued"
        self.digest: Optional[str] = None
        self.error: Optional[str] = None
        self.record: Optional[Dict[str, Any]] = None
        self.submitted_at = time.time()
        self.history: List[Tuple[str, Any]] = []
        self.done = asyncio.Event()
        self._subscribers: List[asyncio.Queue] = []
        self.task: Optional[asyncio.Task] = None

    # -- state -------------------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL_STATES

    def snapshot(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "job": self.key,
            "kind": self.kind,
            "label": self.label,
            "tenant": self.tenant,
            "state": self.state,
            "digest": self.digest,
            "error": self.error,
            "events": len(self.history),
        }
        if self.record is not None:
            payload["record"] = self.record
        return payload

    # -- event fan-out -----------------------------------------------------

    def publish(self, event: str, data: Any) -> None:
        """Append to history and push to every live subscriber."""
        self.history.append((event, data))
        for queue in self._subscribers:
            queue.put_nowait((event, data))

    def subscribe(self) -> Tuple[List[Tuple[str, Any]], asyncio.Queue]:
        """Atomically: the history so far plus a queue for what follows."""
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.append(queue)
        return list(self.history), queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        try:
            self._subscribers.remove(queue)
        except ValueError:
            pass

    def finish(
        self,
        state: str,
        digest: Optional[str] = None,
        error: Optional[str] = None,
        record: Optional[Dict[str, Any]] = None,
    ) -> None:
        if state not in _TERMINAL_STATES:
            raise ValueError(f"not a terminal state: {state!r}")
        self.state = state
        self.digest = digest
        self.error = error
        self.record = record
        if state == "ok":
            self.publish("done", {"job": self.key, "digest": digest,
                                  "state": state})
        else:
            self.publish("failed", {"job": self.key, "state": state,
                                    "error": error})
        self.done.set()


class JobRegistry:
    """Single-flight scheduling over the executor bridge and the store."""

    def __init__(
        self,
        executor,
        store: Optional[ResultStore] = None,
        admission: Optional[AdmissionController] = None,
        metrics=None,
    ) -> None:
        self.executor = executor
        self.store = store
        self.admission = admission or AdmissionController(metrics=metrics)
        self.metrics = metrics
        self.jobs: Dict[str, ServeJob] = {}

    # -- helpers -----------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"serve.jobs.{name}").inc(amount)

    @property
    def inflight(self) -> List[ServeJob]:
        return [job for job in self.jobs.values() if not job.terminal]

    def _materialize(self, row: JobRow) -> ServeJob:
        """A terminal job reconstructed from a durable store row."""
        job = ServeJob(row.key, row.kind, row.label, row.tenant)
        job.state = row.status
        job.digest = row.digest
        job.error = row.error
        job.submitted_at = row.submitted_at
        if row.status == "ok":
            job.publish("done", {"job": job.key, "digest": row.digest,
                                 "state": "ok", "source": "store"})
        else:
            job.publish("failed", {"job": job.key, "state": row.status,
                                   "error": row.error, "source": "store"})
        job.done.set()
        self.jobs[row.key] = job
        return job

    # -- public API --------------------------------------------------------

    def lookup(self, key: str) -> Optional[ServeJob]:
        """The live job for a key, materializing terminal store rows."""
        job = self.jobs.get(key)
        if job is not None:
            return job
        if self.store is not None:
            row = self.store.get_job(key)
            if row is not None and row.terminal:
                return self._materialize(row)
        return None

    def submit(self, spec: JobSpec, tenant: str) -> Tuple[ServeJob, str]:
        """Resolve one request; returns ``(job, source)``.

        ``source`` is one of ``memory`` / ``store`` / ``inflight`` /
        ``executed`` — the tier that answered (see module docstring).
        Raises :class:`~repro.serve.quotas.QuotaExceeded` only on the
        ``executed`` tier.
        """
        key = spec.cache_key()
        job = self.jobs.get(key)
        if job is not None:
            if not job.terminal:
                self._count("deduped")
                return job, "inflight"
            if job.state == "ok":
                self._count("replayed_memory")
                return job, "memory"
            # A failed/timeout terminal job may be retried: drop it and
            # fall through to a fresh submission.
            del self.jobs[key]
        if self.store is not None:
            row = self.store.get_job(key)
            if row is not None and row.status == "ok":
                job = self._materialize(row)
                self._count("replayed_store")
                return job, "store"
        self.admission.admit(tenant)  # may raise QuotaExceeded
        job = ServeJob(key, spec.kind, spec.label, tenant, spec=spec)
        self.jobs[key] = job
        if self.store is not None:
            self.store.record_submitted(
                key, spec.kind, spec.label, spec.params_json, tenant,
                submitted_at=job.submitted_at,
            )
        self._count("submitted")
        job.publish("queued", {"job": key, "kind": spec.kind,
                               "label": spec.label, "tenant": tenant})
        job.task = asyncio.get_running_loop().create_task(self._run(job))
        return job, "executed"

    # -- execution ---------------------------------------------------------

    def _on_started(self, job: ServeJob) -> None:
        if job.state == "queued":
            job.state = "running"
            self.admission.started(job.tenant)

    async def _run(self, job: ServeJob) -> None:
        started = False

        def mark_started() -> None:
            nonlocal started
            started = True
            self._on_started(job)

        try:
            result = await self.executor.execute(
                job.spec, publish=job.publish, on_started=mark_started
            )
        except Exception as exc:  # noqa: BLE001 - executor infrastructure
            self._settle_failure(
                job, "failed", f"executor error: {type(exc).__name__}: {exc}"
            )
            return
        finally:
            if not started:
                # The pool never picked it up (crash before start):
                # release the queued slot.
                self.admission.started(job.tenant)
            self.admission.finished(job.tenant)

        record = result.record
        record_dict = asdict(record)
        if record.status != "ok":
            self._count("failed")
            if self.store is not None:
                self.store.record_completed(
                    job.key, record.status, error=record.error,
                    attempts=record.attempts, wall_time=record.wall_time,
                )
            job.finish(record.status, error=record.error, record=record_dict)
            return

        summary = summarize(job.spec.kind, result.value)
        digest = summary_digest(summary)
        if self.metrics is not None:
            name = "serve.cache.hits" if record.cache_hit else "serve.cache.misses"
            self.metrics.counter(name).inc()
        self._count("completed")
        if self.store is not None:
            self.store.record_completed(
                job.key, "ok", digest=digest,
                summary_json=canonical_json(summary), kind=job.kind,
                attempts=record.attempts, wall_time=record.wall_time,
                cache_hit=record.cache_hit,
            )
        if record.metrics:
            job.publish("metrics", record.metrics)
        job.finish("ok", digest=digest, record=record_dict)

    def _settle_failure(self, job: ServeJob, state: str, error: str) -> None:
        self._count("failed")
        if self.store is not None:
            self.store.record_completed(job.key, "failed", error=error)
        job.finish(state, error=error)

    # -- shutdown ----------------------------------------------------------

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for every in-flight job to land; False on timeout."""
        waiters = [job.done.wait() for job in self.inflight]
        if not waiters:
            return True
        try:
            await asyncio.wait_for(asyncio.gather(*waiters), timeout)
        except asyncio.TimeoutError:
            return False
        return True
