"""Minimal HTTP/1.1 + Server-Sent Events on asyncio streams.

The scenario service deliberately runs on the standard library alone, so
this module hand-rolls the few pieces of HTTP it actually needs: parse a
request (line + headers + Content-Length body), render a response,
format SSE frames.  Every connection is ``Connection: close`` — the
service's clients are either one-shot JSON calls or long-lived SSE
streams, neither of which benefits from keep-alive, and closing per
request keeps the connection state machine trivial.

Limits are conservative and explicit: request line and each header line
at 8 KiB, 64 headers, 1 MiB bodies.  Anything outside them raises
:class:`HttpError`, which the server turns into a JSON error response.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HttpError",
    "Request",
    "Response",
    "read_request",
    "sse_event",
    "STATUS_REASONS",
]

MAX_LINE_BYTES = 8192
MAX_HEADERS = 64
MAX_BODY_BYTES = 1 << 20

STATUS_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request the server refuses, with the status to say so."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class Request:
    """One parsed request."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        headers: Dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        """The body parsed as JSON; 400 on anything malformed."""
        if not self.body:
            raise HttpError(400, "expected a JSON body")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"malformed JSON body: {exc}") from exc

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.headers.get(name.lower(), default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Request({self.method} {self.path})"


class Response:
    """One response, either complete (``body``) or streaming (``stream``).

    A streaming response carries an async iterator of byte chunks (SSE
    frames); the connection handler writes the header block and then
    drains the iterator, flushing per chunk.
    """

    __slots__ = ("status", "headers", "body", "stream")

    def __init__(
        self,
        status: int = 200,
        body: bytes = b"",
        content_type: str = "application/json",
        headers: Optional[Dict[str, str]] = None,
        stream=None,
    ) -> None:
        self.status = status
        self.body = body
        self.stream = stream
        self.headers = {"Content-Type": content_type}
        if headers:
            self.headers.update(headers)

    @classmethod
    def json(
        cls, payload: Any, status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> "Response":
        body = json.dumps(payload, sort_keys=True, indent=1).encode("utf-8")
        return cls(status=status, body=body + b"\n", headers=headers)

    @classmethod
    def error(cls, status: int, message: str) -> "Response":
        return cls.json({"error": message, "status": status}, status=status)

    @classmethod
    def sse(cls, stream) -> "Response":
        return cls(
            status=200,
            content_type="text/event-stream",
            headers={"Cache-Control": "no-store"},
            stream=stream,
        )

    def header_bytes(self) -> bytes:
        reason = STATUS_REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        headers = dict(self.headers)
        headers["Connection"] = "close"
        if self.stream is None:
            headers["Content-Length"] = str(len(self.body))
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""  # clean EOF between requests
        raise HttpError(400, "truncated request") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(400, "header line too long") from exc
    if len(line) > MAX_LINE_BYTES:
        raise HttpError(400, "header line too long")
    return line.rstrip(b"\r\n")


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request; None on a connection closed before any bytes."""
    request_line = await _read_line(reader)
    if not request_line:
        return None
    parts = request_line.split()
    if len(parts) != 3:
        raise HttpError(400, "malformed request line")
    method, target, version = (part.decode("latin-1") for part in parts)
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version}")

    headers: Dict[str, str] = {}
    while True:
        line = await _read_line(reader)
        if not line:
            break
        if len(headers) >= MAX_HEADERS:
            raise HttpError(400, "too many headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "truncated body") from exc
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(method, unquote(split.path), query, headers, body)


def sse_event(event: str, data: Any) -> bytes:
    """One Server-Sent Events frame: ``event:`` + single-line JSON data."""
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return f"event: {event}\ndata: {payload}\n\n".encode("utf-8")
