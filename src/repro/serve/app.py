"""Route table and handlers for the scenario service.

| Method | Path                  | Purpose                                  |
|--------|-----------------------|------------------------------------------|
| POST   | /jobs                 | submit a scenario (content-addressed)    |
| GET    | /jobs/{id}            | job status snapshot                      |
| GET    | /jobs/{id}/events     | SSE: history replay + live progress      |
| GET    | /results/{digest}     | canonical-JSON summary from the store    |
| GET    | /metrics              | server metrics + derived ratios          |
| GET    | /healthz              | liveness + drain state                   |

``POST /jobs`` takes ``{"kind": ..., "params": {...}, "label": ...?}``;
the (kind, params) pair is exactly a harness job, so digests agree with
``run-all`` byte-for-byte.  The response carries ``source`` — which tier
answered (``executed`` / ``inflight`` / ``memory`` / ``store``) — and
``deduped`` for the single-flight case; terminal answers are 200,
accepted-and-working answers are 202.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from ..harness.jobs import JobSpec, registered_kinds
from ..obs import MetricsRegistry
from .http import HttpError, Request, Response, sse_event
from .quotas import QuotaExceeded, tenant_for
from .registry import TERMINAL_EVENTS, JobRegistry, ServeJob

__all__ = ["ScenarioApp", "DEFAULT_ALLOWED_KINDS"]

#: Job kinds the service accepts by default — the public experiment
#: vocabulary.  The ``selftest-*`` kinds exist for the harness's own
#: tests and stay opt-in via ``ServeConfig.allowed_kinds``.
DEFAULT_ALLOWED_KINDS: Tuple[str, ...] = (
    "simulate",
    "partition",
    "chaos-partition",
    "topology-partition",
    "topology-infer",
    "echoes",
    "figure",
    "observations",
    "fork-lengths",
    "obs-probe",
    "perf-probe",
)


class ScenarioApp:
    """Dispatches parsed requests against the registry and store."""

    def __init__(
        self,
        registry: JobRegistry,
        store=None,
        metrics: Optional[MetricsRegistry] = None,
        allowed_kinds: Optional[Sequence[str]] = None,
    ) -> None:
        self.registry = registry
        self.store = store
        self.metrics = metrics
        self.allowed_kinds = tuple(allowed_kinds or DEFAULT_ALLOWED_KINDS)
        self.draining = False

    # -- dispatch ----------------------------------------------------------

    async def handle(self, request: Request) -> Response:
        if self.metrics is not None:
            self.metrics.counter("serve.http.requests").inc()
        segments = [part for part in request.path.split("/") if part]
        try:
            return await self._route(request, segments)
        except QuotaExceeded as exc:
            return Response.error(429, str(exc))
        except HttpError as exc:
            if self.metrics is not None:
                self.metrics.counter("serve.http.errors").inc()
            return Response.error(exc.status, exc.message)

    async def _route(self, request: Request, segments) -> Response:
        if segments == ["jobs"]:
            if request.method != "POST":
                raise HttpError(405, "use POST /jobs")
            return self._post_job(request)
        if len(segments) == 2 and segments[0] == "jobs":
            if request.method != "GET":
                raise HttpError(405, "use GET")
            return self._get_job(segments[1])
        if (len(segments) == 3 and segments[0] == "jobs"
                and segments[2] == "events"):
            if request.method != "GET":
                raise HttpError(405, "use GET")
            return self._get_events(segments[1])
        if len(segments) == 2 and segments[0] == "results":
            if request.method != "GET":
                raise HttpError(405, "use GET")
            return self._get_result(segments[1])
        if segments == ["metrics"]:
            if request.method != "GET":
                raise HttpError(405, "use GET")
            return self._get_metrics()
        if segments == ["healthz"]:
            if request.method != "GET":
                raise HttpError(405, "use GET")
            return self._get_healthz()
        raise HttpError(404, f"no route for {request.method} {request.path}")

    # -- handlers ----------------------------------------------------------

    def _post_job(self, request: Request) -> Response:
        if self.draining:
            raise HttpError(503, "server is draining; not accepting jobs")
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "body must be a JSON object")
        kind = payload.get("kind")
        params = payload.get("params", {})
        label = payload.get("label")
        if not isinstance(kind, str) or not kind:
            raise HttpError(400, "missing job 'kind'")
        if kind not in self.allowed_kinds:
            raise HttpError(
                400,
                f"kind {kind!r} is not served here "
                f"(allowed: {', '.join(self.allowed_kinds)})",
            )
        if kind not in registered_kinds():
            raise HttpError(400, f"no runner registered for kind {kind!r}")
        if not isinstance(params, dict):
            raise HttpError(400, "'params' must be a JSON object")
        if label is not None and not isinstance(label, str):
            raise HttpError(400, "'label' must be a string")
        try:
            spec = JobSpec.make(kind, params, label=label)
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"unusable params: {exc}") from exc

        tenant = tenant_for(request.headers)
        job, source = self.registry.submit(spec, tenant)
        return Response.json(
            self._job_payload(job, source=source),
            status=200 if job.terminal else 202,
        )

    def _job_payload(self, job: ServeJob, source: Optional[str] = None) -> Dict[str, Any]:
        payload = job.snapshot()
        if source is not None:
            payload["source"] = source
            payload["deduped"] = source == "inflight"
        links = {
            "self": f"/jobs/{job.key}",
            "events": f"/jobs/{job.key}/events",
        }
        if job.digest:
            links["result"] = f"/results/{job.digest}"
        payload["links"] = links
        return payload

    def _get_job(self, key: str) -> Response:
        job = self.registry.lookup(key)
        if job is None:
            raise HttpError(404, f"unknown job {key!r}")
        return Response.json(self._job_payload(job))

    def _get_events(self, key: str) -> Response:
        job = self.registry.lookup(key)
        if job is None:
            raise HttpError(404, f"unknown job {key!r}")
        return Response.sse(self._event_stream(job))

    async def _event_stream(self, job: ServeJob):
        history, queue = job.subscribe()
        try:
            terminal_seen = False
            for event, data in history:
                yield sse_event(event, data)
                terminal_seen = terminal_seen or event in TERMINAL_EVENTS
            if terminal_seen:
                return
            while True:
                event, data = await queue.get()
                yield sse_event(event, data)
                if event in TERMINAL_EVENTS:
                    return
        finally:
            job.unsubscribe(queue)

    def _get_result(self, digest: str) -> Response:
        if self.store is not None:
            found = self.store.get_result(digest)
            if found is not None:
                return Response.json(found)
        # Fall back to in-memory terminal jobs (store-less servers).
        for job in self.registry.jobs.values():
            if job.digest == digest and job.state == "ok":
                return Response.json(
                    {"digest": digest, "kind": job.kind, "job": job.key}
                )
        raise HttpError(404, f"no result with digest {digest!r}")

    def _get_metrics(self) -> Response:
        metrics = self.metrics or MetricsRegistry()
        dump = metrics.dump()
        counters = dump["counters"]
        hits = counters.get("serve.cache.hits", 0)
        misses = counters.get("serve.cache.misses", 0)
        deduped = counters.get("serve.jobs.deduped", 0)
        submitted = counters.get("serve.jobs.submitted", 0)
        payload: Dict[str, Any] = {
            "metrics": dump,
            "derived": {
                "cache_hit_ratio": hits / (hits + misses) if hits + misses else 0.0,
                "dedupe_ratio": deduped / (submitted + deduped)
                if submitted + deduped else 0.0,
                "deduped": deduped,
            },
        }
        if self.store is not None:
            payload["store"] = self.store.counts()
        return Response.json(payload)

    def _get_healthz(self) -> Response:
        return Response.json(
            {
                "ok": True,
                "draining": self.draining,
                "inflight": len(self.registry.inflight),
                "jobs_known": len(self.registry.jobs),
            }
        )
