"""Admission control: tenant identity and per-tenant/in-flight quotas.

Tenancy is deliberately lightweight — the service trusts its perimeter
(a reverse proxy, a VPN) for authentication and only needs a stable
*accounting identity* per caller:

* an explicit ``X-Repro-Tenant: <name>`` header wins;
* otherwise an ``Authorization: Bearer <token>`` is hashed to a stable
  pseudonym (the token itself is never stored or logged);
* otherwise the caller is the shared ``public`` tenant.

Quotas are counted over *engine-bound* jobs only: a request answered
from memory, the durable store, or the in-flight dedupe table costs the
tenant nothing — that asymmetry is the whole point of content-addressed
serving (the cheap path should be free so callers prefer it).  Breaches
raise :class:`QuotaExceeded`, which the HTTP layer maps to 429, and
every decision increments a per-tenant counter in the server's
:class:`~repro.obs.MetricsRegistry`.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["TenantQuota", "QuotaExceeded", "AdmissionController", "tenant_for"]

_TENANT_RE = re.compile(r"[^a-z0-9_.-]+")
PUBLIC_TENANT = "public"


def tenant_for(headers: Dict[str, str]) -> str:
    """Resolve the accounting identity for one request's headers."""
    explicit = headers.get("x-repro-tenant", "").strip().lower()
    if explicit:
        return _TENANT_RE.sub("-", explicit)[:64] or PUBLIC_TENANT
    authorization = headers.get("authorization", "")
    scheme, _, token = authorization.partition(" ")
    if scheme.lower() == "bearer" and token.strip():
        digest = hashlib.sha256(token.strip().encode("utf-8")).hexdigest()
        return f"tok-{digest[:12]}"
    return PUBLIC_TENANT


@dataclass(frozen=True)
class TenantQuota:
    """Limits applied to every tenant individually."""

    max_inflight: int = 2
    max_queued: int = 8

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.max_queued < 0:
            raise ValueError("max_queued must be >= 0")


class QuotaExceeded(Exception):
    """Admission refused; ``reason`` names the exhausted budget."""

    def __init__(self, tenant: str, reason: str) -> None:
        super().__init__(f"tenant {tenant!r}: {reason}")
        self.tenant = tenant
        self.reason = reason


class AdmissionController:
    """Book-keeping for queued/running jobs, globally and per tenant.

    The registry drives the lifecycle: :meth:`admit` when a new
    engine-bound job is accepted (raises on breach), :meth:`started`
    when its executor picks it up, :meth:`finished` when it lands.
    All calls happen on the event-loop thread, so plain dicts suffice.
    """

    def __init__(
        self,
        quota: Optional[TenantQuota] = None,
        max_inflight_total: int = 16,
        metrics=None,
    ) -> None:
        if max_inflight_total < 1:
            raise ValueError("max_inflight_total must be >= 1")
        self.quota = quota or TenantQuota()
        self.max_inflight_total = max_inflight_total
        self.metrics = metrics
        self._queued: Dict[str, int] = {}
        self._running: Dict[str, int] = {}

    # -- counters ----------------------------------------------------------

    def queued_for(self, tenant: str) -> int:
        return self._queued.get(tenant, 0)

    def running_for(self, tenant: str) -> int:
        return self._running.get(tenant, 0)

    @property
    def total_queued(self) -> int:
        return sum(self._queued.values())

    @property
    def total_running(self) -> int:
        return sum(self._running.values())

    @property
    def total_inflight(self) -> int:
        return self.total_queued + self.total_running

    def _count(self, name: str, tenant: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"serve.admission.{name}").inc()
            self.metrics.counter(f"serve.tenant.{tenant}.{name}").inc()

    def _update_gauges(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("serve.queue.depth").set(self.total_queued)
            self.metrics.gauge("serve.jobs.running").set(self.total_running)

    # -- lifecycle ---------------------------------------------------------

    def admit(self, tenant: str) -> None:
        """Count one new engine-bound job in, or raise QuotaExceeded."""
        if self.total_inflight >= self.max_inflight_total:
            self._count("rejected", tenant)
            raise QuotaExceeded(
                tenant,
                f"server at capacity ({self.max_inflight_total} jobs in flight)",
            )
        if self.running_for(tenant) >= self.quota.max_inflight and (
            self.queued_for(tenant) >= self.quota.max_queued
        ):
            self._count("rejected", tenant)
            raise QuotaExceeded(
                tenant,
                f"quota exhausted ({self.quota.max_inflight} running, "
                f"{self.quota.max_queued} queued)",
            )
        self._queued[tenant] = self.queued_for(tenant) + 1
        self._count("admitted", tenant)
        self._update_gauges()

    def started(self, tenant: str) -> None:
        if self.queued_for(tenant) > 0:
            self._queued[tenant] -= 1
        self._running[tenant] = self.running_for(tenant) + 1
        self._update_gauges()

    def finished(self, tenant: str) -> None:
        if self.running_for(tenant) > 0:
            self._running[tenant] -= 1
        elif self.queued_for(tenant) > 0:
            # A job that failed before its executor started still
            # releases the slot it was admitted into.
            self._queued[tenant] -= 1
        self._update_gauges()
