"""Server lifecycle: sockets, signals, maintenance, graceful drain.

``python -m repro serve`` builds a :class:`ScenarioServer` from a
:class:`ServeConfig` and parks in :meth:`ScenarioServer.serve_forever`
until SIGTERM/SIGINT.  Shutdown is graceful by construction:

1. stop accepting connections (the listener closes; ``/healthz`` and
   ``POST /jobs`` start reporting ``draining``),
2. wait up to ``drain_timeout`` for in-flight jobs to land — their
   subscribers receive the terminal SSE event and the durable store
   records the result,
3. cancel whatever connections remain (idle SSE clients), stop the
   maintenance loop, shut the executor down, close the store.

The maintenance loop periodically prunes the harness result cache to
``cache_max_bytes`` (LRU by mtime) so a long-lived server's disk use
stays bounded no matter how many distinct scenarios it has computed.

:class:`BackgroundServer` runs the same stack on a private event loop in
a daemon thread — the shape the test suite (and any embedding process)
uses to stand a live server up without blocking.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import sys
import threading
from dataclasses import dataclass
from typing import Optional, Set, Tuple

from ..data.resultstore import ResultStore
from ..harness.cache import ResultCache
from ..harness.pool import DEFAULT_TIMEOUT
from ..obs import MetricsRegistry
from .app import ScenarioApp
from .executor import ExecutorBridge
from .http import HttpError, Response, read_request
from .quotas import AdmissionController, TenantQuota
from .registry import JobRegistry

__all__ = ["ServeConfig", "ScenarioServer", "BackgroundServer"]


@dataclass
class ServeConfig:
    """Everything ``python -m repro serve`` can tune."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port; the bound port is printed and exposed
    #: as :attr:`ScenarioServer.port`.
    port: int = 8734
    cache_dir: Optional[str] = ".repro-cache"
    db_path: Optional[str] = ".repro-serve.db"
    workers: int = 1
    timeout: Optional[float] = DEFAULT_TIMEOUT
    retries: int = 1
    #: Base seconds before a job's first retry (deterministic seeded
    #: jitter; see :meth:`repro.harness.pool.WorkerPool.backoff_delay`).
    retry_backoff: float = 0.0
    max_threads: int = 4
    max_inflight: int = 16
    tenant_max_inflight: int = 2
    tenant_max_queued: int = 8
    cache_max_bytes: Optional[int] = None
    maintenance_interval: float = 60.0
    drain_timeout: float = 30.0
    allowed_kinds: Optional[Tuple[str, ...]] = None
    collect_metrics: bool = True


class ScenarioServer:
    """One serving process: listener + registry + store + maintenance."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.metrics = MetricsRegistry()
        self.store: Optional[ResultStore] = None
        self.registry: Optional[JobRegistry] = None
        self.app: Optional[ScenarioApp] = None
        self.executor: Optional[ExecutorBridge] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Set[asyncio.Task] = set()
        self._maintenance_task: Optional[asyncio.Task] = None
        self._stop = asyncio.Event()
        self.port: Optional[int] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        config = self.config
        self.store = ResultStore(config.db_path) if config.db_path else None
        self.executor = ExecutorBridge(
            workers=config.workers,
            cache_dir=config.cache_dir,
            timeout=config.timeout,
            retries=config.retries,
            collect_metrics=config.collect_metrics,
            max_threads=config.max_threads,
            retry_backoff=config.retry_backoff,
        )
        admission = AdmissionController(
            quota=TenantQuota(
                max_inflight=config.tenant_max_inflight,
                max_queued=config.tenant_max_queued,
            ),
            max_inflight_total=config.max_inflight,
            metrics=self.metrics,
        )
        self.registry = JobRegistry(
            self.executor, store=self.store, admission=admission,
            metrics=self.metrics,
        )
        self.app = ScenarioApp(
            self.registry, store=self.store, metrics=self.metrics,
            allowed_kinds=config.allowed_kinds,
        )
        self._server = await asyncio.start_server(
            self._on_connection, host=config.host, port=config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if config.cache_dir and config.cache_max_bytes is not None:
            self._maintenance_task = asyncio.get_running_loop().create_task(
                self._maintenance_loop()
            )

    async def serve_forever(self, install_signals: bool = True) -> int:
        """Start, announce, park until a stop signal, drain, exit 0."""
        await self.start()
        loop = asyncio.get_running_loop()
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError, ValueError):
                    loop.add_signal_handler(signum, self._stop.set)
        print(
            f"serve: listening on http://{self.config.host}:{self.port}",
            flush=True,
        )
        await self._stop.wait()
        print("serve: shutting down (draining in-flight jobs)", flush=True)
        drained = await self.shutdown()
        print(
            "serve: drained cleanly" if drained
            else "serve: drain timed out; some jobs were abandoned",
            flush=True,
        )
        return 0

    def request_stop(self) -> None:
        self._stop.set()

    async def shutdown(self) -> bool:
        """Graceful teardown; True when every job drained in time."""
        if self.app is not None:
            self.app.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        drained = True
        if self.registry is not None:
            drained = await self.registry.drain(self.config.drain_timeout)
        if self._maintenance_task is not None:
            self._maintenance_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._maintenance_task
        # Give SSE subscribers one scheduling pass to flush the terminal
        # events the drain produced, then cancel the stragglers.
        await asyncio.sleep(0)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self.executor is not None:
            self.executor.shutdown()
        if self.store is not None:
            self.store.close()
        return drained

    # -- connections -------------------------------------------------------

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.get_running_loop().create_task(
            self._handle_connection(reader, writer)
        )
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        response: Optional[Response] = None
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                response = await self.app.handle(request)
            except HttpError as exc:
                response = Response.error(exc.status, exc.message)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - last-resort 500
                print(f"serve: internal error: {exc!r}", file=sys.stderr)
                response = Response.error(500, "internal server error")
            await self._write_response(writer, response)
        except (ConnectionError, BrokenPipeError, TimeoutError):
            pass  # client went away mid-response
        except asyncio.CancelledError:
            pass  # shutdown cancelled this connection
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: Response
    ) -> None:
        writer.write(response.header_bytes())
        if response.stream is None:
            writer.write(response.body)
            await writer.drain()
            return
        stream = response.stream
        try:
            async for chunk in stream:
                writer.write(chunk)
                await writer.drain()
        finally:
            aclose = getattr(stream, "aclose", None)
            if aclose is not None:
                with contextlib.suppress(Exception):
                    await aclose()

    # -- maintenance -------------------------------------------------------

    async def _maintenance_loop(self) -> None:
        config = self.config
        cache = ResultCache(config.cache_dir)
        while True:
            await asyncio.sleep(config.maintenance_interval)
            pruned = await asyncio.to_thread(
                cache.prune, config.cache_max_bytes
            )
            if pruned.evicted:
                self.metrics.counter("serve.cache.evictions").inc(
                    pruned.evicted
                )
                self.metrics.counter("serve.cache.bytes_evicted").inc(
                    pruned.bytes_evicted
                )
            self.metrics.gauge("serve.cache.bytes").set(
                pruned.remaining_bytes
            )


class BackgroundServer:
    """A :class:`ScenarioServer` on a private loop in a daemon thread.

    ``start()`` blocks until the listener is bound (so ``.port`` is
    valid); ``stop()`` triggers the same graceful drain as a signal and
    joins the thread.  Used by the test suite and embeddable anywhere a
    blocking process-wide ``serve_forever`` is inconvenient.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig(port=0)
        self.server: Optional[ScenarioServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        assert self.server is not None and self.server.port is not None
        return self.server.port

    @property
    def address(self) -> Tuple[str, int]:
        return (self.config.host, self.port)

    def start(self, timeout: float = 30.0) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error!r}"
            )
        return self

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._thread is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self.server.request_stop)
            self._thread.join(timeout)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _thread_main(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.server = ScenarioServer(self.config)
        try:
            await self.server.start()
        except BaseException as exc:  # noqa: BLE001 - surface to starter
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self.server._stop.wait()
        await self.server.shutdown()
