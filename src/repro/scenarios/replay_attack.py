"""The replay-attack workload: who echoed what, when — Figure 4's source.

Mechanism recap (paper, Section 3.3): every pre-fork account exists on both
chains with the same balance and nonce.  A transaction signed without a
chain id is valid on both; so until a user *splits* their funds (moves
them to chain-specific addresses), anyone — typically the transaction's
recipient — can rebroadcast it on the sibling chain and collect twice.

The generator models the user population's slow march to safety:

* ``replayable_fraction(day)`` — share of ETH transactions sent from
  still-unsplit, non-chain-id accounts.  Starts near 0.9 (nobody had
  split: ETC "was not widely expected to survive") and decays as the
  Ethereum Foundation's advice (day ~6, [8] in the paper) and wallet
  tooling spread, with a second drop when ETC activates EIP-155-style
  chain ids (day ~177, January 2017).
* ``rebroadcast_probability(day)`` — share of replayable transactions
  actually echoed.  High initially (bots actively farmed the overlap),
  decaying to a persistent floor — the paper still measured "hundreds of
  daily rebroadcast transactions even today" at submission time — with
  bumps during the October/November contract-transaction spikes.
* A small fraction of echoes are *intentional* same-time broadcasts
  (users deliberately executing on both chains), giving Figure 4's
  "Same time" class.

Output is a stream of :class:`~repro.data.records.TxRecord` sightings for
both chains (echoed transactions appear twice, with the replay lag), ready
for the :class:`~repro.core.echoes.EchoDetector` — plus the generator's
own ground truth for validating the detector.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..data.records import TxRecord
from ..data.windows import DAY
from ..sim.clock import FORK_TIMESTAMP

__all__ = ["ReplayModel", "ReplayWorkloadConfig", "ReplayWorkload", "GroundTruth"]


@dataclass(frozen=True)
class ReplayModel:
    """The behavioural decay curves (all days since fork)."""

    initial_replayable: float = 0.92
    split_adoption_tau_days: float = 45.0
    replayable_floor: float = 0.22
    chain_id_day: float = 177.0  # ETC's Jan 13, 2017 fork
    chain_id_factor: float = 0.45  # replayable share that survives EIP-155
    #: Echoed transactions are *observed as part of* the destination
    #: chain's volume, so the product replayable x rebroadcast must keep
    #: day-one echoes at the paper's ~50-60% of ETC traffic (ETH's volume
    #: is ~2.5x ETC's): 0.92 x 0.25 x 2.5 ≈ 0.57.
    initial_rebroadcast: float = 0.25
    rebroadcast_tau_days: float = 9.0
    rebroadcast_floor: float = 0.016
    #: (start day, end day, extra probability) bump windows — the
    #: contract-spike-correlated surges in October/November.
    bumps: Tuple[Tuple[float, float, float], ...] = (
        (78.0, 92.0, 0.06),
        (108.0, 122.0, 0.10),
    )
    #: Probability an echo is an intentional both-chains broadcast.
    intentional_fraction: float = 0.12
    #: Fraction of ETC-native transactions echoed into ETH (the reverse
    #: direction is an order of magnitude rarer: fewer ETC-only actors).
    reverse_scale: float = 0.12

    def replayable_fraction(self, day: float) -> float:
        decayed = self.replayable_floor + (
            self.initial_replayable - self.replayable_floor
        ) * math.exp(-max(day, 0.0) / self.split_adoption_tau_days)
        if day >= self.chain_id_day:
            decayed *= self.chain_id_factor
        return decayed

    def rebroadcast_probability(self, day: float) -> float:
        probability = self.rebroadcast_floor + (
            self.initial_rebroadcast - self.rebroadcast_floor
        ) * math.exp(-max(day, 0.0) / self.rebroadcast_tau_days)
        for start, end, extra in self.bumps:
            if start <= day < end:
                probability += extra
        return min(probability, 1.0)

    def expected_echoes_into(self, day: float, source_tx_count: float) -> float:
        """Expected echo count for one day, given source-chain volume."""
        return (
            source_tx_count
            * self.replayable_fraction(day)
            * self.rebroadcast_probability(day)
        )


@dataclass
class ReplayWorkloadConfig:
    days: int = 270
    seed: int = 4242
    model: ReplayModel = field(default_factory=ReplayModel)
    #: Fraction of never-echoed transactions also materialized as records
    #: (background noise for the detector; totals come from the traces).
    background_sample: float = 0.01
    #: Echo lag distribution (lognormal, seconds): median ~2 hours with a
    #: heavy tail of day-scale replays.
    lag_median_seconds: float = 2 * 3600.0
    lag_sigma: float = 1.4


@dataclass
class GroundTruth:
    """What the generator actually injected, for detector validation."""

    echoes_into: Dict[str, int] = field(default_factory=dict)
    same_time: int = 0
    per_day_into_etc: Dict[int, int] = field(default_factory=dict)

    def total(self) -> int:
        return sum(self.echoes_into.values())


class ReplayWorkload:
    """Generates the two chains' transaction-sighting streams."""

    def __init__(self, config: Optional[ReplayWorkloadConfig] = None) -> None:
        self.config = config or ReplayWorkloadConfig()
        self.rng = random.Random(self.config.seed)
        self._counter = 0

    def _fresh_hash(self) -> bytes:
        self._counter += 1
        return self._counter.to_bytes(8, "big") + self.rng.randbytes(24)

    def _fresh_address(self) -> bytes:
        return self.rng.randbytes(20)

    def _record(
        self, chain: str, tx_hash: bytes, timestamp: int, protected: bool
    ) -> TxRecord:
        return TxRecord(
            chain=chain,
            tx_hash=tx_hash,
            block_number=0,  # block linkage is irrelevant to echo analysis
            timestamp=timestamp,
            sender=self._fresh_address(),
            to=self._fresh_address(),
            value=self.rng.randrange(1, 10**18),
            is_contract=self.rng.random() < 0.33,
            replay_protected=protected,
        )

    def generate(
        self,
        eth_daily_tx: Sequence[float],
        etc_daily_tx: Sequence[float],
    ) -> Tuple[List[TxRecord], GroundTruth]:
        """Produce time-ordered sightings for both chains.

        ``eth_daily_tx``/``etc_daily_tx`` are the total daily volumes from
        the fork simulation traces — the echo workload scales against real
        chain activity rather than inventing its own.
        """
        config = self.config
        model = config.model
        records: List[TxRecord] = []
        truth = GroundTruth(echoes_into={"ETH": 0, "ETC": 0})

        days = min(config.days, len(eth_daily_tx), len(etc_daily_tx))
        for day in range(days):
            day_start = FORK_TIMESTAMP + day * DAY
            for origin, destination, volume, scale in (
                ("ETH", "ETC", eth_daily_tx[day], 1.0),
                ("ETC", "ETH", etc_daily_tx[day], model.reverse_scale),
            ):
                expected = model.expected_echoes_into(day, volume) * scale
                echo_count = self._poisson(expected)
                for _ in range(echo_count):
                    tx_hash = self._fresh_hash()
                    origin_ts = day_start + self.rng.randrange(DAY)
                    if self.rng.random() < model.intentional_fraction:
                        # Intentional both-chain broadcast: near-zero lag.
                        lag = self.rng.randrange(60, 900)
                        truth.same_time += 1
                    else:
                        lag = int(
                            config.lag_median_seconds
                            * self.rng.lognormvariate(0.0, config.lag_sigma)
                        )
                    records.append(
                        self._record(origin, tx_hash, origin_ts, False)
                    )
                    records.append(
                        self._record(
                            destination, tx_hash, origin_ts + max(lag, 1), False
                        )
                    )
                    truth.echoes_into[destination] += 1
                    if destination == "ETC":
                        day_index = (origin_ts + max(lag, 1)) // DAY
                        truth.per_day_into_etc[day_index] = (
                            truth.per_day_into_etc.get(day_index, 0) + 1
                        )

                # Background (never-echoed) sightings on the origin chain.
                background = int(volume * config.background_sample)
                for _ in range(background):
                    protected = self.rng.random() < (
                        0.0 if day < model.chain_id_day else 0.5
                    )
                    records.append(
                        self._record(
                            origin,
                            self._fresh_hash(),
                            day_start + self.rng.randrange(DAY),
                            protected,
                        )
                    )

        records.sort(key=lambda record: record.timestamp)
        return records, truth

    def _poisson(self, lam: float) -> int:
        if lam <= 0:
            return 0
        if lam > 50:
            return max(0, round(self.rng.gauss(lam, math.sqrt(lam))))
        threshold = math.exp(-lam)
        count = 0
        product = self.rng.random()
        while product > threshold:
            count += 1
            product *= self.rng.random()
        return count
