"""Transient forks: the baseline fork behaviour the paper contrasts with.

Section 2.1: "two miners will occasionally mine a block before they are
aware of the fact that the other did so as well ... this situation will
ultimately be resolved ... This type of fork is termed a transient fork."

The protocol resolves these automatically (heaviest chain); what makes
them *interesting* as a baseline is their rate: two blocks race exactly
when both are found within one propagation interval, so the transient
fork rate ≈ propagation delay / block interval.  This scenario runs the
message-level network at several latency settings and measures the orphan
rate, demonstrating that the substrate's transient forks behave like the
real network's — and, by contrast, that the DAO fork's *persistence* is a
property of validation rules, not of racing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from ..chain.chainstore import Blockchain
from ..chain.config import PRE_FORK_CONFIG
from ..chain.genesis import build_genesis
from ..net.latency import ConstantLatency
from ..net.network import Network
from ..net.node import FullNode
from ..net.simulator import Simulator

__all__ = ["TransientForkConfig", "TransientForkOutcome", "run_transient_forks"]


@dataclass
class TransientForkConfig:
    num_miners: int = 10
    miner_hashrate: float = 1e6
    #: One-way link latency in seconds (the sweep variable).
    latency: float = 0.1
    #: Mean block interval to calibrate difficulty for.
    block_interval: float = 14.0
    duration: float = 4 * 3600.0
    seed: int = 61


@dataclass
class TransientForkOutcome:
    config: TransientForkConfig
    canonical_blocks: int
    orphan_blocks: int
    converged: bool
    #: Orphans later referenced as uncles by canonical blocks — the
    #: protocol's compensation mechanism for transient-fork losers.
    uncles_included: int = 0

    @property
    def orphan_rate(self) -> float:
        total = self.canonical_blocks + self.orphan_blocks
        return self.orphan_blocks / total if total else 0.0

    @property
    def uncle_recovery_rate(self) -> float:
        """Fraction of orphans that ended up referenced as uncles."""
        if self.orphan_blocks == 0:
            return 0.0
        return min(1.0, self.uncles_included / self.orphan_blocks)

    @property
    def predicted_rate(self) -> float:
        """First-order theory: delay / block interval."""
        return min(1.0, self.config.latency / self.config.block_interval)


def run_transient_forks(
    config: Optional[TransientForkConfig] = None,
) -> TransientForkOutcome:
    """Run one latency setting; returns the measured orphan rate."""
    config = config or TransientForkConfig()
    total_hashrate = config.num_miners * config.miner_hashrate
    difficulty = int(total_hashrate * config.block_interval)
    genesis, _ = build_genesis({}, difficulty=max(difficulty, 131_072))

    prefork = replace(PRE_FORK_CONFIG, dao_fork_block=10**9, bomb_delay=10**9)
    sim = Simulator()
    network = Network(
        sim, latency=ConstantLatency(config.latency), seed=config.seed
    )
    for index in range(config.num_miners):
        network.add_node(
            FullNode(
                f"miner{index:02d}",
                Blockchain(prefork, genesis, execute_transactions=False),
                mining_hashrate=config.miner_hashrate,
                rng_seed=config.seed * 100 + index,
            )
        )
    network.bootstrap_mesh(target_degree=min(8, config.num_miners - 1))
    network.schedule_redial_loop(60.0)
    sim.run_until(30)
    network.start_all_miners()
    sim.run_until(30 + config.duration)

    # Count from the node with the longest view; orphans are stored
    # blocks off its canonical chain.
    best = max(network.nodes.values(), key=lambda n: n.chain.height)
    canonical = best.chain.height
    orphans = len(best.chain.orphaned_blocks())
    uncles = sum(len(b.ommers) for b in best.chain.canonical_blocks())
    heads = {node.chain.head.block_hash for node in network.nodes.values()}
    return TransientForkOutcome(
        config=config,
        canonical_blocks=canonical,
        orphan_blocks=orphans,
        converged=len(heads) == 1,
        uncles_included=uncles,
    )


def latency_sweep(
    latencies: List[float], base: Optional[TransientForkConfig] = None
) -> List[TransientForkOutcome]:
    """Measure the orphan rate across a latency sweep."""
    base = base or TransientForkConfig()
    outcomes = []
    for latency in latencies:
        config = replace(base, latency=latency)
        outcomes.append(run_transient_forks(config))
    return outcomes
