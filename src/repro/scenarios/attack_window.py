"""The post-fork vulnerability window — quantifying Section 3.2's warning.

"These observations together highlight that the network may be vulnerable
in the time period immediately following the fork: an attacker may have
been able to use the unexpected short-term dynamics of forks (e.g., the
fact that many network parameters such as difficulty and neighbor lists
are in flux) to interfere with the operation of the network."

This module quantifies the mining-power half of that warning.  Before the
fork, an attacker holding a fixed slice of the *combined* network — far
too small to threaten it — suddenly becomes a large fraction of whichever
side the honest majority abandons.  We compute, day by day:

* the attacker's share of the minority chain's hashpower;
* the classic Nakamoto catch-up probability from ``z`` blocks behind
  (``1`` if the attacker holds a majority, ``(q/p)^z`` otherwise);
* the expected cost (attacker hash-work) of a 6-confirmation double
  spend, in both hashes and — via the exchange rate — USD of equivalent
  honest mining revenue forgone.

The result is the **vulnerability window**: the span of days during which
a given attacker budget yields majority control of ETC.  Validated
against a Monte-Carlo race simulation in the tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = [
    "catchup_probability",
    "simulate_race",
    "AttackAssessment",
    "assess_attack_window",
]


def catchup_probability(attacker_share: float, deficit: int) -> float:
    """Nakamoto's gambler's-ruin result.

    An attacker holding fraction ``q`` of the chain's hashpower, starting
    ``deficit`` blocks behind, eventually overtakes with probability 1 if
    q > 1/2, else ``(q/p)^deficit`` with p = 1-q.
    """
    if not 0 <= attacker_share <= 1:
        raise ValueError("share must be in [0, 1]")
    if deficit <= 0:
        return 1.0
    if attacker_share >= 0.5:
        return 1.0
    q = attacker_share
    p = 1.0 - q
    return (q / p) ** deficit


def simulate_race(
    attacker_share: float,
    deficit: int,
    trials: int = 2000,
    max_steps: int = 100_000,
    seed: int = 51,
) -> float:
    """Monte-Carlo check of :func:`catchup_probability`.

    Each block goes to the attacker with probability ``attacker_share``;
    the race ends when the attacker's private branch overtakes (win) or
    falls ``max deficit`` hopeless for the step budget (loss).
    """
    rng = random.Random(seed)
    wins = 0
    for _ in range(trials):
        gap = deficit
        for _ in range(max_steps):
            if rng.random() < attacker_share:
                gap -= 1
            else:
                gap += 1
            if gap == 0:
                # "Catches up" in Nakamoto's sense: the private branch
                # draws level, after which broadcasting wins the race.
                wins += 1
                break
    return wins / trials


@dataclass(frozen=True)
class AttackAssessment:
    """One day's attack economics on the minority chain."""

    day: int
    #: Attacker hashrate as a fraction of the *pre-fork combined* network.
    attacker_prefork_share: float
    #: The same hashpower as a fraction of the minority chain that day.
    attacker_minority_share: float
    #: P(rewrite a 6-confirmation payment).
    double_spend_probability: float
    #: Expected attacker hash-work to mine 6 blocks at that day's
    #: difficulty (the direct cost floor of the attack).
    expected_hashes: float
    #: That work valued at the day's honest mining revenue (USD).
    opportunity_cost_usd: float

    @property
    def has_majority(self) -> bool:
        return self.attacker_minority_share >= 0.5


def assess_attack_window(
    minority_hashrate: Sequence[float],
    minority_difficulty: Sequence[float],
    minority_price_usd: Sequence[float],
    prefork_hashrate: float,
    attacker_prefork_share: float = 0.02,
    confirmations: int = 6,
    block_reward: float = 5.0,
) -> List[AttackAssessment]:
    """Evaluate an attacker budget across the post-fork days.

    ``minority_hashrate``/``minority_difficulty``/``minority_price_usd``
    are aligned daily series for the minority chain (ETC); the attacker
    holds ``attacker_prefork_share`` of ``prefork_hashrate`` throughout —
    e.g. 2% of the pre-fork network, which no one would call a threat on
    July 19th.
    """
    if not 0 < attacker_prefork_share < 1:
        raise ValueError("attacker share must be in (0, 1)")
    attacker_hashrate = attacker_prefork_share * prefork_hashrate
    days = min(
        len(minority_hashrate), len(minority_difficulty), len(minority_price_usd)
    )
    assessments = []
    for day in range(days):
        honest = minority_hashrate[day]
        share = attacker_hashrate / (attacker_hashrate + honest)
        probability = catchup_probability(share, confirmations)
        expected_hashes = confirmations * minority_difficulty[day]
        # Opportunity cost: the honest revenue the same work would earn.
        revenue_per_hash = (
            block_reward * minority_price_usd[day] / minority_difficulty[day]
            if minority_difficulty[day] > 0
            else 0.0
        )
        assessments.append(
            AttackAssessment(
                day=day,
                attacker_prefork_share=attacker_prefork_share,
                attacker_minority_share=share,
                double_spend_probability=probability,
                expected_hashes=expected_hashes,
                opportunity_cost_usd=expected_hashes * revenue_per_hash,
            )
        )
    return assessments


def vulnerability_window_days(
    assessments: Sequence[AttackAssessment],
) -> Optional[int]:
    """Length of the initial contiguous run of majority-control days."""
    run = 0
    for assessment in assessments:
        if assessment.has_majority:
            run += 1
        else:
            break
    return run or None
