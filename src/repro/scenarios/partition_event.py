"""The message-level partition scenario — Observation 1.

Reconstructs the node-level view of the fork: a population of full nodes
runs the pre-fork protocol; ahead of the activation height most operators
upgrade (the fork was scheduled, so software shipped in advance); at the
fork block the chains diverge, handshake fork-checks and invalid-block
disconnects tear the mesh apart, and the minority side's *reachable
network* collapses — "a sudden loss of roughly 90% of the nodes in its
network immediately after the fork".

Measurement mirrors the authors' vantage point: a crawler starting from a
known ETC node counts how many peers it can reach by following peer links
(:func:`reachable_nodes`).  The scenario also records mean peer counts per
side, showing the slower *recovery* as fork-blind Kademlia discovery keeps
suggesting peers and compatible ones stick ("an influx of nodes re-joined
ETC over the subsequent two weeks" — at this scenario's compressed scale,
over the following simulated hours).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Optional, Set

from ..chain.chainstore import Blockchain
from ..chain.config import ETC_CONFIG, ETH_CONFIG
from ..chain.difficulty import equilibrium_difficulty
from ..chain.genesis import build_genesis
from ..net.latency import LognormalLatency
from ..net.network import Network
from ..net.node import FullNode
from ..net.simulator import Simulator

__all__ = [
    "PartitionScenarioConfig",
    "PartitionSnapshot",
    "PartitionResult",
    "PartitionScenario",
    "reachable_nodes",
]


def reachable_nodes(network: Network, seed_name: str) -> Set[str]:
    """Crawl the mesh: every node reachable from ``seed_name`` by
    following live peer links (what a network crawler would count)."""
    seen: Set[str] = set()
    frontier = [seed_name]
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        node = network.nodes.get(name)
        if node is None or not node.online:
            continue
        seen.add(name)
        frontier.extend(node.peers)
    return seen


@dataclass
class PartitionScenarioConfig:
    """A compressed fork: ~minutes of simulated time per paper-day."""

    num_nodes: int = 60
    num_miners: int = 18
    #: Fraction of nodes (and miners) that upgrade to the pro-fork client.
    upgrade_fraction: float = 0.9
    fork_block: int = 40
    #: Per-miner hashrate; total sets the pre-fork equilibrium difficulty.
    miner_hashrate: float = 2e6
    target_degree: int = 8
    seed: int = 20160720
    #: Simulated seconds past the fork block to keep running.
    post_fork_horizon: float = 4 * 3600.0
    census_interval: float = 600.0
    redial_interval: float = 60.0


@dataclass(frozen=True)
class PartitionSnapshot:
    """One census row."""

    time: float
    eth_height: int
    etc_height: int
    #: Crawl sizes from each side's seed node.
    eth_reachable: int
    etc_reachable: int
    #: Mean live peer count per side.
    eth_mean_peers: float
    etc_mean_peers: float


@dataclass
class PartitionResult:
    config: PartitionScenarioConfig
    snapshots: List[PartitionSnapshot]
    fork_time: Optional[float]
    handshake_refusals: int
    incompatible_disconnects: int

    def minimum_etc_reachable(self) -> int:
        post = [s for s in self.snapshots if self.fork_time and s.time >= self.fork_time]
        if not post:
            return 0
        return min(s.etc_reachable for s in post)

    def node_loss_fraction(self) -> float:
        """Observation 1: reachable-network shrinkage for the ETC side.

        Baseline is the pre-fork reachable mesh (everyone); the post-fork
        floor is the smallest ETC crawl.
        """
        pre = [s for s in self.snapshots if not self.fork_time or s.time < self.fork_time]
        baseline = max((s.etc_reachable for s in pre), default=0)
        if baseline == 0:
            return 0.0
        return 1.0 - self.minimum_etc_reachable() / baseline


class PartitionScenario:
    """Build, run, and measure the partition event."""

    def __init__(self, config: Optional[PartitionScenarioConfig] = None) -> None:
        self.config = config or PartitionScenarioConfig()

    def run(self) -> PartitionResult:
        config = self.config
        rng = random.Random(config.seed)

        total_hashrate = config.num_miners * config.miner_hashrate
        genesis, _ = build_genesis(
            alloc={}, difficulty=equilibrium_difficulty(total_hashrate)
        )

        # Everyone starts on the legacy client: no DAO fork support.  The
        # configs use the scenario's compressed fork height.
        etc_config = replace(
            ETC_CONFIG,
            dao_fork_block=config.fork_block,
            gas_reprice_block=None,
            replay_protection_block=None,
            bomb_delay=10**9,
        )
        eth_config = replace(
            ETH_CONFIG,
            dao_fork_block=config.fork_block,
            gas_reprice_block=None,
            replay_protection_block=None,
            bomb_delay=10**9,
        )

        sim = Simulator()
        network = Network(
            sim, latency=LognormalLatency(median=0.12), seed=config.seed
        )

        upgraders: List[str] = []
        holdouts: List[str] = []
        for index in range(config.num_nodes):
            is_miner = index < config.num_miners
            node = FullNode(
                name=f"n{index:03d}",
                chain=Blockchain(etc_config, genesis, execute_transactions=False),
                mining_hashrate=config.miner_hashrate if is_miner else 0.0,
                region=rng.choice(["na", "eu", "as"]),
                rng_seed=config.seed * 1000 + index,
            )
            network.add_node(node)
            if rng.random() < config.upgrade_fraction:
                upgraders.append(node.name)
            else:
                holdouts.append(node.name)
        if not holdouts:
            holdouts.append(upgraders.pop())
        if not upgraders:
            upgraders.append(holdouts.pop())

        network.bootstrap_mesh(target_degree=config.target_degree)
        network.schedule_redial_loop(config.redial_interval)
        sim.run_until(120)  # let handshakes settle
        network.start_all_miners()

        # Upgrades roll out while the chain approaches the fork height —
        # operators installed the forking client days ahead; compressed
        # here to a window before activation.
        expected_fork_time = sim.now + config.fork_block * 14.0
        for position, name in enumerate(upgraders):
            when = sim.now + (position / max(1, len(upgraders))) * (
                0.6 * config.fork_block * 14.0
            )
            sim.schedule_at(
                when, network.nodes[name].upgrade, eth_config
            )

        snapshots: List[PartitionSnapshot] = []
        fork_time_holder: List[float] = []

        eth_seed = upgraders[0]
        etc_seed = holdouts[0]

        def census() -> None:
            eth_nodes = [
                network.nodes[n]
                for n in network.nodes
                if network.nodes[n].config.dao_fork_support
            ]
            etc_nodes = [
                network.nodes[n]
                for n in network.nodes
                if not network.nodes[n].config.dao_fork_support
            ]
            eth_height = max((n.chain.height for n in eth_nodes), default=0)
            etc_height = max((n.chain.height for n in etc_nodes), default=0)
            if not fork_time_holder and max(eth_height, etc_height) >= config.fork_block:
                fork_time_holder.append(sim.now)
            snapshots.append(
                PartitionSnapshot(
                    time=sim.now,
                    eth_height=eth_height,
                    etc_height=etc_height,
                    eth_reachable=len(reachable_nodes(network, eth_seed)),
                    etc_reachable=len(reachable_nodes(network, etc_seed)),
                    eth_mean_peers=_mean(len(n.peers) for n in eth_nodes),
                    etc_mean_peers=_mean(len(n.peers) for n in etc_nodes),
                )
            )

        end_time = expected_fork_time + config.post_fork_horizon
        tick = sim.now
        while tick <= end_time:
            sim.schedule_at(tick, census)
            tick += config.census_interval
        sim.run_until(end_time)

        refusals = sum(
            node.stats["handshakes_refused"] for node in network.nodes.values()
        )
        incompatible = sum(
            node.stats["disconnects_incompatible"]
            for node in network.nodes.values()
        )
        return PartitionResult(
            config=config,
            snapshots=snapshots,
            fork_time=fork_time_holder[0] if fork_time_holder else None,
            handshake_refusals=refusals,
            incompatible_disconnects=incompatible,
        )


def _mean(values) -> float:
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)
