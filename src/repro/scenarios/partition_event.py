"""The message-level partition scenario — Observation 1.

Reconstructs the node-level view of the fork: a population of full nodes
runs the pre-fork protocol; ahead of the activation height most operators
upgrade (the fork was scheduled, so software shipped in advance); at the
fork block the chains diverge, handshake fork-checks and invalid-block
disconnects tear the mesh apart, and the minority side's *reachable
network* collapses — "a sudden loss of roughly 90% of the nodes in its
network immediately after the fork".

Measurement mirrors the authors' vantage point: a crawler starting from a
known ETC node counts how many peers it can reach by following peer links
(:func:`reachable_nodes`).  The scenario also records mean peer counts per
side, showing the slower *recovery* as fork-blind Kademlia discovery keeps
suggesting peers and compatible ones stick ("an influx of nodes re-joined
ETC over the subsequent two weeks" — at this scenario's compressed scale,
over the following simulated hours).
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import Observability

from ..chain.chainstore import Blockchain
from ..chain.config import ETC_CONFIG, ETH_CONFIG
from ..chain.difficulty import equilibrium_difficulty
from ..chain.genesis import build_genesis
from ..faults.injector import FaultInjector
from ..faults.report import (
    RobustnessReport,
    RobustnessSample,
    build_robustness_report,
)
from ..faults.schedule import FaultSchedule
from ..net.latency import GeographicLatency, LognormalLatency
from ..net.network import Network
from ..net.node import FullNode, ResiliencePolicy
from ..net.simulator import Simulator
from ..net.topology import BuiltTopology, TopologySpec, build_topology

__all__ = [
    "PartitionScenarioConfig",
    "ChaosPartitionConfig",
    "TopologyPartitionConfig",
    "PartitionSnapshot",
    "PartitionResult",
    "PartitionScenario",
    "reachable_nodes",
]


def reachable_nodes(network: Network, seed_name: str) -> Set[str]:
    """Crawl the mesh: every node reachable from ``seed_name`` by
    following live peer links (what a network crawler would count)."""
    seen: Set[str] = set()
    frontier = [seed_name]
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        node = network.nodes.get(name)
        if node is None or not node.online:
            continue
        seen.add(name)
        frontier.extend(node.peers)
    return seen


@dataclass
class PartitionScenarioConfig:
    """A compressed fork: ~minutes of simulated time per paper-day."""

    num_nodes: int = 60
    num_miners: int = 18
    #: Fraction of nodes (and miners) that upgrade to the pro-fork client.
    upgrade_fraction: float = 0.9
    fork_block: int = 40
    #: Per-miner hashrate; total sets the pre-fork equilibrium difficulty.
    miner_hashrate: float = 2e6
    target_degree: int = 8
    seed: int = 20160720
    #: Simulated seconds past the fork block to keep running.
    post_fork_horizon: float = 4 * 3600.0
    census_interval: float = 600.0
    redial_interval: float = 60.0


@dataclass
class ChaosPartitionConfig(PartitionScenarioConfig):
    """The partition scenario under scheduled faults.

    ``faults`` is a :meth:`~repro.faults.schedule.FaultSchedule.to_dict`
    payload and ``resilience`` a
    :meth:`~repro.net.node.ResiliencePolicy.to_dict` payload — dicts
    rather than objects so ``asdict(config)`` stays JSON-round-trippable
    and the harness's content-addressed cache keys it unchanged.

    With ``resilience=None`` the population runs the legacy protocol
    under fire (the control arm); with a policy, dial backoff, liveness
    pings, scoring, and gossip healing are enabled (the treatment arm).
    """

    faults: Optional[Dict[str, Any]] = None
    resilience: Optional[Dict[str, Any]] = None
    #: Recovery threshold as a fraction of the pre-disruption baseline.
    recovery_fraction: float = 0.9
    liveness_interval: float = 45.0
    heal_interval: float = 120.0
    #: Safety valve forwarded to ``run_until`` — a chaos run that
    #: degenerates into a redial storm fails loudly instead of spinning.
    max_events: Optional[int] = None

    def fault_schedule(self) -> FaultSchedule:
        return FaultSchedule.from_dict(self.faults or {})

    def resilience_policy(self) -> Optional[ResiliencePolicy]:
        if self.resilience is None:
            return None
        return ResiliencePolicy.from_dict(self.resilience)


@dataclass
class TopologyPartitionConfig(PartitionScenarioConfig):
    """The partition scenario on an explicit, seeded topology.

    ``topology`` is a :meth:`~repro.net.topology.TopologySpec.to_dict`
    payload — a dict rather than an object so ``asdict(config)`` stays
    JSON-round-trippable and the harness cache keys it unchanged (the
    same convention as :class:`ChaosPartitionConfig`).  Like chaos, the
    topology axis is strictly additive: a plain
    :class:`PartitionScenarioConfig` never touches this code path, so
    baseline trajectories replay byte-identically.

    With ``topology=None`` the scenario falls back to the legacy random
    mesh.  ``latency`` selects the transport model: ``"lognormal"`` (the
    paper baseline) or ``"geo"`` — a *strict*
    :class:`~repro.net.latency.GeographicLatency`, so a typo'd or
    unmapped region fails loudly instead of being priced at the default.
    """

    topology: Optional[Dict[str, Any]] = None
    latency: str = "lognormal"
    #: Random non-neighbor names seeded into each routing table (the
    #: discovery horizon that redial loops draw from).
    extra_routing: int = 16

    def topology_spec(self) -> Optional[TopologySpec]:
        if self.topology is None:
            return None
        return TopologySpec.from_dict(self.topology)


@dataclass(frozen=True)
class PartitionSnapshot:
    """One census row."""

    time: float
    eth_height: int
    etc_height: int
    #: Crawl sizes from each side's seed node.
    eth_reachable: int
    etc_reachable: int
    #: Mean live peer count per side.
    eth_mean_peers: float
    etc_mean_peers: float


@dataclass
class PartitionResult:
    config: PartitionScenarioConfig
    snapshots: List[PartitionSnapshot]
    fork_time: Optional[float]
    handshake_refusals: int
    incompatible_disconnects: int
    #: Populated only by chaos runs (:class:`ChaosPartitionConfig`).
    robustness: Optional[RobustnessReport] = None

    def minimum_etc_reachable(self) -> int:
        post = [s for s in self.snapshots if self.fork_time and s.time >= self.fork_time]
        if not post:
            return 0
        return min(s.etc_reachable for s in post)

    def node_loss_fraction(self) -> float:
        """Observation 1: reachable-network shrinkage for the ETC side.

        Baseline is the pre-fork reachable mesh (everyone); the post-fork
        floor is the smallest ETC crawl.
        """
        pre = [s for s in self.snapshots if not self.fork_time or s.time < self.fork_time]
        baseline = max((s.etc_reachable for s in pre), default=0)
        if baseline == 0:
            return 0.0
        return 1.0 - self.minimum_etc_reachable() / baseline

    def stabilization_time(self, fraction: float = 0.9) -> Optional[float]:
        """Seconds from the fork until the ETC crawl recovers.

        "Recovered" means the first census at/after the post-fork
        minimum whose reachable count is at least ``fraction`` of the
        post-fork plateau (the best crawl the side ever achieves after
        the fork).  ``None`` when the fork never happened, no post-fork
        census exists, or the mesh never climbs back to the threshold —
        the paper's conclusion *fails* on that topology.
        """
        if self.fork_time is None:
            return None
        post = [s for s in self.snapshots if s.time >= self.fork_time]
        if not post:
            return None
        plateau = max(s.etc_reachable for s in post)
        if plateau <= 0:
            return None
        floor_index = min(
            range(len(post)), key=lambda i: (post[i].etc_reachable, i)
        )
        target = fraction * plateau
        for snapshot in post[floor_index:]:
            if snapshot.etc_reachable >= target:
                return snapshot.time - self.fork_time
        return None


class PartitionScenario:
    """Build, run, and measure the partition event.

    Pass ``obs`` (a :class:`repro.obs.Observability`) to instrument the
    run: the simulator, transport, nodes, and injector all share the one
    bundle, and the scenario phases are wrapped in wall-time spans.  The
    trajectory is identical with or without it.
    """

    def __init__(
        self,
        config: Optional[PartitionScenarioConfig] = None,
        obs: Optional["Observability"] = None,
        simulator_factory: Optional[Callable[..., Simulator]] = None,
    ) -> None:
        self.config = config or PartitionScenarioConfig()
        self.obs = obs
        #: Constructor seam for the event engine — the benchmark harness
        #: injects :class:`repro.perf.reference.ReferenceSimulator` here
        #: to time the scenario on the pre-optimization event loop.
        self.simulator_factory = simulator_factory or Simulator

    def _span(self, label: str):
        if self.obs is None:
            return nullcontext()
        return self.obs.span(label)

    def run(self) -> PartitionResult:
        config = self.config
        # Chaos is strictly additive: a plain PartitionScenarioConfig
        # takes the exact pre-fault code path (no injector, no loops, no
        # policy), so baseline trajectories replay byte-identically.
        chaos = isinstance(config, ChaosPartitionConfig)
        policy = config.resilience_policy() if chaos else None
        # Topology is additive the same way chaos is: plain configs never
        # enter this branch, so their trajectories are untouched.
        topo = config if isinstance(config, TopologyPartitionConfig) else None
        built: Optional[BuiltTopology] = None
        if topo is not None:
            if topo.latency not in ("lognormal", "geo"):
                raise ValueError(
                    f"unknown latency model {topo.latency!r}; "
                    "expected 'lognormal' or 'geo'"
                )
            spec = topo.topology_spec()
            if spec is not None:
                if spec.num_nodes != config.num_nodes:
                    raise ValueError(
                        f"topology num_nodes ({spec.num_nodes}) != "
                        f"scenario num_nodes ({config.num_nodes})"
                    )
                built = build_topology(
                    spec,
                    names=[f"n{i:03d}" for i in range(config.num_nodes)],
                )
        rng = random.Random(config.seed)

        total_hashrate = config.num_miners * config.miner_hashrate
        genesis, _ = build_genesis(
            alloc={}, difficulty=equilibrium_difficulty(total_hashrate)
        )

        # Everyone starts on the legacy client: no DAO fork support.  The
        # configs use the scenario's compressed fork height.
        etc_config = replace(
            ETC_CONFIG,
            dao_fork_block=config.fork_block,
            gas_reprice_block=None,
            replay_protection_block=None,
            bomb_delay=10**9,
        )
        eth_config = replace(
            ETH_CONFIG,
            dao_fork_block=config.fork_block,
            gas_reprice_block=None,
            replay_protection_block=None,
            bomb_delay=10**9,
        )

        sim = self.simulator_factory(obs=self.obs)
        if topo is not None and topo.latency == "geo":
            # Strict: an unmapped region pair raises instead of being
            # silently priced at the default delay.
            latency_model = GeographicLatency(strict=True)
        else:
            latency_model = LognormalLatency(median=0.12)
        network = Network(sim, latency=latency_model, seed=config.seed)

        upgraders: List[str] = []
        holdouts: List[str] = []
        for index in range(config.num_nodes):
            is_miner = index < config.num_miners
            node = FullNode(
                name=f"n{index:03d}",
                chain=Blockchain(etc_config, genesis, execute_transactions=False),
                mining_hashrate=config.miner_hashrate if is_miner else 0.0,
                region=rng.choice(["na", "eu", "as"]),
                rng_seed=config.seed * 1000 + index,
                resilience=policy,
            )
            network.add_node(node)
            if rng.random() < config.upgrade_fraction:
                upgraders.append(node.name)
            else:
                holdouts.append(node.name)
        if not holdouts:
            holdouts.append(upgraders.pop())
        if not upgraders:
            upgraders.append(holdouts.pop())

        with self._span("scenario.bootstrap"):
            if built is not None:
                network.bootstrap_from_topology(
                    built, extra_routing=topo.extra_routing
                )
            else:
                network.bootstrap_mesh(target_degree=config.target_degree)
        network.schedule_redial_loop(config.redial_interval)

        if built is not None and self.obs is not None and self.obs.metrics is not None:
            stats = built.degree_stats()
            metrics = self.obs.metrics
            metrics.counter("topology.builds").inc()
            metrics.gauge("topology.nodes").set(stats["nodes"])
            metrics.gauge("topology.edges").set(stats["edges"])
            metrics.gauge("topology.degree_mean").set(stats["degree_mean"])
            metrics.gauge("topology.degree_max").set(stats["degree_max"])
            metrics.gauge("topology.degree_gini").set(stats["degree_gini"])

        injector: Optional[FaultInjector] = None
        if chaos:
            injector = FaultInjector(
                network, config.fault_schedule(), seed=config.seed
            )
            injector.arm()
            network.track_block_propagation = True
            if policy is not None:
                network.schedule_liveness_loop(config.liveness_interval)
                network.schedule_gossip_heal_loop(config.heal_interval)

        sim.run_until(120)  # let handshakes settle
        network.start_all_miners()

        # Upgrades roll out while the chain approaches the fork height —
        # operators installed the forking client days ahead; compressed
        # here to a window before activation.
        expected_fork_time = sim.now + config.fork_block * 14.0
        for position, name in enumerate(upgraders):
            when = sim.now + (position / max(1, len(upgraders))) * (
                0.6 * config.fork_block * 14.0
            )
            sim.schedule_at(
                when, network.nodes[name].upgrade, eth_config
            )

        snapshots: List[PartitionSnapshot] = []
        robustness_samples: List[RobustnessSample] = []
        fork_time_holder: List[float] = []

        eth_seed = upgraders[0]
        etc_seed = holdouts[0]

        def census() -> None:
            eth_nodes = [
                network.nodes[n]
                for n in network.nodes
                if network.nodes[n].config.dao_fork_support
            ]
            etc_nodes = [
                network.nodes[n]
                for n in network.nodes
                if not network.nodes[n].config.dao_fork_support
            ]
            eth_height = max((n.chain.height for n in eth_nodes), default=0)
            etc_height = max((n.chain.height for n in etc_nodes), default=0)
            if not fork_time_holder and max(eth_height, etc_height) >= config.fork_block:
                fork_time_holder.append(sim.now)
            eth_reachable = len(reachable_nodes(network, eth_seed))
            etc_reachable = len(reachable_nodes(network, etc_seed))
            etc_mean_peers = _mean(len(n.peers) for n in etc_nodes)
            snapshots.append(
                PartitionSnapshot(
                    time=sim.now,
                    eth_height=eth_height,
                    etc_height=etc_height,
                    eth_reachable=eth_reachable,
                    etc_reachable=etc_reachable,
                    eth_mean_peers=_mean(len(n.peers) for n in eth_nodes),
                    etc_mean_peers=etc_mean_peers,
                )
            )
            if chaos:
                robustness_samples.append(
                    RobustnessSample(
                        time=sim.now,
                        watched_reachable=etc_reachable,
                        other_reachable=eth_reachable,
                        online_nodes=sum(
                            1 for n in network.nodes.values() if n.online
                        ),
                        watched_mean_peers=etc_mean_peers,
                    )
                )

        end_time = expected_fork_time + config.post_fork_horizon
        tick = sim.now
        while tick <= end_time:
            sim.schedule_at(tick, census)
            tick += config.census_interval
        with self._span("scenario.run"):
            sim.run_until(
                end_time,
                max_events=config.max_events if chaos else None,
            )

        refusals = sum(
            node.stats["handshakes_refused"] for node in network.nodes.values()
        )
        incompatible = sum(
            node.stats["disconnects_incompatible"]
            for node in network.nodes.values()
        )
        fork_time = fork_time_holder[0] if fork_time_holder else None

        robustness: Optional[RobustnessReport] = None
        if injector is not None:
            total_mined = sum(
                network.nodes[n].stats["blocks_mined"]
                for n in sorted(network.nodes)
            )
            # Each side's canonical chain counts every mined block that
            # survived; the rest (uncles, abandoned branches) are the
            # orphans the report's orphan_rate charges to the faults.
            eth_best = max(
                (
                    n.chain.height
                    for n in network.nodes.values()
                    if n.config.dao_fork_support
                ),
                default=0,
            )
            etc_best = max(
                (
                    n.chain.height
                    for n in network.nodes.values()
                    if not n.config.dao_fork_support
                ),
                default=0,
            )
            robustness = build_robustness_report(
                seed=config.seed,
                schedule=injector.schedule,
                samples=robustness_samples,
                network=network,
                recovery_fraction=config.recovery_fraction,
                fork_time=fork_time if fork_time is not None else expected_fork_time,
                watched="etc",
                fault_log=injector.log,
                total_blocks_mined=total_mined,
                canonical_blocks=eth_best + etc_best,
            )

        return PartitionResult(
            config=config,
            snapshots=snapshots,
            fork_time=fork_time,
            handshake_refusals=refusals,
            incompatible_disconnects=incompatible,
            robustness=robustness,
        )


def _mean(values) -> float:
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)
