"""The later protocol-upgrade forks: ETH's 86 blocks vs ETC's 3,583.

Section 2.1: "ETH had a hard fork on November 22, 2016 [EIP-150 gas
repricing] ... ETC forked on January 13, 2017 to incorporate similar
defenses and to add replay protection.  ETC's fork lasted much longer than
ETH's — 3,583 blocks versus 86 — likely due to ETC's smaller network size,
so any subgroup working on a fork was more noticeable [sic: less
noticeable].  In both cases, the forks were eventually resolved by the
branch supporting the protocol changes winning out and the other dying
off."

The mechanism: at activation, operators who have not upgraded keep mining
the old rules, producing a minority branch that persists until every
laggard notices and upgrades.  The branch's *length* is the integral of
the laggards' block production over their notice-time distribution —
which scales with how long stragglers go unnoticed, and small networks
have fewer eyes.  :class:`UpgradeForkModel` simulates exactly that and
reports the minority-branch length, reproducing the two orders of
magnitude between the well-watched ETH fork and the sleepy ETC one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

__all__ = ["UpgradeForkConfig", "UpgradeForkOutcome", "UpgradeForkModel",
           "ETH_EIP150_FORK", "ETC_DIFFUSE_FORK"]


@dataclass
class UpgradeForkConfig:
    """One scheduled upgrade event on one network."""

    name: str
    #: Fraction of hashpower still on the old rules at activation.
    laggard_fraction: float
    #: Mean hours until a laggard operator notices they are on a dead
    #: branch and upgrades (exponential).  The "noticeability" parameter:
    #: big networks (block explorers, alert bots, busy forums) surface a
    #: chain split within hours; a small network can take days.
    mean_notice_hours: float
    #: Laggard operator count (each an independent notice process).
    laggard_operators: int = 20
    target_block_time: float = 14.0
    seed: int = 1

    def __post_init__(self) -> None:
        if not 0 < self.laggard_fraction < 1:
            raise ValueError("laggard fraction must be in (0, 1)")
        if self.mean_notice_hours <= 0:
            raise ValueError("notice time must be positive")


#: ETH's EIP-150 fork (2016-11-22): a large, intensely watched network;
#: a small slice of hashpower lagged and was alerted within hours.
ETH_EIP150_FORK = UpgradeForkConfig(
    name="ETH/EIP-150",
    laggard_fraction=0.07,
    mean_notice_hours=4.8,
    laggard_operators=12,
    seed=1122,
)

#: ETC's defensive fork (2017-01-13): a tenth the size, fewer monitors —
#: a bigger laggard share that took days to notice.
ETC_DIFFUSE_FORK = UpgradeForkConfig(
    name="ETC/replay-protection",
    laggard_fraction=0.30,
    mean_notice_hours=46.0,
    laggard_operators=12,
    seed=113,
)


@dataclass
class UpgradeForkOutcome:
    config: UpgradeForkConfig
    #: Blocks the dying branch produced before its last miner upgraded.
    minority_branch_length: int
    #: Hours until the branch stopped growing.
    resolution_hours: float


class UpgradeForkModel:
    """Simulate one upgrade fork's minority branch, block by block.

    The minority mines with hashpower ``laggard_fraction`` of the network
    while the majority mines the upgraded chain.  Difficulty barely moves
    over such short horizons (both branches inherit the pre-fork value),
    so the minority finds blocks at ``laggard_share / target_block_time``
    per second, decaying as operators notice and leave.
    """

    def __init__(self, config: UpgradeForkConfig) -> None:
        self.config = config

    def run(self) -> UpgradeForkOutcome:
        config = self.config
        rng = random.Random(config.seed)
        # Each laggard operator controls an equal slice and upgrades at an
        # exponential time.
        notice_seconds = sorted(
            rng.expovariate(1.0 / (config.mean_notice_hours * 3600.0))
            for _ in range(config.laggard_operators)
        )
        slice_fraction = config.laggard_fraction / config.laggard_operators

        # Walk forward block by block on the minority branch.  The branch
        # finds its next block after Exp(target / remaining_share): the
        # pre-fork difficulty was sized for the whole network, so a branch
        # holding `share` of hashpower needs `target/share` seconds per
        # block in expectation.
        time_seconds = 0.0
        blocks = 0
        remaining = list(notice_seconds)
        while remaining:
            share = slice_fraction * len(remaining)
            mean_interval = config.target_block_time / share
            candidate = time_seconds + rng.expovariate(1.0 / mean_interval)
            if candidate >= remaining[0]:
                # An operator notices and upgrades before the next block.
                time_seconds = remaining.pop(0)
                continue
            time_seconds = candidate
            blocks += 1
        return UpgradeForkOutcome(
            config=config,
            minority_branch_length=blocks,
            resolution_hours=time_seconds / 3600.0,
        )


def compare_upgrade_forks(
    eth: Optional[UpgradeForkConfig] = None,
    etc: Optional[UpgradeForkConfig] = None,
    trials: int = 25,
) -> List[UpgradeForkOutcome]:
    """Run both calibrated forks ``trials`` times; returns the median
    outcome per network (ETH first).  Medians damp the heavy tail of the
    exponential notice times so the comparison is stable across seeds."""
    results = []
    for base in (eth or ETH_EIP150_FORK, etc or ETC_DIFFUSE_FORK):
        outcomes = []
        for trial in range(trials):
            config = UpgradeForkConfig(
                name=base.name,
                laggard_fraction=base.laggard_fraction,
                mean_notice_hours=base.mean_notice_hours,
                laggard_operators=base.laggard_operators,
                target_block_time=base.target_block_time,
                seed=base.seed + trial,
            )
            outcomes.append(UpgradeForkModel(config).run())
        outcomes.sort(key=lambda o: o.minority_branch_length)
        results.append(outcomes[len(outcomes) // 2])
    return results
