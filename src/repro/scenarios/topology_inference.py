"""DEthna-style topology inference from marked transactions.

*DEthna* recovers the real Ethereum P2P graph without any privileged
vantage: a measuring node peers widely, injects "marked" transactions at
chosen nodes, and classifies every other peer as a one-hop neighbor of
the injection point (or not) from how quickly the mark comes back.  This
scenario reproduces that experiment against a ground-truth graph the
simulator knows exactly, and scores the recovered edge set.

Mechanics:

* Build a :class:`~repro.net.topology.TopologySpec` graph, bootstrap the
  mesh from its explicit edge list, and let handshakes settle.
* Attach a listen-only :class:`MonitorNode` that peers with every node
  but never relays — the measuring client.
* For each target node in turn, inject ``probes_per_target`` unique
  signed transactions via the node's wallet entry point.  The target
  relays to all its peers (monitor included); each peer relays the fresh
  transaction onward, and the monitor records every arrival with its
  sender and virtual timestamp.  ``SeenCache`` dedupe guarantees each
  node forwards a mark to the monitor at most once.
* A node ``X ≠ target`` that received the mark directly needs two link
  traversals before the monitor hears it from ``X`` (target→X, then
  X→monitor); a two-hop node needs three.  The classifier thresholds the
  **minimum** arrival lag over the probes at ``hop_threshold_factor ×
  median_latency`` — between the two-draw and three-draw means.

Everything draws from seeded RNGs, so the recovered edge set — and the
result digest — is bit-identical across processes and start methods.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import nullcontext
from dataclasses import asdict, dataclass, replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import Observability

from ..chain.chainstore import Blockchain
from ..chain.config import ETC_CONFIG
from ..chain.crypto import PrivateKey
from ..chain.genesis import build_genesis
from ..chain.transaction import Transaction, sign_transaction
from ..chain.types import Address
from ..net.latency import ConstantLatency, LognormalLatency
from ..net.messages import Message, Transactions
from ..net.network import Network
from ..net.node import FullNode
from ..net.simulator import Simulator
from ..net.topology import TopologySpec, build_topology

__all__ = [
    "TopologyInferenceConfig",
    "TopologyInferenceResult",
    "TopologyInferenceScenario",
    "MonitorNode",
]


def _canonical_digest(payload: object) -> str:
    data = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    return hashlib.sha256(data).hexdigest()


@dataclass
class TopologyInferenceConfig:
    """Knobs for the marked-transaction inference experiment.

    ``topology`` is a :meth:`~repro.net.topology.TopologySpec.to_dict`
    payload (dict, so the config stays JSON-round-trippable for the
    harness cache); ``None`` builds a default uniform graph from
    ``num_nodes``/``target_degree``/``seed``.
    """

    topology: Optional[Dict[str, Any]] = None
    num_nodes: int = 24
    target_degree: int = 5
    seed: int = 20160720
    #: Marked transactions injected per target node.
    probes_per_target: int = 5
    #: Simulated seconds between probes of one target.
    probe_interval: float = 20.0
    #: Simulated seconds between successive targets.
    round_interval: float = 120.0
    #: Handshake settle time before (and after) the monitor attaches.
    settle_time: float = 120.0
    #: ``"lognormal"`` (realistic jitter) or ``"constant"`` (exact hops).
    latency_kind: str = "lognormal"
    median_latency: float = 0.12
    latency_sigma: float = 0.3
    #: Neighbor/two-hop decision boundary, in units of ``median_latency``
    #: — direct relays cost two link traversals, two-hop relays three,
    #: so the midpoint of the 2-draw and 3-draw sums separates them.
    hop_threshold_factor: float = 2.5
    monitor_name: str = "monitor"

    def topology_spec(self) -> TopologySpec:
        if self.topology is not None:
            return TopologySpec.from_dict(self.topology)
        return TopologySpec(
            kind="uniform",
            num_nodes=self.num_nodes,
            target_degree=self.target_degree,
            seed=self.seed,
        )


@dataclass
class TopologyInferenceResult:
    """The recovered edge set scored against ground truth."""

    config: TopologyInferenceConfig
    topology_digest: str
    num_nodes: int
    #: Sorted ``(a, b)`` with ``a < b`` — realized links at probe time.
    true_edges: List[Tuple[str, str]]
    predicted_edges: List[Tuple[str, str]]
    precision: float
    recall: float
    f1: float
    probes_sent: int
    arrivals_recorded: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "config": asdict(self.config),
            "topology_digest": self.topology_digest,
            "num_nodes": self.num_nodes,
            "true_edges": [list(edge) for edge in self.true_edges],
            "predicted_edges": [list(edge) for edge in self.predicted_edges],
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "probes_sent": self.probes_sent,
            "arrivals_recorded": self.arrivals_recorded,
        }

    def digest(self) -> str:
        return _canonical_digest(self.to_dict())


class MonitorNode(FullNode):
    """A listen-only measuring client.

    Records every ``Transactions`` arrival as ``(sender, virtual time)``
    and deliberately neither admits nor relays — the monitor must not
    perturb the gossip it measures.  All other traffic (handshakes,
    pings) behaves like a normal node so peers treat it as live.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.arrivals: Dict[bytes, List[Tuple[str, float]]] = {}

    def receive(self, message: Message) -> None:
        if self.online and type(message) is Transactions:
            now = self.network.sim.now if self.network is not None else 0.0
            self.routing.observe(message.sender_id)
            for tx in message.transactions:
                self.arrivals.setdefault(bytes(tx.tx_hash), []).append(
                    (message.sender_id, now)
                )
            return
        super().receive(message)


class TopologyInferenceScenario:
    """Run the marked-transaction experiment and score the recovery."""

    def __init__(
        self,
        config: Optional[TopologyInferenceConfig] = None,
        obs: Optional["Observability"] = None,
    ) -> None:
        self.config = config or TopologyInferenceConfig()
        self.obs = obs

    def _span(self, label: str):
        if self.obs is None:
            return nullcontext()
        return self.obs.span(label)

    def run(self) -> TopologyInferenceResult:
        config = self.config
        if config.latency_kind not in ("lognormal", "constant"):
            raise ValueError(
                f"unknown latency_kind {config.latency_kind!r}; "
                "expected 'lognormal' or 'constant'"
            )
        if config.probes_per_target < 1:
            raise ValueError("probes_per_target must be at least 1")
        spec = config.topology_spec()
        built = build_topology(spec)
        if config.monitor_name in built.names:
            raise ValueError("monitor_name collides with a topology node")

        genesis, _ = build_genesis(alloc={})
        node_config = replace(
            ETC_CONFIG,
            dao_fork_block=10**9,
            gas_reprice_block=None,
            replay_protection_block=None,
            bomb_delay=10**9,
        )
        sim = Simulator(obs=self.obs)
        if config.latency_kind == "constant":
            latency = ConstantLatency(delay=config.median_latency)
        else:
            latency = LognormalLatency(
                median=config.median_latency, sigma=config.latency_sigma
            )
        network = Network(sim, latency=latency, seed=config.seed)

        # Headroom: every node must accept the monitor on top of its
        # topology degree (power-law hubs included).
        max_peers = spec.num_nodes + 8
        for index, name in enumerate(built.names):
            network.add_node(
                FullNode(
                    name=name,
                    chain=Blockchain(
                        node_config, genesis, execute_transactions=False
                    ),
                    max_peers=max_peers,
                    region=built.regions.get(name, "eu"),
                    rng_seed=config.seed * 1000 + index,
                )
            )
        monitor = MonitorNode(
            name=config.monitor_name,
            chain=Blockchain(node_config, genesis, execute_transactions=False),
            max_peers=max_peers,
            rng_seed=config.seed * 1000 + len(built.names),
        )
        network.add_node(monitor)

        with self._span("infer.bootstrap"):
            # No extra routing entries: the mesh stays exactly the
            # topology (no redial loop runs, so discovery never grows it).
            network.bootstrap_from_topology(built, extra_routing=0)
            sim.run_until(config.settle_time)
            for name in built.names:
                monitor.dial(name)
            sim.run_until(2 * config.settle_time)

        # Ground truth: realized links among the targets (dials refused
        # by a saturated peer would drop out here — none at this
        # max_peers, but the score must measure the *actual* mesh).
        truth = set()
        for name in built.names:
            for peer in network.nodes[name].peers:
                if peer != config.monitor_name:
                    truth.add((min(name, peer), max(name, peer)))

        probes: Dict[bytes, Tuple[str, float]] = {}

        def inject(target_name: str, round_index: int, probe_index: int) -> None:
            key = PrivateKey.from_seed(
                f"dethna:{config.seed}:{round_index}:{probe_index}"
            )
            tx = sign_transaction(
                key,
                Transaction(
                    nonce=0,
                    gas_price=10**9,
                    gas_limit=21_000,
                    to=Address.from_int(0xD47A),
                    value=0,
                    chain_id=None,
                ),
            )
            probes[bytes(tx.tx_hash)] = (target_name, sim.now)
            network.nodes[target_name].submit_transaction(tx)

        start = sim.now
        for round_index, target_name in enumerate(built.names):
            for probe_index in range(config.probes_per_target):
                sim.schedule_at(
                    start
                    + round_index * config.round_interval
                    + probe_index * config.probe_interval,
                    inject,
                    target_name,
                    round_index,
                    probe_index,
                )
        end = (
            start
            + len(built.names) * config.round_interval
            + config.round_interval
        )
        with self._span("infer.probe"):
            sim.run_until(end)

        # Classify on the *median* arrival lag per unordered pair, pooled
        # over probes and both injection directions — a direct neighbor's
        # relays cost two link draws, a two-hop node's three, and the
        # median washes out individual jitter draws far better than the
        # minimum (one lucky fast two-hop relay would fool a min).
        threshold = config.hop_threshold_factor * config.median_latency
        pair_lags: Dict[Tuple[str, str], List[float]] = {}
        arrivals_recorded = 0
        name_set = set(built.names)
        for tx_hash, (target_name, injected_at) in probes.items():
            for sender, arrived_at in monitor.arrivals.get(tx_hash, ()):
                arrivals_recorded += 1
                if sender == target_name or sender not in name_set:
                    continue
                pair = (
                    min(target_name, sender),
                    max(target_name, sender),
                )
                pair_lags.setdefault(pair, []).append(arrived_at - injected_at)
        predicted = set()
        for pair, lags in pair_lags.items():
            lags.sort()
            if lags[(len(lags) - 1) // 2] <= threshold:
                predicted.add(pair)

        correct = len(predicted & truth)
        precision = correct / len(predicted) if predicted else 0.0
        recall = correct / len(truth) if truth else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )

        if self.obs is not None and self.obs.metrics is not None:
            metrics = self.obs.metrics
            metrics.counter("topology.infer.probes").inc(len(probes))
            metrics.counter("topology.infer.arrivals").inc(arrivals_recorded)
            metrics.gauge("topology.infer.precision").set(precision)
            metrics.gauge("topology.infer.recall").set(recall)

        return TopologyInferenceResult(
            config=config,
            topology_digest=built.digest(),
            num_nodes=spec.num_nodes,
            true_edges=sorted(truth),
            predicted_edges=sorted(predicted),
            precision=precision,
            recall=recall,
            f1=f1,
            probes_sent=len(probes),
            arrivals_recorded=arrivals_recorded,
        )
