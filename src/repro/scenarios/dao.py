"""The DAO story, end to end, at contract level.

This scenario replays the *cause* of the partition with real execution:

1. deploy a DAO-style crowdfunding vault (the reentrancy-vulnerable
   contract from :mod:`repro.evm.contracts`);
2. investors deposit ether;
3. the attacker deploys the exploit contract and drains a multiple of
   their stake through reentrancy (June 17, 2016);
4. the community schedules a hard fork: at the fork height, the pro-fork
   chain applies the **irregular state change** moving the attacker's
   loot to a withdraw (refund) address, while the anti-fork chain leaves
   the ledger untouched ("code is law");
5. both chains share every pre-fork block; post-fork blocks diverge —
   including in the attacker's balance;
6. a user who ignores the split sends ether on one chain and the
   recipient **replays** the transaction on the other, collecting twice
   (the Figure 4 mechanism, demonstrated at transaction level).

Everything runs through the consensus-validating
:class:`~repro.chain.chainstore.Blockchain` in full-execution mode, so the
state roots in the two chains' headers genuinely diverge at the fork
block — which is what makes the partition irreversible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..chain.block import Block, BlockHeader, transactions_root
from ..chain.chainstore import Blockchain
from ..chain.config import ETC_CONFIG, ETH_CONFIG
from ..chain.crypto import PrivateKey
from ..chain.genesis import build_genesis
from ..chain.processor import apply_block
from ..chain.transaction import SignedTransaction, Transaction, sign_transaction
from ..chain.types import Address, Hash32, Wei, ether
from ..evm.abi import encode_call
from ..evm.contracts import (
    SEL_ATTACK,
    SEL_DEPOSIT,
    deploy_wrapper,
    reentrancy_attacker_code,
    vulnerable_bank_code,
)
from ..evm.vm import derive_contract_address

__all__ = ["DaoScenarioConfig", "DaoScenarioResult", "DaoScenario", "ChainWriter"]


class ChainWriter:
    """Produce and import consensus-valid blocks onto one chain.

    The test/scenario-facing way to grow a full-execution chain: give it
    transactions, it computes the state root by trial execution, seals a
    valid header (difficulty from the config's rule, DAO extra-data as the
    config requires), and imports through the normal validation path.
    """

    def __init__(self, chain: Blockchain, coinbase: Address, block_time: int = 14) -> None:
        self.chain = chain
        self.coinbase = coinbase
        self.block_time = block_time

    def seal(
        self,
        transactions: Tuple[SignedTransaction, ...] = (),
        timestamp: Optional[int] = None,
    ) -> Block:
        parent = self.chain.head
        config = self.chain.config
        if timestamp is None:
            timestamp = parent.timestamp + self.block_time
        if timestamp <= parent.timestamp:
            raise ValueError("timestamp must advance")
        number = parent.number + 1
        difficulty = config.compute_difficulty(
            parent.difficulty, parent.timestamp, timestamp, number
        )
        extra = config.dao_extra_data(number) or b""
        header_fields = dict(
            parent_hash=parent.block_hash,
            number=number,
            timestamp=timestamp,
            difficulty=difficulty,
            coinbase=self.coinbase,
            tx_root=transactions_root(transactions),
            gas_limit=parent.header.gas_limit,
            gas_used=0,
            extra_data=extra,
        )
        # Trial-execute to learn the resulting state root.
        parent_state = self.chain.state_at(parent.block_hash)
        if parent_state is None:
            raise ValueError("parent state unavailable (pruned?)")
        scratch = parent_state.fork()
        trial = Block(
            header=BlockHeader(state_root=Hash32.zero(), **header_fields),
            transactions=transactions,
        )
        result = apply_block(
            scratch, trial, config, self.chain.irregular_transfers
        )
        header = BlockHeader(
            state_root=scratch.state_root,
            **{**header_fields, "gas_used": result.gas_used},
        )
        return Block(header=header, transactions=transactions)

    def extend(
        self,
        transactions: Tuple[SignedTransaction, ...] = (),
        timestamp: Optional[int] = None,
    ) -> Block:
        block = self.seal(transactions, timestamp)
        imported = self.chain.import_block(block)
        if not imported.accepted:
            raise RuntimeError(
                f"sealed block rejected: {imported.status} {imported.reason}"
            )
        return block


@dataclass
class DaoScenarioConfig:
    fork_block: int = 16
    investor_count: int = 4
    investment: Wei = ether(25)
    attacker_stake: Wei = ether(1)
    max_reentries: int = 3
    gas_price: Wei = 20 * 10**9


@dataclass
class DaoScenarioResult:
    eth_chain: Blockchain
    etc_chain: Blockchain
    dao_address: Address
    attacker_contract: Address
    attacker_key: PrivateKey
    refund_address: Address
    drained: Wei
    keys: Dict[str, PrivateKey]
    #: The replayed transaction and where it executed.
    replayed_tx: Optional[SignedTransaction] = None

    def attacker_balance(self, chain: Blockchain) -> Wei:
        return chain.head_state().balance_of(self.attacker_contract)

    def refund_balance(self, chain: Blockchain) -> Wei:
        return chain.head_state().balance_of(self.refund_address)


class DaoScenario:
    """Runs the six acts described in the module docstring."""

    def __init__(self, config: Optional[DaoScenarioConfig] = None) -> None:
        self.config = config or DaoScenarioConfig()

    def run(self) -> DaoScenarioResult:
        config = self.config
        keys = {
            "deployer": PrivateKey.from_seed("dao:deployer"),
            "attacker": PrivateKey.from_seed("dao:attacker"),
            "miner": PrivateKey.from_seed("dao:miner"),
            "alice": PrivateKey.from_seed("dao:alice"),
            "bob": PrivateKey.from_seed("dao:bob"),
        }
        for index in range(config.investor_count):
            keys[f"investor{index}"] = PrivateKey.from_seed(f"dao:investor{index}")

        alloc = {
            keys["deployer"].address: ether(10),
            keys["attacker"].address: ether(10),
            keys["alice"].address: ether(50),
            keys["bob"].address: ether(5),
        }
        for index in range(config.investor_count):
            alloc[keys[f"investor{index}"].address] = config.investment + ether(1)

        genesis, genesis_state = build_genesis(alloc)

        shared_config = replace(
            ETH_CONFIG,
            dao_fork_block=config.fork_block,
            gas_reprice_block=None,
            replay_protection_block=None,
            bomb_delay=10**9,
        )
        chain = Blockchain(shared_config, genesis, genesis_state.fork())
        writer = ChainWriter(chain, keys["miner"].address)

        def send(key: PrivateKey, to, value, data=b"", gas=2_000_000):
            nonce = chain.head_state().nonce_of(key.address)
            return sign_transaction(
                key,
                Transaction(
                    nonce=nonce,
                    gas_price=config.gas_price,
                    gas_limit=gas,
                    to=to,
                    value=value,
                    data=data,
                ),
            )

        # Act 1: deploy the DAO.
        deployer_nonce = chain.head_state().nonce_of(keys["deployer"].address)
        dao_address = derive_contract_address(
            keys["deployer"].address, deployer_nonce
        )
        writer.extend(
            (
                send(
                    keys["deployer"],
                    None,
                    0,
                    deploy_wrapper(vulnerable_bank_code()),
                    gas=3_000_000,
                ),
            )
        )
        assert chain.head_state().is_contract(dao_address)

        # Act 2: the crowdfunding period.
        for index in range(config.investor_count):
            writer.extend(
                (
                    send(
                        keys[f"investor{index}"],
                        dao_address,
                        config.investment,
                        encode_call(SEL_DEPOSIT),
                    ),
                )
            )

        # Act 3: the attack.
        attacker_nonce = chain.head_state().nonce_of(keys["attacker"].address)
        attacker_contract = derive_contract_address(
            keys["attacker"].address, attacker_nonce
        )
        writer.extend(
            (
                send(
                    keys["attacker"],
                    None,
                    0,
                    deploy_wrapper(
                        reentrancy_attacker_code(
                            dao_address, max_reentries=config.max_reentries
                        )
                    ),
                    gas=3_000_000,
                ),
            )
        )
        writer.extend(
            (
                send(
                    keys["attacker"],
                    attacker_contract,
                    config.attacker_stake,
                    encode_call(SEL_ATTACK),
                    gas=4_000_000,
                ),
            )
        )
        drained = chain.head_state().balance_of(attacker_contract)
        if drained <= config.attacker_stake:
            raise RuntimeError("the reentrancy drain failed to profit")

        # Act 4: schedule the irregular state change on the pro-fork side.
        refund_address = PrivateKey.from_seed("dao:withdraw-contract").address
        chain.irregular_transfers = [(attacker_contract, refund_address)]

        # Grow the shared prefix up to (not including) the fork block.
        while chain.height < config.fork_block - 1:
            writer.extend(())

        # Act 5: the split.  Each side gets its own store (same blocks, a
        # forked state) and mines its own fork block.
        eth_chain = chain  # the pro-fork side keeps the writer's store
        etc_config = replace(
            ETC_CONFIG,
            dao_fork_block=config.fork_block,
            gas_reprice_block=None,
            replay_protection_block=None,
            bomb_delay=10**9,
        )
        etc_chain = Blockchain(
            etc_config, genesis, genesis_state.fork()
        )
        for block in chain.canonical_blocks(1):
            imported = etc_chain.import_block(block)
            if not imported.accepted:
                raise RuntimeError(
                    f"prefix block {block.number} rejected by ETC: "
                    f"{imported.reason}"
                )
        etc_chain.irregular_transfers = []  # code is law

        etc_writer = ChainWriter(etc_chain, keys["miner"].address)
        writer.extend(())  # ETH fork block: applies the irregular transfer
        etc_writer.extend(())  # ETC fork block: plain

        # Cross-import refusal: each side rejects the other's fork block.
        eth_fork_block = eth_chain.block_by_number(config.fork_block)
        etc_fork_block = etc_chain.block_by_number(config.fork_block)
        assert not etc_chain.import_block(eth_fork_block).accepted
        assert not eth_chain.import_block(etc_fork_block).accepted

        # Act 6: the replay.  Alice (unsplit) pays Bob on ETH; Bob echoes
        # the same signed bytes into ETC.
        replay_tx = send(keys["alice"], keys["bob"].address, ether(7))
        writer.extend((replay_tx,))
        etc_writer.extend((replay_tx,))  # the echo: same hash, other chain

        return DaoScenarioResult(
            eth_chain=eth_chain,
            etc_chain=etc_chain,
            dao_address=dao_address,
            attacker_contract=attacker_contract,
            attacker_key=keys["attacker"],
            refund_address=refund_address,
            drained=drained,
            keys=keys,
            replayed_tx=replay_tx,
        )
