"""Calibrated reconstructions of the fork and its surrounding events."""

from .attack_window import (
    AttackAssessment,
    assess_attack_window,
    catchup_probability,
    simulate_race,
    vulnerability_window_days,
)
from .dao import ChainWriter, DaoScenario, DaoScenarioConfig, DaoScenarioResult
from .dos_forks import (
    ETC_DIFFUSE_FORK,
    ETH_EIP150_FORK,
    UpgradeForkConfig,
    UpgradeForkModel,
    UpgradeForkOutcome,
    compare_upgrade_forks,
)
from .partition_event import (
    ChaosPartitionConfig,
    PartitionResult,
    PartitionScenario,
    PartitionScenarioConfig,
    PartitionSnapshot,
    TopologyPartitionConfig,
    reachable_nodes,
)
from .topology_inference import (
    MonitorNode,
    TopologyInferenceConfig,
    TopologyInferenceResult,
    TopologyInferenceScenario,
)
from .replay_attack import (
    GroundTruth,
    ReplayModel,
    ReplayWorkload,
    ReplayWorkloadConfig,
)
from .transient_forks import (
    TransientForkConfig,
    TransientForkOutcome,
    latency_sweep,
    run_transient_forks,
)

__all__ = [
    "DaoScenario",
    "DaoScenarioConfig",
    "DaoScenarioResult",
    "ChainWriter",
    "PartitionScenario",
    "PartitionScenarioConfig",
    "ChaosPartitionConfig",
    "TopologyPartitionConfig",
    "PartitionResult",
    "PartitionSnapshot",
    "reachable_nodes",
    "MonitorNode",
    "TopologyInferenceConfig",
    "TopologyInferenceResult",
    "TopologyInferenceScenario",
    "ReplayWorkload",
    "ReplayWorkloadConfig",
    "ReplayModel",
    "GroundTruth",
    "UpgradeForkModel",
    "UpgradeForkConfig",
    "UpgradeForkOutcome",
    "ETH_EIP150_FORK",
    "ETC_DIFFUSE_FORK",
    "compare_upgrade_forks",
    "TransientForkConfig",
    "TransientForkOutcome",
    "run_transient_forks",
    "latency_sweep",
    "AttackAssessment",
    "assess_attack_window",
    "catchup_probability",
    "simulate_race",
    "vulnerability_window_days",
]
