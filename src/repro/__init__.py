"""repro — a full reproduction of Kiffer, Levin & Mislove,
"Stick a fork in it: Analyzing the Ethereum network partition" (HotNets 2017).

The package is layered bottom-up:

* :mod:`repro.chain` — Ethereum-style consensus substrate (RLP, blocks,
  transactions, Homestead difficulty, fork configs, chain store).
* :mod:`repro.evm` — a gas-metered EVM running the DAO-style contracts.
* :mod:`repro.net` — message-level P2P simulator (Kademlia discovery,
  gossip, mempools, full nodes) for the hours around the fork.
* :mod:`repro.mining` — miners, hashpower, pools, switching strategies.
* :mod:`repro.sim` — the fast per-block simulator for month-scale runs.
* :mod:`repro.market` — exchange rates and the miner-arbitrage coupling.
* :mod:`repro.scenarios` — calibrated reconstructions of the DAO fork and
  the surrounding nine months.
* :mod:`repro.data` — export/query layer decoupling analysis from nodes.
* :mod:`repro.core` — the paper's contribution: the fork-analysis toolkit
  (partition detection, echo/replay detection, pool concentration, mining
  economics) and generators for every figure.
* :mod:`repro.baselines` — comparator algorithms for ablations.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
