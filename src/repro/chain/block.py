"""Block headers and bodies.

Headers carry everything the paper's analysis reads off the chain:

* ``number`` and ``timestamp`` → blocks-per-hour and inter-block deltas
  (Figure 1 top/bottom);
* ``difficulty`` → the difficulty series (Figures 1-2) and, divided by the
  block reward and the exchange rate, the hashes-per-USD series (Figure 3);
* ``coinbase`` — "the 'winner' of each block, which contains the address to
  which the 5 ether award are transferred" (Section 3.3) → the pool
  concentration analysis (Figure 5);
* the transaction list → transactions/day, contract-call fraction
  (Figure 2) and the echo detector's per-chain hash streams (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Sequence, Tuple

from . import encoding
from .crypto import keccak256
from .transaction import SignedTransaction
from .trie import MerkleTrie
from .types import Address, Hash32

__all__ = [
    "BlockHeader",
    "Block",
    "transactions_root",
    "ommers_root",
    "EMPTY_OMMERS_ROOT",
    "GENESIS_PARENT_HASH",
    "MAX_OMMERS_PER_BLOCK",
    "MAX_OMMER_DEPTH",
]

#: Parent hash of the genesis block.
GENESIS_PARENT_HASH = Hash32.zero()

#: Protocol limits on uncle (ommer) inclusion.
MAX_OMMERS_PER_BLOCK = 2
MAX_OMMER_DEPTH = 6


def transactions_root(transactions: Sequence[SignedTransaction]) -> Hash32:
    """Merkle commitment to an ordered transaction list."""
    trie = MerkleTrie()
    for index, tx in enumerate(transactions):
        trie.set(encoding.encode_int(index) or b"\x00", bytes(tx.tx_hash))
    return trie.root


def ommers_root(ommers: Sequence["BlockHeader"]) -> Hash32:
    """Commitment to a block's uncle list (hash of the header hashes).

    Uncles are Ethereum's answer to transient forks: a block that lost a
    race can still be referenced by a later winner, earning its miner a
    partial reward and the includer a bonus — which reduces the incentive
    to centralize against propagation delay.
    """
    payload = encoding.encode([bytes(header.block_hash) for header in ommers])
    return keccak256(payload)


#: Commitment of the empty uncle list (the overwhelmingly common case).
EMPTY_OMMERS_ROOT = keccak256(encoding.encode([]))


@dataclass(frozen=True)
class BlockHeader:
    """Consensus header; its hash is the block's identity."""

    parent_hash: Hash32
    number: int
    timestamp: int
    difficulty: int
    coinbase: Address
    state_root: Hash32
    tx_root: Hash32
    gas_limit: int
    gas_used: int
    #: Proof-of-work witness.  Real clients verify an Ethash mixhash; our
    #: simulated miners stamp the winning draw here so blocks are traceable
    #: to the mining event that produced them.
    nonce: int = 0
    extra_data: bytes = b""
    #: Commitment to the uncle list; defaults to the empty-list root.
    ommers_hash: Hash32 = EMPTY_OMMERS_ROOT

    def __post_init__(self) -> None:
        if self.number < 0:
            raise ValueError("block number must be non-negative")
        if self.difficulty <= 0:
            raise ValueError("difficulty must be positive")
        if self.gas_used > self.gas_limit:
            raise ValueError("gas used exceeds gas limit")
        if len(self.extra_data) > 32:
            raise ValueError("extra data limited to 32 bytes")

    def encode(self) -> bytes:
        return encoding.encode(
            [
                bytes(self.parent_hash),
                self.number,
                self.timestamp,
                self.difficulty,
                bytes(self.coinbase),
                bytes(self.state_root),
                bytes(self.tx_root),
                self.gas_limit,
                self.gas_used,
                self.nonce,
                self.extra_data,
                bytes(self.ommers_hash),
            ]
        )

    @cached_property
    def block_hash(self) -> Hash32:
        return keccak256(self.encode())


@dataclass(frozen=True)
class Block:
    """A sealed block: header, transaction list, and uncle headers."""

    header: BlockHeader
    transactions: Tuple[SignedTransaction, ...] = field(default_factory=tuple)
    ommers: Tuple[BlockHeader, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "transactions", tuple(self.transactions))
        object.__setattr__(self, "ommers", tuple(self.ommers))

    # Header passthroughs: analysis code reads blocks, not headers.
    @property
    def block_hash(self) -> Hash32:
        return self.header.block_hash

    @property
    def parent_hash(self) -> Hash32:
        return self.header.parent_hash

    @property
    def number(self) -> int:
        return self.header.number

    @property
    def timestamp(self) -> int:
        return self.header.timestamp

    @property
    def difficulty(self) -> int:
        return self.header.difficulty

    @property
    def coinbase(self) -> Address:
        return self.header.coinbase

    @property
    def is_genesis(self) -> bool:
        return self.number == 0

    def consistent_tx_root(self) -> bool:
        """Does the header's tx commitment match the carried body?"""
        return self.header.tx_root == transactions_root(self.transactions)

    def consistent_ommers_root(self) -> bool:
        """Does the header's uncle commitment match the carried uncles?"""
        return self.header.ommers_hash == ommers_root(self.ommers)

    def transaction_hashes(self) -> Tuple[Hash32, ...]:
        return tuple(tx.tx_hash for tx in self.transactions)

    def __len__(self) -> int:
        return len(self.transactions)
