"""Account state: balances, nonces, contract code and storage.

The world state is a mapping ``address -> account`` committed into a Merkle
trie root (``state_root`` in every block header).  Both networks in the
paper share one world state up to block 1,920,000 and then diverge — most
visibly at the DAO fork block itself, where ETH applies an "irregular state
change" moving the attacker's ether to a refund contract while ETC leaves
the balances untouched.  :meth:`StateDB.apply_irregular_transfer` implements
exactly that mechanism.

``StateDB`` supports cheap snapshot/revert (used by the EVM for failed inner
calls) and whole-state forking (used when a chain splits).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Tuple

from . import encoding
from .crypto import keccak256
from .trie import MerkleTrie
from .types import Address, Hash32, Wei

__all__ = ["Account", "StateDB", "StateError", "InsufficientBalance"]


class StateError(Exception):
    """Base class for state-transition failures."""


class InsufficientBalance(StateError):
    """An account tried to spend more wei than it holds."""


@dataclass(frozen=True)
class Account:
    """One entry in the world state.

    ``storage_root`` and ``code_hash`` match Ethereum's layout; storage
    itself lives beside the account in :class:`StateDB` (keyed by address)
    rather than in per-account tries, which changes nothing observable.
    """

    nonce: int = 0
    balance: Wei = 0
    code: bytes = b""

    @property
    def is_contract(self) -> bool:
        return len(self.code) > 0

    @property
    def code_hash(self) -> Hash32:
        return keccak256(self.code)

    def encode(self, storage_root: Hash32) -> bytes:
        return encoding.encode(
            [self.nonce, self.balance, bytes(storage_root), bytes(self.code_hash)]
        )


_EMPTY_ACCOUNT = Account()


class StateDB:
    """Mutable world state with snapshots and an authenticated root.

    The common pattern is::

        state = StateDB()
        state.credit(addr, ether(10))
        snapshot = state.snapshot()
        ...  # speculative execution
        state.revert(snapshot)      # or discard the snapshot
        root = state.state_root     # commitment for the block header
    """

    def __init__(self) -> None:
        self._accounts: Dict[Address, Account] = {}
        self._storage: Dict[Address, Dict[int, int]] = {}
        # Journal of (undo-closure) entries since each snapshot boundary.
        self._journal: List[Tuple[str, tuple]] = []
        self._snapshots: List[int] = []

    # -- account access ----------------------------------------------------

    def account(self, address: Address) -> Account:
        """Current account record (a default empty account if untouched)."""
        return self._accounts.get(address, _EMPTY_ACCOUNT)

    def balance_of(self, address: Address) -> Wei:
        return self.account(address).balance

    def nonce_of(self, address: Address) -> int:
        return self.account(address).nonce

    def code_of(self, address: Address) -> bytes:
        return self.account(address).code

    def is_contract(self, address: Address) -> bool:
        return self.account(address).is_contract

    def exists(self, address: Address) -> bool:
        return address in self._accounts

    def accounts(self) -> Iterator[Address]:
        return iter(self._accounts)

    # -- mutation (journaled) ------------------------------------------------

    def _set_account(self, address: Address, account: Account) -> None:
        previous = self._accounts.get(address)
        self._journal.append(("account", (address, previous)))
        self._accounts[address] = account

    def credit(self, address: Address, amount: Wei) -> None:
        """Add ``amount`` wei to ``address`` (mining rewards, transfers in)."""
        if amount < 0:
            raise StateError("credit amount must be non-negative")
        account = self.account(address)
        self._set_account(address, replace(account, balance=account.balance + amount))

    def debit(self, address: Address, amount: Wei) -> None:
        """Remove ``amount`` wei; raises :class:`InsufficientBalance`."""
        if amount < 0:
            raise StateError("debit amount must be non-negative")
        account = self.account(address)
        if account.balance < amount:
            raise InsufficientBalance(
                f"{address.hex_prefixed} holds {account.balance} wei, "
                f"needs {amount}"
            )
        self._set_account(address, replace(account, balance=account.balance - amount))

    def transfer(self, sender: Address, recipient: Address, amount: Wei) -> None:
        self.debit(sender, amount)
        self.credit(recipient, amount)

    def apply_irregular_transfer(
        self, source: Address, destination: Address
    ) -> Wei:
        """Move a full balance outside normal transaction rules.

        This is the DAO-fork mechanism: at the fork block, ETH clients moved
        the attacker's (and child-DAO) balances to a withdraw contract with
        no signed transaction authorizing it.  Returns the amount moved.
        """
        amount = self.balance_of(source)
        if amount:
            self.debit(source, amount)
            self.credit(destination, amount)
        return amount

    def increment_nonce(self, address: Address) -> int:
        account = self.account(address)
        self._set_account(address, replace(account, nonce=account.nonce + 1))
        return account.nonce + 1

    def set_code(self, address: Address, code: bytes) -> None:
        account = self.account(address)
        self._set_account(address, replace(account, code=bytes(code)))

    def storage_at(self, address: Address, slot: int) -> int:
        return self._storage.get(address, {}).get(slot, 0)

    def set_storage(self, address: Address, slot: int, value: int) -> None:
        slots = self._storage.setdefault(address, {})
        previous = slots.get(slot)
        self._journal.append(("storage", (address, slot, previous)))
        if value == 0:
            slots.pop(slot, None)
        else:
            slots[slot] = value

    def delete_account(self, address: Address) -> None:
        """Remove an account entirely (SELFDESTRUCT, state clearing)."""
        previous = self._accounts.get(address)
        previous_storage = self._storage.get(address)
        self._journal.append(("delete", (address, previous, previous_storage)))
        self._accounts.pop(address, None)
        self._storage.pop(address, None)

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> int:
        """Mark a revert point; returns an opaque snapshot id."""
        self._snapshots.append(len(self._journal))
        return len(self._snapshots) - 1

    def revert(self, snapshot_id: int) -> None:
        """Undo every mutation made after ``snapshot_id`` was taken."""
        if snapshot_id >= len(self._snapshots):
            raise StateError(f"unknown snapshot id {snapshot_id}")
        boundary = self._snapshots[snapshot_id]
        del self._snapshots[snapshot_id:]
        while len(self._journal) > boundary:
            kind, payload = self._journal.pop()
            if kind == "account":
                address, previous = payload
                if previous is None:
                    self._accounts.pop(address, None)
                else:
                    self._accounts[address] = previous
            elif kind == "storage":
                address, slot, previous = payload
                slots = self._storage.setdefault(address, {})
                if previous is None:
                    slots.pop(slot, None)
                else:
                    slots[slot] = previous
            elif kind == "delete":
                address, previous, previous_storage = payload
                if previous is not None:
                    self._accounts[address] = previous
                if previous_storage is not None:
                    self._storage[address] = previous_storage

    def discard_snapshot(self, snapshot_id: int) -> None:
        """Commit to changes since ``snapshot_id`` (keep the journal tail)."""
        if snapshot_id >= len(self._snapshots):
            raise StateError(f"unknown snapshot id {snapshot_id}")
        del self._snapshots[snapshot_id:]

    # -- commitment and forking ----------------------------------------------

    @property
    def state_root(self) -> Hash32:
        """Merkle commitment to the full world state.

        Recomputed on demand from scratch; block producers call this once
        per block, which keeps validation honest without journaling trie
        updates through snapshots.
        """
        trie = MerkleTrie()
        for address, account in self._accounts.items():
            storage_root = self._storage_root(address)
            trie.set(bytes(address), account.encode(storage_root))
        return trie.root

    def _storage_root(self, address: Address) -> Hash32:
        slots = self._storage.get(address)
        if not slots:
            return MerkleTrie().root
        trie = MerkleTrie()
        for slot, value in slots.items():
            trie.set(encoding.encode_int(slot) or b"\x00", encoding.encode_int(value))
        return trie.root

    def fork(self) -> "StateDB":
        """Deep copy for a chain split: each side evolves independently."""
        clone = StateDB()
        clone._accounts = dict(self._accounts)
        clone._storage = {addr: dict(slots) for addr, slots in self._storage.items()}
        return clone

    def total_supply(self) -> Wei:
        """Sum of all balances (conservation checks in tests)."""
        return sum(account.balance for account in self._accounts.values())
