"""The chain database: block storage, fork choice, and reorgs.

Every simulated node owns a :class:`Blockchain`.  It stores all observed
blocks (including competing branches), tracks cumulative ("total")
difficulty per branch tip, and keeps the canonical chain pointed at the
heaviest tip — the "participants choose to believe the chain that
represents the most work" rule from the paper's Section 2.

Transient forks (Section 2.1) resolve here automatically: a heavier
competing branch triggers a reorg and the shorter branch's blocks become
orphans.  *Persistent* forks do not resolve here — they are prevented from
resolving by validation: an ETC node never imports the ETH DAO block in the
first place, so the heaviest-chain rule never sees the other side.  That
division of labour (fork choice vs. validity) is exactly what makes a hard
fork a partition rather than a race.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from .block import MAX_OMMER_DEPTH, Block, BlockHeader
from .config import ChainConfig
from .processor import BlockResult, apply_block
from .receipt import Receipt
from .state import StateDB
from .types import Address, Hash32
from .validation import (
    ValidationError,
    validate_body,
    validate_header,
    validate_ommers,
)

__all__ = ["Blockchain", "ImportResult", "ChainStoreError"]


class ChainStoreError(Exception):
    pass


@dataclass(frozen=True)
class ImportResult:
    """Outcome of offering one block to the store."""

    status: str  # "imported" | "known" | "orphan" | "invalid"
    reorged: bool = False
    reason: str = ""
    #: Receipts produced if the block was executed (full mode, on canon).
    receipts: Tuple[Receipt, ...] = ()

    @property
    def accepted(self) -> bool:
        return self.status == "imported"


class Blockchain:
    """Block store + heaviest-chain fork choice for one node / one network.

    Parameters
    ----------
    config:
        Chain rules (difficulty algorithm, fork schedule, chain id).
    genesis, genesis_state:
        From :func:`repro.chain.genesis.build_genesis`.
    execute_transactions:
        Full mode runs every imported block through the EVM-backed state
        transition and keeps per-block states (needed for the message-level
        scenario around the DAO fork).  Header mode skips execution — the
        fast simulator and difficulty experiments only need headers.
    state_history:
        How many recent per-block states to retain in full mode (reorg
        depth budget).
    """

    def __init__(
        self,
        config: ChainConfig,
        genesis: Block,
        genesis_state: Optional[StateDB] = None,
        execute_transactions: bool = True,
        state_history: int = 128,
    ) -> None:
        self.config = config
        self.execute_transactions = execute_transactions
        self.state_history = state_history

        self._blocks: Dict[Hash32, Block] = {genesis.block_hash: genesis}
        self._total_difficulty: Dict[Hash32, int] = {
            genesis.block_hash: genesis.difficulty
        }
        self._children: Dict[Hash32, List[Hash32]] = {}
        self._states: Dict[Hash32, StateDB] = {}
        self._receipts: Dict[Hash32, Tuple[Receipt, ...]] = {}
        #: number -> hash along the canonical chain.
        self._canonical: Dict[int, Hash32] = {0: genesis.block_hash}
        self._head_hash: Hash32 = genesis.block_hash
        self.genesis = genesis

        #: Read-only aliases of the hash->block and number->hash indices,
        #: for hot paths that probe membership per message and cannot
        #: afford a method call per probe (``repro.net.node``).  These are
        #: the same dict objects; treat them as immutable views.
        self.block_index = self._blocks
        self.canonical_index = self._canonical

        if execute_transactions:
            if genesis_state is None:
                raise ChainStoreError("full mode requires a genesis state")
            self._states[genesis.block_hash] = genesis_state

        #: Pending DAO-style irregular transfers, applied when the fork
        #: block is executed (set by scenario code before the fork height).
        self.irregular_transfers: List[Tuple[Address, Address]] = []

        #: Uncle hashes already referenced by an imported block.  Tracked
        #: store-wide (not per branch) — a simplification that only
        #: over-rejects in deep-reorg corner cases.
        self._included_ommers: set = set()

    # -- read access -------------------------------------------------------

    @property
    def head(self) -> Block:
        return self._blocks[self._head_hash]

    @property
    def height(self) -> int:
        return self.head.number

    @property
    def total_difficulty(self) -> int:
        return self._total_difficulty[self._head_hash]

    def block_by_hash(self, block_hash: Hash32) -> Optional[Block]:
        return self._blocks.get(block_hash)

    def canonical_hash(self, number: int) -> Optional[Hash32]:
        return self._canonical.get(number)

    def block_by_number(self, number: int) -> Optional[Block]:
        block_hash = self._canonical.get(number)
        return self._blocks.get(block_hash) if block_hash else None

    def __contains__(self, block_hash: Hash32) -> bool:
        return block_hash in self._blocks

    def __len__(self) -> int:
        """Number of blocks on the canonical chain (including genesis)."""
        return self.head.number + 1

    def is_canonical(self, block_hash: Hash32) -> bool:
        block = self._blocks.get(block_hash)
        return block is not None and self._canonical.get(block.number) == block_hash

    def canonical_blocks(
        self, start: int = 0, end: Optional[int] = None
    ) -> Iterator[Block]:
        """Iterate canonical blocks in ``[start, end]`` (inclusive)."""
        last = self.head.number if end is None else min(end, self.head.number)
        for number in range(start, last + 1):
            block = self.block_by_number(number)
            if block is not None:
                yield block

    def head_state(self) -> StateDB:
        if not self.execute_transactions:
            raise ChainStoreError("header-only store keeps no state")
        return self._states[self._head_hash]

    def state_at(self, block_hash: Hash32) -> Optional[StateDB]:
        return self._states.get(block_hash)

    def receipts_for(self, block_hash: Hash32) -> Tuple[Receipt, ...]:
        return self._receipts.get(block_hash, ())

    def total_difficulty_of(self, block_hash: Hash32) -> Optional[int]:
        return self._total_difficulty.get(block_hash)

    def branch_tips(self) -> List[Hash32]:
        """All chain tips (hashes with no children), heaviest first."""
        tips = [
            block_hash
            for block_hash in self._blocks
            if not self._children.get(block_hash)
        ]
        tips.sort(key=lambda h: self._total_difficulty[h], reverse=True)
        return tips

    # -- import ------------------------------------------------------------

    def import_block(self, block: Block) -> ImportResult:
        """Validate, store, and (maybe) adopt ``block``.

        Returns an :class:`ImportResult`; invalid blocks are dropped and
        orphans (unknown parent) are reported so the caller can request the
        missing ancestry, like a real sync protocol.
        """
        if block.block_hash in self._blocks:
            return ImportResult(status="known")

        parent = self._blocks.get(block.parent_hash)
        if parent is None:
            return ImportResult(status="orphan", reason="unknown-parent")

        try:
            validate_header(block, parent, self.config)
            validate_body(block, self.config)
            if block.ommers:
                validate_ommers(
                    block,
                    self._ancestor_hashes(parent),
                    self._resolve_header,
                    self.config,
                    self._included_ommers.__contains__,
                )
        except ValidationError as exc:
            return ImportResult(status="invalid", reason=exc.reason)

        receipts: Tuple[Receipt, ...] = ()
        if self.execute_transactions:
            parent_state = self._states.get(block.parent_hash)
            if parent_state is None:
                # Parent state was pruned: treat like an orphan beyond our
                # reorg budget rather than re-deriving megabytes of history.
                return ImportResult(status="orphan", reason="state-pruned")
            state = parent_state.fork()
            try:
                result: BlockResult = apply_block(
                    state, block, self.config, self.irregular_transfers
                )
            except Exception as exc:  # bad state transition = invalid block
                return ImportResult(status="invalid", reason=f"execution: {exc}")
            if block.header.state_root != state.state_root:
                return ImportResult(status="invalid", reason="bad-state-root")
            receipts = result.receipts
            self._states[block.block_hash] = state
            self._receipts[block.block_hash] = receipts
            self._prune_states(block.number)

        self._blocks[block.block_hash] = block
        self._total_difficulty[block.block_hash] = (
            self._total_difficulty[block.parent_hash] + block.difficulty
        )
        self._children.setdefault(block.parent_hash, []).append(block.block_hash)
        for ommer in block.ommers:
            self._included_ommers.add(ommer.block_hash)

        reorged = self._maybe_adopt(block)
        return ImportResult(status="imported", reorged=reorged, receipts=receipts)

    def _maybe_adopt(self, block: Block) -> bool:
        """Heaviest-chain rule; returns True if the head moved branches."""
        new_td = self._total_difficulty[block.block_hash]
        if new_td <= self._total_difficulty[self._head_hash]:
            return False

        old_head = self._head_hash
        extends_head = block.parent_hash == old_head
        self._head_hash = block.block_hash

        if extends_head:
            self._canonical[block.number] = block.block_hash
            return False

        # Reorg: rebuild the canonical index from the new head back to the
        # divergence point.
        cursor: Optional[Block] = block
        while cursor is not None:
            if self._canonical.get(cursor.number) == cursor.block_hash:
                break
            self._canonical[cursor.number] = cursor.block_hash
            cursor = self._blocks.get(cursor.parent_hash)
        # Drop stale canonical entries above the new head.
        for number in list(self._canonical):
            if number > block.number:
                del self._canonical[number]
        return True

    def _prune_states(self, current_number: int) -> None:
        if self.state_history <= 0:
            return
        floor = current_number - self.state_history
        if floor <= 0:
            return
        for block_hash in list(self._states):
            block = self._blocks.get(block_hash)
            if block is not None and 0 < block.number < floor:
                del self._states[block_hash]

    # -- fork bookkeeping ----------------------------------------------------

    def orphaned_blocks(self) -> List[Block]:
        """Stored blocks not on the canonical chain (losing branches)."""
        return [
            block
            for block_hash, block in self._blocks.items()
            if self._canonical.get(block.number) != block_hash
        ]

    def _ancestor_hashes(self, from_block: Block) -> Dict[int, Hash32]:
        """height -> hash for ``from_block`` and its recent ancestors
        (enough generations for uncle validation)."""
        ancestors: Dict[int, Hash32] = {}
        cursor: Optional[Block] = from_block
        for _ in range(MAX_OMMER_DEPTH + 1):
            if cursor is None:
                break
            ancestors[cursor.number] = cursor.block_hash
            cursor = self._blocks.get(cursor.parent_hash)
        return ancestors

    def _resolve_header(self, block_hash: Hash32) -> Optional[BlockHeader]:
        block = self._blocks.get(block_hash)
        return block.header if block is not None else None

    def candidate_ommers(self, max_count: int = 2) -> List[BlockHeader]:
        """Orphaned sibling headers a miner may reference as uncles.

        Returns headers of stored non-canonical blocks within
        ``MAX_OMMER_DEPTH`` of the head whose parent lies on the canonical
        chain and which no imported block has referenced yet — exactly
        what :func:`validate_ommers` will accept on the next block.
        """
        head = self.head
        next_number = head.number + 1
        ancestors = self._ancestor_hashes(head)
        candidates: List[BlockHeader] = []
        for block in self.orphaned_blocks():
            if block.block_hash in self._included_ommers:
                continue
            distance = next_number - block.number
            if not 1 <= distance <= MAX_OMMER_DEPTH:
                continue
            if ancestors.get(block.number - 1) != block.parent_hash:
                continue
            if ancestors.get(block.number) == block.block_hash:
                continue
            candidates.append(block.header)
            if len(candidates) >= max_count:
                break
        return candidates

    def common_ancestor(self, other: "Blockchain") -> Optional[Block]:
        """Highest block canonical on both chains (the fork point finder).

        This is the primitive the analysis layer uses to locate the DAO
        fork: walk down from the lower head until the hashes agree.
        """
        number = min(self.height, other.height)
        while number >= 0:
            mine = self.canonical_hash(number)
            theirs = other.canonical_hash(number)
            if mine is not None and mine == theirs:
                return self._blocks[mine]
            number -= 1
        return None
