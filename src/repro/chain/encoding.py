"""RLP (Recursive Length Prefix) encoding and decoding.

RLP is Ethereum's canonical serialization for blocks, transactions, and trie
nodes; transaction hashes — the identity used by the paper's echo (replay)
detection — are keccak digests of RLP payloads.  We implement the full
specification from the Yellow Paper, Appendix B:

* A single byte in ``[0x00, 0x7f]`` encodes as itself.
* A string of 0-55 bytes encodes as ``0x80 + len`` followed by the string.
* A longer string encodes as ``0xb7 + len(len)`` followed by the big-endian
  length and the string.
* A list whose encoded payload is 0-55 bytes encodes as ``0xc0 + len`` plus
  the concatenated items; longer lists use ``0xf7 + len(len)``.

Integers are encoded as their minimal big-endian byte representation (zero is
the empty string).  Decoding is strict: non-canonical encodings (leading
zeros in lengths, single bytes encoded long-form, trailing garbage) raise
:class:`RLPDecodingError`, matching the consensus-critical behaviour of real
clients.
"""

from __future__ import annotations

from typing import Any, List, Tuple, Union

__all__ = [
    "RLPError",
    "RLPEncodingError",
    "RLPDecodingError",
    "encode",
    "decode",
    "encode_int",
    "decode_int",
]

RLPItem = Union[bytes, bytearray, int, str, "RLPList"]
RLPList = List["RLPItem"]

_SHORT_STRING_OFFSET = 0x80
_LONG_STRING_OFFSET = 0xB7
_SHORT_LIST_OFFSET = 0xC0
_LONG_LIST_OFFSET = 0xF7
_MAX_SHORT_LENGTH = 55


class RLPError(ValueError):
    """Base class for RLP failures."""


class RLPEncodingError(RLPError):
    """Raised when a value cannot be represented in RLP."""


class RLPDecodingError(RLPError):
    """Raised on malformed or non-canonical RLP input."""


def encode_int(value: int) -> bytes:
    """Encode a non-negative integer as minimal big-endian bytes.

    Zero encodes as the empty byte string, per the Yellow Paper.
    """
    if value < 0:
        raise RLPEncodingError("RLP cannot encode negative integers")
    if value == 0:
        return b""
    return value.to_bytes((value.bit_length() + 7) // 8, "big")


def decode_int(payload: bytes) -> int:
    """Decode minimal big-endian bytes into an integer (strict)."""
    if payload and payload[0] == 0:
        raise RLPDecodingError("integer has leading zero byte")
    return int.from_bytes(payload, "big")


def _encode_length(length: int, short_offset: int) -> bytes:
    if length <= _MAX_SHORT_LENGTH:
        return bytes([short_offset + length])
    length_bytes = encode_int(length)
    long_offset = short_offset + _MAX_SHORT_LENGTH
    return bytes([long_offset + len(length_bytes)]) + length_bytes


def encode(item: RLPItem) -> bytes:
    """Encode ``item`` (bytes, int, str, or nested list thereof) as RLP."""
    if isinstance(item, (bytes, bytearray)):
        payload = bytes(item)
        if len(payload) == 1 and payload[0] < _SHORT_STRING_OFFSET:
            return payload
        return _encode_length(len(payload), _SHORT_STRING_OFFSET) + payload
    if isinstance(item, bool):
        # bool is a subclass of int; reject it explicitly to avoid silently
        # serializing flags that callers meant to encode some other way.
        raise RLPEncodingError("RLP does not define a boolean type")
    if isinstance(item, int):
        return encode(encode_int(item))
    if isinstance(item, str):
        return encode(item.encode("utf-8"))
    if isinstance(item, (list, tuple)):
        payload = b"".join(encode(sub) for sub in item)
        return _encode_length(len(payload), _SHORT_LIST_OFFSET) + payload
    raise RLPEncodingError(f"cannot RLP-encode object of type {type(item)!r}")


def _decode_item(data: bytes, offset: int) -> Tuple[Any, int]:
    """Decode one item starting at ``offset``; return (item, next_offset)."""
    if offset >= len(data):
        raise RLPDecodingError("unexpected end of input")
    prefix = data[offset]

    if prefix < _SHORT_STRING_OFFSET:
        return bytes([prefix]), offset + 1

    if prefix <= _LONG_STRING_OFFSET:
        length = prefix - _SHORT_STRING_OFFSET
        start = offset + 1
        end = start + length
        if end > len(data):
            raise RLPDecodingError("string extends past end of input")
        payload = data[start:end]
        if length == 1 and payload[0] < _SHORT_STRING_OFFSET:
            raise RLPDecodingError("single byte should be encoded as itself")
        return payload, end

    if prefix < _SHORT_LIST_OFFSET:
        length_of_length = prefix - _LONG_STRING_OFFSET
        length, start = _read_long_length(data, offset, length_of_length)
        end = start + length
        if end > len(data):
            raise RLPDecodingError("string extends past end of input")
        return data[start:end], end

    if prefix <= _LONG_LIST_OFFSET:
        length = prefix - _SHORT_LIST_OFFSET
        start = offset + 1
        return _decode_list_payload(data, start, start + length)

    length_of_length = prefix - _LONG_LIST_OFFSET
    length, start = _read_long_length(data, offset, length_of_length)
    return _decode_list_payload(data, start, start + length)


def _read_long_length(
    data: bytes, offset: int, length_of_length: int
) -> Tuple[int, int]:
    start = offset + 1
    end = start + length_of_length
    if end > len(data):
        raise RLPDecodingError("length field extends past end of input")
    length_bytes = data[start:end]
    if length_bytes and length_bytes[0] == 0:
        raise RLPDecodingError("length field has leading zero")
    length = int.from_bytes(length_bytes, "big")
    if length <= _MAX_SHORT_LENGTH:
        raise RLPDecodingError("long-form encoding used for short payload")
    return length, end


def _decode_list_payload(
    data: bytes, start: int, end: int
) -> Tuple[list, int]:
    if end > len(data):
        raise RLPDecodingError("list extends past end of input")
    items = []
    cursor = start
    while cursor < end:
        item, cursor = _decode_item(data, cursor)
        items.append(item)
    if cursor != end:
        raise RLPDecodingError("list payload length mismatch")
    return items, end


def decode(data: bytes) -> Any:
    """Decode a complete RLP payload; raise on trailing bytes.

    Strings come back as ``bytes`` and lists as Python lists.  Callers that
    expect integers should apply :func:`decode_int` to the byte fields.
    """
    if not isinstance(data, (bytes, bytearray)):
        raise RLPDecodingError("RLP input must be bytes")
    item, end = _decode_item(bytes(data), 0)
    if end != len(data):
        raise RLPDecodingError(f"{len(data) - end} trailing bytes after item")
    return item
