"""Ethereum-style blockchain substrate.

Everything consensus-level lives here: RLP encoding, hashing/signatures,
transactions (with and without EIP-155 replay protection), blocks, the
Merkle trie, account state, the Homestead difficulty algorithm, per-chain
fork configuration, validation, and the heaviest-chain block store.
"""

from .block import Block, BlockHeader, transactions_root
from .chainstore import Blockchain, ImportResult
from .config import (
    BLOCK_REWARD,
    DAO_FORK_BLOCK,
    ETC_CONFIG,
    ETH_CONFIG,
    PRE_FORK_CONFIG,
    ChainConfig,
)
from .crypto import PrivateKey, Signature, keccak256, recover, sign
from .difficulty import (
    HOMESTEAD_RULE,
    MIN_DIFFICULTY,
    TARGET_BLOCK_TIME,
    equilibrium_difficulty,
    expected_block_time,
    frontier_difficulty,
    homestead_difficulty,
)
from .genesis import build_genesis
from .processor import (
    TransactionRejected,
    apply_block,
    apply_transaction,
    validate_transaction_for_chain,
)
from .receipt import ExecutionStatus, LogEntry, Receipt
from .state import Account, InsufficientBalance, StateDB
from .transaction import (
    CONTRACT_CREATION,
    SignedTransaction,
    Transaction,
    TransactionError,
    sign_transaction,
)
from .types import Address, Hash32, Wei, ether, from_wei, to_wei
from .validation import ValidationError, validate_body, validate_header

__all__ = [
    "Address",
    "Hash32",
    "Wei",
    "ether",
    "to_wei",
    "from_wei",
    "PrivateKey",
    "Signature",
    "keccak256",
    "sign",
    "recover",
    "Transaction",
    "SignedTransaction",
    "sign_transaction",
    "TransactionError",
    "CONTRACT_CREATION",
    "Block",
    "BlockHeader",
    "transactions_root",
    "Account",
    "StateDB",
    "InsufficientBalance",
    "Receipt",
    "LogEntry",
    "ExecutionStatus",
    "ChainConfig",
    "ETH_CONFIG",
    "ETC_CONFIG",
    "PRE_FORK_CONFIG",
    "DAO_FORK_BLOCK",
    "BLOCK_REWARD",
    "MIN_DIFFICULTY",
    "TARGET_BLOCK_TIME",
    "HOMESTEAD_RULE",
    "homestead_difficulty",
    "frontier_difficulty",
    "expected_block_time",
    "equilibrium_difficulty",
    "build_genesis",
    "Blockchain",
    "ImportResult",
    "ValidationError",
    "validate_header",
    "validate_body",
    "apply_block",
    "apply_transaction",
    "TransactionRejected",
    "validate_transaction_for_chain",
]
