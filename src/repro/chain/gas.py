"""Gas accounting constants and intrinsic-gas calculation.

Gas is Ethereum's execution-metering unit: every transaction pays an
intrinsic cost up front, and contract execution pays per operation.  Two of
the paper's background facts live here:

* "each operation the code executes, and each byte of memory the code uses,
  costs gas" (Section 2.1) — the per-opcode schedule consumed by
  :mod:`repro.evm`;
* the November 2016 ETH hard fork "to increase the cost of a particular
  contract call" (EIP-150, Section 2.1) — :func:`call_gas_cost` switches
  schedules at the fork, which is how we reproduce the DoS-fork scenario.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "GasSchedule",
    "FRONTIER_SCHEDULE",
    "TANGERINE_SCHEDULE",
    "intrinsic_gas",
    "TX_GAS",
    "TX_CREATE_GAS",
    "TX_DATA_ZERO_GAS",
    "TX_DATA_NONZERO_GAS",
    "BLOCK_GAS_LIMIT",
]

#: Base cost of any transaction.
TX_GAS = 21_000
#: Additional base cost of contract creation.
TX_CREATE_GAS = 32_000
#: Per-byte calldata costs.
TX_DATA_ZERO_GAS = 4
TX_DATA_NONZERO_GAS = 68

#: Default block gas limit (mainnet hovered near this through 2016-17).
BLOCK_GAS_LIMIT = 4_700_000


@dataclass(frozen=True)
class GasSchedule:
    """Per-operation gas costs for one protocol era."""

    base: int = 2  # trivial ops: POP, PC, etc.
    verylow: int = 3  # arithmetic, PUSH, DUP, SWAP
    low: int = 5  # MUL, DIV, MOD
    mid: int = 8  # ADDMOD, JUMP
    high: int = 10  # JUMPI
    jumpdest: int = 1
    sload: int = 50
    sstore_set: int = 20_000
    sstore_reset: int = 5_000
    sstore_refund: int = 15_000
    balance: int = 20
    extcode: int = 20
    call: int = 40
    call_value: int = 9_000
    call_stipend: int = 2_300
    call_new_account: int = 25_000
    create: int = 32_000
    selfdestruct: int = 0
    selfdestruct_refund: int = 24_000
    memory_word: int = 3
    log: int = 375
    log_topic: int = 375
    log_data_byte: int = 8
    sha3: int = 30
    sha3_word: int = 6
    copy_word: int = 3
    #: EIP-150's "all but one 64th" rule: a CALL may forward at most
    #: 63/64 of remaining gas, defeating deep-recursion DoS contracts.
    cap_call_gas: bool = False


#: Pre-EIP-150 schedule.  The tiny costs of state-reading ops (BALANCE,
#: EXTCODESIZE, CALL at 40 gas) are what made the autumn-2016 DoS attacks
#: cheap, forcing the hard forks described in the paper's Section 2.1.
FRONTIER_SCHEDULE = GasSchedule()

#: EIP-150 ("Tangerine Whistle") repricing, adopted by ETH on 2016-11-22 and
#: by ETC on 2017-01-13.
TANGERINE_SCHEDULE = GasSchedule(
    sload=200,
    balance=400,
    extcode=700,
    call=700,
    selfdestruct=5_000,
    cap_call_gas=True,
)


def intrinsic_gas(data: bytes, is_create: bool) -> int:
    """Up-front gas charged before any execution happens."""
    gas = TX_GAS
    if is_create:
        gas += TX_CREATE_GAS
    for byte in data:
        gas += TX_DATA_ZERO_GAS if byte == 0 else TX_DATA_NONZERO_GAS
    return gas
