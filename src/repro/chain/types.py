"""Fundamental value types shared across the chain substrate.

The real Ethereum client stack passes 20-byte addresses, 32-byte hashes, and
unbounded integers ("wei") between every layer.  We keep the same conventions
so that code reading this library maps directly onto the concepts in the
paper: accounts are addresses, transactions reference addresses and carry
wei-denominated values, and blocks/transactions are identified by 32-byte
hashes.

Values are represented as immutable ``bytes`` wrappers with validated length,
plus a handful of unit helpers (ether/gwei/wei conversions).  Everything here
is deliberately dependency-free.
"""

from __future__ import annotations

from typing import Union

__all__ = [
    "Address",
    "Hash32",
    "Wei",
    "ADDRESS_LENGTH",
    "HASH_LENGTH",
    "WEI_PER_GWEI",
    "WEI_PER_ETHER",
    "to_wei",
    "from_wei",
    "ether",
]

ADDRESS_LENGTH = 20
HASH_LENGTH = 32

WEI_PER_GWEI = 10**9
WEI_PER_ETHER = 10**18

#: Wei amounts are plain integers; the alias documents intent in signatures.
Wei = int


class _FixedBytes(bytes):
    """A ``bytes`` subclass with a fixed, validated length."""

    LENGTH = 0

    def __new__(cls, value: Union[bytes, bytearray, str, "_FixedBytes"]):
        if isinstance(value, str):
            text = value[2:] if value.startswith("0x") else value
            raw = bytes.fromhex(text)
        else:
            raw = bytes(value)
        if len(raw) != cls.LENGTH:
            raise ValueError(
                f"{cls.__name__} must be exactly {cls.LENGTH} bytes, "
                f"got {len(raw)}"
            )
        return super().__new__(cls, raw)

    @classmethod
    def from_int(cls, value: int) -> "_FixedBytes":
        """Build from a non-negative integer (big-endian, left-padded)."""
        if value < 0:
            raise ValueError("value must be non-negative")
        return cls(value.to_bytes(cls.LENGTH, "big"))

    def to_int(self) -> int:
        return int.from_bytes(self, "big")

    @property
    def hex_prefixed(self) -> str:
        return "0x" + self.hex()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.hex_prefixed!r})"


class Address(_FixedBytes):
    """A 20-byte account identifier (externally owned account or contract)."""

    LENGTH = ADDRESS_LENGTH

    @classmethod
    def zero(cls) -> "Address":
        return cls(b"\x00" * ADDRESS_LENGTH)


class Hash32(_FixedBytes):
    """A 32-byte digest identifying blocks, transactions, and trie nodes."""

    LENGTH = HASH_LENGTH

    @classmethod
    def zero(cls) -> "Hash32":
        return cls(b"\x00" * HASH_LENGTH)


_UNIT_FACTORS = {
    "wei": 1,
    "kwei": 10**3,
    "mwei": 10**6,
    "gwei": WEI_PER_GWEI,
    "szabo": 10**12,
    "finney": 10**15,
    "ether": WEI_PER_ETHER,
}


def to_wei(amount: Union[int, float], unit: str = "ether") -> Wei:
    """Convert ``amount`` of ``unit`` into wei.

    Float inputs are supported for convenience in examples and workloads but
    are rounded to the nearest wei; chain-internal code always uses ints.
    """
    try:
        factor = _UNIT_FACTORS[unit]
    except KeyError:
        raise ValueError(f"unknown unit {unit!r}") from None
    if isinstance(amount, float):
        return int(round(amount * factor))
    return amount * factor


def from_wei(amount: Wei, unit: str = "ether") -> float:
    """Convert wei into a float amount of ``unit`` (for reporting only)."""
    try:
        factor = _UNIT_FACTORS[unit]
    except KeyError:
        raise ValueError(f"unknown unit {unit!r}") from None
    return amount / factor


def ether(amount: Union[int, float]) -> Wei:
    """Shorthand for :func:`to_wei` with the ether unit."""
    return to_wei(amount, "ether")
