"""Transactions, signing, and EIP-155 replay protection.

This module is the heart of the paper's Section 3.3 security analysis.  A
transaction signed *without* a chain id commits only to
``(nonce, gas_price, gas_limit, to, value, data)`` — exactly the same bytes
on ETH and ETC — so anyone can rebroadcast it on the sibling chain, where it
re-executes if the sender's account state still permits it ("echo"
transactions, Figure 4).  EIP-155 fixes this by mixing the chain id into the
signed payload; we implement both schemes and the backwards-compatible
opt-in, matching the history the paper describes (ETC added replay
protection in its January 2017 fork).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional

from . import encoding
from .crypto import PrivateKey, Signature, keccak256, recover, sign
from .types import Address, Hash32, Wei

__all__ = [
    "Transaction",
    "SignedTransaction",
    "TransactionError",
    "sign_transaction",
    "CONTRACT_CREATION",
]

#: Sentinel used for the ``to`` field of contract-creation transactions.
CONTRACT_CREATION: Optional[Address] = None


class TransactionError(ValueError):
    """Raised for malformed or unverifiable transactions."""


@dataclass(frozen=True)
class Transaction:
    """An unsigned transfer or contract call.

    ``chain_id`` of ``None`` means the pre-EIP-155 format: the signature
    does not commit to a chain, and the transaction is replayable across any
    fork that shares the sender's account history.
    """

    nonce: int
    gas_price: Wei
    gas_limit: int
    to: Optional[Address]
    value: Wei
    data: bytes = b""
    chain_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.nonce < 0:
            raise TransactionError("nonce must be non-negative")
        if self.gas_price < 0:
            raise TransactionError("gas price must be non-negative")
        if self.gas_limit < 0:
            raise TransactionError("gas limit must be non-negative")
        if self.value < 0:
            raise TransactionError("value must be non-negative")
        if self.chain_id is not None and self.chain_id <= 0:
            raise TransactionError("chain id must be positive when present")

    @property
    def is_contract_creation(self) -> bool:
        return self.to is None

    @property
    def is_contract_interaction(self) -> bool:
        """True if this is a contract call or creation (carries code/data).

        The paper's Figure 2 (bottom) tracks the fraction of transactions
        that are "contract calls rather than simple currency exchanges";
        this predicate is the classifier behind that series.
        """
        return self.is_contract_creation or len(self.data) > 0

    @property
    def is_replay_protected(self) -> bool:
        return self.chain_id is not None

    def _signing_fields(self) -> list:
        fields: list = [
            self.nonce,
            self.gas_price,
            self.gas_limit,
            bytes(self.to) if self.to is not None else b"",
            self.value,
            self.data,
        ]
        if self.chain_id is not None:
            # EIP-155: the chain id (and two empty placeholders standing in
            # for r and s) join the signed payload.
            fields.extend([self.chain_id, 0, 0])
        return fields

    @property
    def signing_hash(self) -> Hash32:
        """The digest a sender signs; commits to chain id iff EIP-155."""
        return keccak256(encoding.encode(self._signing_fields()))


@dataclass(frozen=True)
class SignedTransaction:
    """A transaction plus its sender's signature.

    Identity (``tx_hash``) covers the signature, so the same logical payload
    signed twice has one hash — which is precisely why an echoed transaction
    is *recognizable* across chains: the paper's detector matches hashes
    seen on ETH against hashes seen on ETC.
    """

    payload: Transaction
    signature: Signature

    @cached_property
    def tx_hash(self) -> Hash32:
        fields = self.payload._signing_fields() + [self.signature.to_bytes()]
        return keccak256(encoding.encode(fields))

    @cached_property
    def sender(self) -> Address:
        """Recover the sender; raises if the signature does not verify."""
        address = recover(self.payload.signing_hash, self.signature)
        if address is None:
            raise TransactionError("signature does not recover to a sender")
        return address

    def verify(self) -> bool:
        """True if the signature recovers to some sender address."""
        return recover(self.payload.signing_hash, self.signature) is not None

    def valid_on_chain(self, chain_id: int) -> bool:
        """Would this transaction be accepted by a chain with ``chain_id``?

        Pre-EIP-155 transactions are valid everywhere (the replay hazard);
        protected ones are valid only on their own chain.
        """
        if self.payload.chain_id is None:
            return True
        return self.payload.chain_id == chain_id

    # Convenience passthroughs used heavily by the analysis layer.
    @property
    def nonce(self) -> int:
        return self.payload.nonce

    @property
    def to(self) -> Optional[Address]:
        return self.payload.to

    @property
    def value(self) -> Wei:
        return self.payload.value

    @property
    def gas_price(self) -> Wei:
        return self.payload.gas_price

    @property
    def gas_limit(self) -> int:
        return self.payload.gas_limit

    @property
    def data(self) -> bytes:
        return self.payload.data

    @property
    def is_contract_interaction(self) -> bool:
        return self.payload.is_contract_interaction

    @property
    def is_replay_protected(self) -> bool:
        return self.payload.is_replay_protected


def sign_transaction(key: PrivateKey, payload: Transaction) -> SignedTransaction:
    """Sign ``payload`` with ``key`` and return the sealed transaction."""
    return SignedTransaction(
        payload=payload, signature=sign(key, payload.signing_hash)
    )
