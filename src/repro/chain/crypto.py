"""Hashing and (simulated) signature primitives.

Real Ethereum uses Keccak-256 for all identities and secp256k1 ECDSA for
transaction signatures.  Python's standard library ships SHA3-256 (the NIST
finalization of Keccak); the two differ only in a padding byte, and nothing
in this library depends on matching mainnet digests — only on the digest
being a collision-resistant 32-byte function, which SHA3-256 is.  We expose
it under the name ``keccak256`` to keep the call sites reading like the
protocol specification.

Signatures are the one place we deliberately simulate rather than implement:
secp256k1 point arithmetic adds nothing to the paper's analysis (the paper
never inspects signatures; it only relies on the fact that a signed
transaction is *valid on both chains* when no chain id separates them).  Our
``sign``/``recover`` scheme is an HMAC-style keyed construction that has the
same interface properties the protocol needs:

* only the holder of the private key can produce a signature that recovers
  to the corresponding address;
* the signature commits to the exact signed payload (any mutation breaks
  recovery);
* recovery yields the sender address from (payload, signature) alone, like
  ``ecrecover``.

This preserves the replay-attack mechanics exactly: a transaction signed
without a chain id verifies on either chain, and one signed under EIP-155
binds the chain id into the signed payload and therefore fails recovery when
rebroadcast on the other chain.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Optional

from .types import Address, Hash32

__all__ = [
    "keccak256",
    "keccak256_hex",
    "PrivateKey",
    "Signature",
    "sign",
    "recover",
    "address_from_key",
    "SignatureError",
]


class SignatureError(ValueError):
    """Raised when a signature is malformed or does not verify."""


def keccak256(data: bytes) -> Hash32:
    """32-byte collision-resistant digest used for all chain identities."""
    return Hash32(hashlib.sha3_256(bytes(data)).digest())


def keccak256_hex(data: bytes) -> str:
    return keccak256(data).hex_prefixed


@dataclass(frozen=True)
class PrivateKey:
    """An account's signing key.

    Keys are 32 opaque bytes.  The public "key" is derived by hashing, and
    the address is the trailing 20 bytes of that hash, mirroring Ethereum's
    ``address = keccak(pubkey)[12:]`` derivation.
    """

    secret: bytes

    def __post_init__(self) -> None:
        if len(self.secret) != 32:
            raise ValueError("private key must be 32 bytes")

    @classmethod
    def from_seed(cls, seed: str) -> "PrivateKey":
        """Derive a deterministic key from a human-readable seed string."""
        return cls(keccak256(b"repro-key:" + seed.encode("utf-8")))

    @property
    def public_key(self) -> bytes:
        return keccak256(b"pub:" + self.secret)

    @property
    def address(self) -> Address:
        return Address(self.public_key[12:])


@dataclass(frozen=True)
class Signature:
    """A recoverable signature over a message hash.

    ``proof`` plays the role of (r, s): a MAC binding the key to the message.
    ``pubkey`` plays the role of the recovery id ``v`` plus the recovered
    point: it lets verifiers recompute the signer's address.  A verifier
    checks that ``proof`` is the correct MAC for (pubkey, message); forging
    it requires the private key, since the MAC key is derived from it.
    """

    proof: bytes
    pubkey: bytes

    def __post_init__(self) -> None:
        if len(self.proof) != 32 or len(self.pubkey) != 32:
            raise ValueError("signature components must be 32 bytes each")

    def to_bytes(self) -> bytes:
        return self.proof + self.pubkey

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Signature":
        if len(raw) != 64:
            raise SignatureError("serialized signature must be 64 bytes")
        return cls(proof=raw[:32], pubkey=raw[32:])


def _mac_key(key: PrivateKey) -> bytes:
    # The MAC key is a one-way function of the secret; revealing signatures
    # therefore reveals nothing about the secret itself.
    return keccak256(b"mac:" + key.secret)


def _expected_proof(mac_key: bytes, pubkey: bytes, message_hash: bytes) -> bytes:
    return hmac.new(mac_key, pubkey + message_hash, hashlib.sha3_256).digest()


def sign(key: PrivateKey, message_hash: Hash32) -> Signature:
    """Sign a 32-byte message hash with ``key``.

    Signing registers the key's verification material in the process-global
    registry consulted by :func:`recover` (see that function's docstring).
    """
    _KEY_REGISTRY[bytes(key.public_key)] = _mac_key(key)
    proof = _expected_proof(_mac_key(key), key.public_key, bytes(message_hash))
    return Signature(proof=proof, pubkey=bytes(key.public_key))


def recover(message_hash: Hash32, signature: Signature) -> Optional[Address]:
    """Recover the signer address, or ``None`` if the signature is invalid.

    Because verification requires the MAC key (derived from the secret), we
    keep a process-global registry of every key that has ever signed.  This
    mirrors how a simulation owns all its actors; it is *not* a claim about
    real-world verifiability, which ECDSA provides mathematically.  The
    registry is an implementation detail hidden behind the ``ecrecover``-like
    interface.
    """
    mac_key = _KEY_REGISTRY.get(signature.pubkey)
    if mac_key is None:
        return None
    expected = _expected_proof(mac_key, signature.pubkey, bytes(message_hash))
    if not hmac.compare_digest(expected, signature.proof):
        return None
    return Address(signature.pubkey[12:])


def address_from_key(key: PrivateKey) -> Address:
    return key.address


# Registry mapping public key -> MAC key, populated at signing time so that
# recovery can verify signatures without access to the secret.
_KEY_REGISTRY: dict = {}
