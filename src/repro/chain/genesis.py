"""Genesis block construction.

Both ETH and ETC share one genesis (and 1.92M blocks of history above it);
the fork is a divergence, not two origins.  Scenario code builds a single
genesis with funded accounts, grows a shared prefix, and only then splits.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .block import GENESIS_PARENT_HASH, Block, BlockHeader, transactions_root
from .difficulty import MIN_DIFFICULTY
from .gas import BLOCK_GAS_LIMIT
from .state import StateDB
from .types import Address, Wei

__all__ = ["build_genesis", "GENESIS_TIMESTAMP"]

#: Default genesis timestamp: 2015-07-30, Ethereum's launch day.
GENESIS_TIMESTAMP = 1_438_226_773


def build_genesis(
    alloc: Optional[Dict[Address, Wei]] = None,
    timestamp: int = GENESIS_TIMESTAMP,
    difficulty: int = MIN_DIFFICULTY,
    gas_limit: int = BLOCK_GAS_LIMIT,
) -> Tuple[Block, StateDB]:
    """Create the genesis block and its pre-funded world state.

    ``alloc`` maps addresses to initial wei balances (the "premine"); the
    returned state's root is committed into the genesis header.
    """
    state = StateDB()
    for address, balance in (alloc or {}).items():
        state.credit(address, balance)

    header = BlockHeader(
        parent_hash=GENESIS_PARENT_HASH,
        number=0,
        timestamp=timestamp,
        difficulty=difficulty,
        coinbase=Address.zero(),
        state_root=state.state_root,
        tx_root=transactions_root(()),
        gas_limit=gas_limit,
        gas_used=0,
        extra_data=b"repro-genesis",
    )
    return Block(header=header), state
