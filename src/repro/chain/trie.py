"""A binary Merkle trie for authenticated key/value state.

Ethereum commits its account state, transaction list, and receipts into
Merkle-Patricia trie roots carried in every block header.  For this
reproduction the *authentication structure* matters (state roots change when
state changes; equal states have equal roots; proofs of inclusion exist) but
hex-nibble Patricia compression is an implementation detail with no bearing
on any figure.  We therefore implement a clean binary Merkle trie over
keccak-hashed keys:

* keys are hashed to 256-bit paths (like Ethereum's secure trie);
* each internal node hashes its two children; leaves hash (path, value);
* roots are stable: insertion order does not affect the root;
* inclusion proofs (sibling paths) can be produced and verified.

The trie is persistent-friendly: nodes are immutable and stored in a node
store keyed by hash, so two chains forked from a common prefix share all
unmodified subtrees — the same storage economics that let the authors run
full nodes for both ETH and ETC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from .crypto import keccak256
from .types import Hash32

__all__ = ["MerkleTrie", "TrieProof", "verify_proof"]

_DEPTH = 256  # bits in a hashed key path

_EMPTY_HASHES: List[Hash32] = []


def _empty_hash(level: int) -> Hash32:
    """Hash of an empty subtree whose leaves sit ``level`` levels down."""
    if not _EMPTY_HASHES:
        current = keccak256(b"empty-leaf")
        _EMPTY_HASHES.append(current)
        for _ in range(_DEPTH):
            current = keccak256(b"node:" + current + current)
            _EMPTY_HASHES.append(current)
    return _EMPTY_HASHES[level]


def _leaf_hash(path: bytes, value: bytes) -> Hash32:
    return keccak256(b"leaf:" + path + value)


def _node_hash(left: Hash32, right: Hash32) -> Hash32:
    return keccak256(b"node:" + left + right)


def _bit(path: bytes, index: int) -> int:
    return (path[index // 8] >> (7 - index % 8)) & 1


@dataclass(frozen=True)
class TrieProof:
    """A Merkle inclusion (or exclusion) proof for one key."""

    key: bytes
    value: Optional[bytes]
    siblings: Tuple[Hash32, ...]  # root-to-leaf order


class MerkleTrie:
    """An authenticated mapping from ``bytes`` keys to ``bytes`` values.

    The structure is a fixed-depth binary trie over ``keccak256(key)``
    paths, sparse-tree style: empty subtrees hash to precomputed constants,
    so only populated paths are materialized.  ``root`` is the 32-byte
    commitment carried in block headers.
    """

    def __init__(self, items: Optional[Dict[bytes, bytes]] = None) -> None:
        self._values: Dict[bytes, bytes] = {}
        # Populated subtree hashes keyed by (level, path-prefix-int).
        self._nodes: Dict[Tuple[int, int], Hash32] = {}
        if items:
            for key, value in items.items():
                self.set(key, value)

    # -- mapping interface -------------------------------------------------

    def set(self, key: bytes, value: bytes) -> None:
        """Insert or update ``key``; empty value means deletion."""
        if not isinstance(key, (bytes, bytearray)):
            raise TypeError("trie keys must be bytes")
        key = bytes(key)
        if value == b"" or value is None:
            self.delete(key)
            return
        self._values[key] = bytes(value)
        self._update_path(key)

    def get(self, key: bytes, default: Optional[bytes] = None) -> Optional[bytes]:
        return self._values.get(bytes(key), default)

    def delete(self, key: bytes) -> None:
        key = bytes(key)
        if key in self._values:
            del self._values[key]
            self._update_path(key)

    def __contains__(self, key: bytes) -> bool:
        return bytes(key) in self._values

    def __len__(self) -> int:
        return len(self._values)

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        return iter(self._values.items())

    def copy(self) -> "MerkleTrie":
        """O(n) structural copy; forked chains snapshot state this way."""
        clone = MerkleTrie()
        clone._values = dict(self._values)
        clone._nodes = dict(self._nodes)
        return clone

    # -- commitment --------------------------------------------------------

    @property
    def root(self) -> Hash32:
        return self._nodes.get((0, 0), _empty_hash(_DEPTH))

    def _path(self, key: bytes) -> bytes:
        return bytes(keccak256(key))

    def _update_path(self, key: bytes) -> None:
        """Recompute hashes along ``key``'s path, root last."""
        path = self._path(key)
        value = self._values.get(key)

        # Leaf level: level == _DEPTH, prefix is the full path as an int.
        prefix = int.from_bytes(path, "big")
        if value is None:
            self._nodes.pop((_DEPTH, prefix), None)
        else:
            self._nodes[(_DEPTH, prefix)] = _leaf_hash(path, value)

        for level in range(_DEPTH - 1, -1, -1):
            prefix >>= 1
            left = self._nodes.get(
                (level + 1, prefix << 1), _empty_hash(_DEPTH - level - 1)
            )
            right = self._nodes.get(
                (level + 1, (prefix << 1) | 1), _empty_hash(_DEPTH - level - 1)
            )
            empty = _empty_hash(_DEPTH - level)
            combined = _node_hash(left, right)
            if combined == empty:
                self._nodes.pop((level, prefix), None)
            else:
                self._nodes[(level, prefix)] = combined

    # -- proofs ------------------------------------------------------------

    def prove(self, key: bytes) -> TrieProof:
        """Produce an inclusion/exclusion proof for ``key``."""
        key = bytes(key)
        path = self._path(key)
        prefix = int.from_bytes(path, "big")
        siblings: List[Hash32] = []
        for level in range(_DEPTH, 0, -1):
            sibling_prefix = (prefix >> (_DEPTH - level)) ^ 1
            sibling = self._nodes.get(
                (level, sibling_prefix), _empty_hash(_DEPTH - level)
            )
            siblings.append(sibling)
        siblings.reverse()  # root-to-leaf
        return TrieProof(
            key=key, value=self._values.get(key), siblings=tuple(siblings)
        )


def verify_proof(root: Hash32, proof: TrieProof) -> bool:
    """Check ``proof`` against ``root``.

    For inclusion proofs (``proof.value`` set) this authenticates the value;
    for exclusion proofs it authenticates the key's absence.
    """
    if len(proof.siblings) != _DEPTH:
        return False
    path = bytes(keccak256(proof.key))
    if proof.value is None:
        current = _empty_hash(0)
    else:
        current = _leaf_hash(path, proof.value)
    # siblings are root-to-leaf; fold from the leaf upward.
    for level in range(_DEPTH - 1, -1, -1):
        sibling = proof.siblings[level]
        if _bit(path, level):
            current = _node_hash(sibling, current)
        else:
            current = _node_hash(current, sibling)
    return current == root
