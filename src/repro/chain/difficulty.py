"""The Ethereum difficulty-adjustment algorithm.

This module is the mechanism behind the paper's Figure 1 and Observation 2.
Quoting Section 3.2: "block generation is limited by the difficulty
parameter, which is calculated based on the difficulty of the previous
block: if the time between blocks is below the target of 14 seconds, the
difficulty is raised; if the time between blocks is above 14 seconds, the
difficulty is lowered, but there is a cap in the absolute difference in
difficulty between two blocks."

That cap — the ``-99`` clamp in the Homestead rule below — is why ETC took
*two days* to recover after losing ~90% of its hashpower at the fork: each
block can shed at most ``parent_difficulty // 2048 * 99`` (< 5%) of its
difficulty, and blocks were arriving ~20 minutes apart while difficulty was
still sized for the full network.

We implement the consensus rules exactly as specified:

* **Frontier** (launch, July 2015): ±``parent // 2048`` based on a 13-second
  threshold.
* **Homestead** (March 2016, EIP-2; in force at the DAO fork):
  ``parent + parent // 2048 * max(1 - (delta // 10), -99)``.
* The **difficulty bomb** (exponential ice-age term) included from Frontier:
  ``2 ** (number // 100_000 - 2)``.
* **ECIP-1010** style bomb delay, which ETC adopted — exposed as an option
  so long-horizon ETC simulations do not freeze.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

__all__ = [
    "MIN_DIFFICULTY",
    "DIFFICULTY_BOUND_DIVISOR",
    "HOMESTEAD_CLAMP",
    "TARGET_BLOCK_TIME",
    "frontier_difficulty",
    "homestead_difficulty",
    "difficulty_bomb",
    "DifficultyRule",
    "HOMESTEAD_RULE",
    "FRONTIER_RULE",
    "make_fast_rule",
    "expected_block_time",
    "equilibrium_difficulty",
]

#: The protocol floor: difficulty never drops below this (genesis value).
MIN_DIFFICULTY = 131_072

#: ``parent_difficulty // 2048`` is the adjustment quantum.
DIFFICULTY_BOUND_DIVISOR = 2_048

#: Homestead clamps the per-block adjustment multiplier at -99, i.e. a block
#: can lower difficulty by at most ``99/2048`` (~4.8%) of its parent's.
HOMESTEAD_CLAMP = -99

#: The average block interval the adjustment converges to.  The Homestead
#: rule's ``1 - delta // 10`` term balances at deltas in [10, 20); with
#: exponentially distributed block times this yields the ~14 s average the
#: paper quotes.
TARGET_BLOCK_TIME = 14

#: Period (in blocks) of the difficulty bomb's exponentiation.
BOMB_PERIOD = 100_000


def difficulty_bomb(block_number: int, delay_blocks: int = 0) -> int:
    """The "ice age" term added to every block's difficulty.

    ``delay_blocks`` implements ECIP-1010-style bomb postponement: the bomb
    computes as if the chain were ``delay_blocks`` younger.  At the July
    2016 fork height (1.92M) the bomb term is 2**17 ≈ 1.3e5 — already
    present but ~8 orders of magnitude below total difficulty.
    """
    effective = max(block_number - delay_blocks, 0)
    exponent = effective // BOMB_PERIOD - 2
    if exponent < 0:
        return 0
    return 2**exponent


def frontier_difficulty(
    parent_difficulty: int,
    parent_timestamp: int,
    timestamp: int,
    block_number: int,
    bomb_delay: int = 0,
) -> int:
    """The original (pre-Homestead) rule: a fixed step up or down.

    Raise by ``parent // 2048`` when the gap is under 13 s, lower by the
    same amount otherwise.  Kept both for historical fidelity (pre-fork
    blocks) and as an ablation comparator.
    """
    if timestamp <= parent_timestamp:
        raise ValueError("timestamp must increase between blocks")
    adjustment = parent_difficulty // DIFFICULTY_BOUND_DIVISOR
    if timestamp - parent_timestamp < 13:
        difficulty = parent_difficulty + adjustment
    else:
        difficulty = parent_difficulty - adjustment
    difficulty += difficulty_bomb(block_number, bomb_delay)
    return max(difficulty, MIN_DIFFICULTY)


def homestead_difficulty(
    parent_difficulty: int,
    parent_timestamp: int,
    timestamp: int,
    block_number: int,
    bomb_delay: int = 0,
) -> int:
    """EIP-2 rule, in force on both ETH and ETC at the DAO fork.

    ``difficulty = parent + parent // 2048 * max(1 - (ts - parent_ts) // 10,
    -99) + bomb``.  The ``max(..., -99)`` clamp bounds how fast difficulty
    can fall and is directly responsible for ETC's two-day stall after the
    fork (Figure 1).
    """
    if timestamp <= parent_timestamp:
        raise ValueError("timestamp must increase between blocks")
    delta = timestamp - parent_timestamp
    multiplier = max(1 - delta // 10, HOMESTEAD_CLAMP)
    difficulty = (
        parent_difficulty
        + parent_difficulty // DIFFICULTY_BOUND_DIVISOR * multiplier
    )
    difficulty += difficulty_bomb(block_number, bomb_delay)
    return max(difficulty, MIN_DIFFICULTY)


@dataclass(frozen=True)
class DifficultyRule:
    """A named difficulty algorithm, selectable per chain configuration."""

    name: str
    compute: Callable[[int, int, int, int, int], int]

    def __call__(
        self,
        parent_difficulty: int,
        parent_timestamp: int,
        timestamp: int,
        block_number: int,
        bomb_delay: int = 0,
    ) -> int:
        return self.compute(
            parent_difficulty, parent_timestamp, timestamp, block_number, bomb_delay
        )


FRONTIER_RULE = DifficultyRule("frontier", frontier_difficulty)
HOMESTEAD_RULE = DifficultyRule("homestead", homestead_difficulty)


@lru_cache(maxsize=None)
def make_fast_rule(
    rule: DifficultyRule, bomb_delay: int = 0
) -> Callable[[int, int, int, int], int]:
    """An inlined ``(parent_d, parent_ts, ts, number) -> difficulty`` kernel.

    The returned callable is trajectory-identical to
    ``rule(parent_d, parent_ts, ts, number, bomb_delay)`` — proven by the
    randomized parity sweeps in ``tests/test_perf_kernels.py`` — but with
    the bomb delay bound into the closure and the adjustment, bomb, and
    floor folded into straight integer arithmetic (no inner calls).  The
    per-block simulator selects it once per :class:`ChainConfig` instead
    of paying the ``DifficultyRule.__call__`` → rule → ``difficulty_bomb``
    chain on every block.

    Unknown (user-registered) rules fall back to a thin binding of the
    reference implementation, so the fast path is an optimization, never
    a behavior switch.  The closure carries ``kernel_kind`` naming the
    inlined algorithm (``"homestead"`` / ``"frontier"`` / ``"generic"``)
    so batch kernels can inline the same arithmetic one level further.
    """
    # ``2 * BOMB_PERIOD`` is where the bomb exponent first reaches zero;
    # below that threshold the bomb term is exactly 0.
    bomb_floor = 2 * BOMB_PERIOD + bomb_delay

    if rule.compute is homestead_difficulty:

        def fast(
            parent_difficulty: int,
            parent_timestamp: int,
            timestamp: int,
            block_number: int,
        ) -> int:
            if timestamp <= parent_timestamp:
                raise ValueError("timestamp must increase between blocks")
            multiplier = 1 - (timestamp - parent_timestamp) // 10
            if multiplier < HOMESTEAD_CLAMP:
                multiplier = HOMESTEAD_CLAMP
            difficulty = (
                parent_difficulty
                + parent_difficulty // DIFFICULTY_BOUND_DIVISOR * multiplier
            )
            if block_number >= bomb_floor:
                difficulty += (
                    1 << ((block_number - bomb_delay) // BOMB_PERIOD - 2)
                )
            return (
                difficulty if difficulty > MIN_DIFFICULTY else MIN_DIFFICULTY
            )

        fast.kernel_kind = "homestead"
    elif rule.compute is frontier_difficulty:

        def fast(
            parent_difficulty: int,
            parent_timestamp: int,
            timestamp: int,
            block_number: int,
        ) -> int:
            if timestamp <= parent_timestamp:
                raise ValueError("timestamp must increase between blocks")
            adjustment = parent_difficulty // DIFFICULTY_BOUND_DIVISOR
            if timestamp - parent_timestamp < 13:
                difficulty = parent_difficulty + adjustment
            else:
                difficulty = parent_difficulty - adjustment
            if block_number >= bomb_floor:
                difficulty += (
                    1 << ((block_number - bomb_delay) // BOMB_PERIOD - 2)
                )
            return (
                difficulty if difficulty > MIN_DIFFICULTY else MIN_DIFFICULTY
            )

        fast.kernel_kind = "frontier"
    else:

        def fast(
            parent_difficulty: int,
            parent_timestamp: int,
            timestamp: int,
            block_number: int,
        ) -> int:
            return rule(
                parent_difficulty,
                parent_timestamp,
                timestamp,
                block_number,
                bomb_delay,
            )

        fast.kernel_kind = "generic"
    fast.bomb_delay = bomb_delay
    fast.rule_name = rule.name
    return fast


def expected_block_time(difficulty: int, network_hashrate: float) -> float:
    """Mean solve time in seconds for the whole network.

    Mining is a Poisson race: a network computing ``network_hashrate``
    hashes/second against difficulty ``d`` finds blocks at rate ``h / d``,
    so the expected inter-block time is ``d / h``.  This identity converts
    between the difficulty series (Figures 1-2) and hashpower, and its
    inverse drives Figure 3's "expected hashes per USD".
    """
    if network_hashrate <= 0:
        return float("inf")
    return difficulty / network_hashrate


def equilibrium_difficulty(network_hashrate: float) -> int:
    """Difficulty at which expected block time equals the ~14 s target.

    The adjustment rule steers difficulty toward this fixed point; the
    post-fork ETC trajectory in Figure 1 is the transient from the old
    equilibrium (sized for 100% hashpower) to this one (sized for ~9%).
    """
    return max(int(network_hashrate * TARGET_BLOCK_TIME), MIN_DIFFICULTY)
