"""Block-header validation rules.

These rules are what actually *partitions* the network in a hard fork:
an ETH node and an ETC node disagree about the validity of the DAO-fork
block (its state root reflects the irregular transfer on one side only),
so each rejects the other's descendants forever.  The checks here mirror
the Yellow Paper's header validity conditions, parameterized by
:class:`~repro.chain.config.ChainConfig`.
"""

from __future__ import annotations

from typing import Dict, Optional

from .block import (
    MAX_OMMER_DEPTH,
    MAX_OMMERS_PER_BLOCK,
    Block,
    BlockHeader,
)
from .config import ChainConfig
from .types import Hash32

__all__ = [
    "ValidationError",
    "validate_header",
    "validate_body",
    "validate_ommers",
    "first_validation_error",
]

#: Headers may not claim timestamps more than this far into the future.
MAX_FUTURE_DRIFT = 15 * 60

#: Gas limit may move by at most parent/1024 per block (Yellow Paper).
GAS_LIMIT_BOUND_DIVISOR = 1024
MIN_GAS_LIMIT = 5_000


class ValidationError(ValueError):
    """A block failed consensus validation; carries a stable reason code."""

    def __init__(self, reason: str, detail: str = "") -> None:
        super().__init__(f"{reason}: {detail}" if detail else reason)
        self.reason = reason


def validate_header(
    block: Block,
    parent: Block,
    config: ChainConfig,
    now: Optional[int] = None,
) -> None:
    """Raise :class:`ValidationError` unless ``block`` extends ``parent``.

    Checks: linkage, height, timestamp ordering (and optional future-drift
    against wall-clock ``now``), the exact difficulty calculation, and gas
    limit movement bounds.
    """
    header = block.header
    if header.parent_hash != parent.block_hash:
        raise ValidationError("bad-parent", "parent hash mismatch")
    if header.number != parent.number + 1:
        raise ValidationError(
            "bad-number", f"{header.number} after {parent.number}"
        )
    if header.timestamp <= parent.timestamp:
        raise ValidationError("bad-timestamp", "timestamp not increasing")
    if now is not None and header.timestamp > now + MAX_FUTURE_DRIFT:
        raise ValidationError("future-block", f"ts {header.timestamp} > {now}")

    expected_difficulty = config.compute_difficulty(
        parent.difficulty, parent.timestamp, header.timestamp, header.number
    )
    if header.difficulty != expected_difficulty:
        raise ValidationError(
            "bad-difficulty",
            f"got {header.difficulty}, expected {expected_difficulty}",
        )

    if config.rejects_extra_data(header.number, header.extra_data):
        raise ValidationError(
            "dao-extra-data",
            f"block {header.number} extra-data incompatible with "
            f"{config.name}'s DAO fork stance",
        )

    parent_limit = parent.header.gas_limit
    bound = parent_limit // GAS_LIMIT_BOUND_DIVISOR
    if abs(header.gas_limit - parent_limit) >= max(bound, 1):
        raise ValidationError("bad-gas-limit", "moved more than parent/1024")
    if header.gas_limit < MIN_GAS_LIMIT:
        raise ValidationError("bad-gas-limit", "below protocol minimum")


def validate_body(block: Block, config: ChainConfig) -> None:
    """Body checks that need no parent state: tx commitment & chain ids."""
    if not block.consistent_tx_root():
        raise ValidationError("bad-tx-root", "header commitment mismatch")
    for tx in block.transactions:
        if not config.accepts_transaction_chain_id(
            tx.payload.chain_id, block.number
        ):
            raise ValidationError(
                "bad-chain-id",
                f"tx {tx.tx_hash.hex()[:12]} not valid on {config.name}",
            )


def validate_ommers(
    block: Block,
    ancestor_hashes: Dict[int, Hash32],
    resolve_header,
    config: ChainConfig,
    already_included,
) -> None:
    """Uncle-inclusion rules (Yellow Paper §11.1, simplified).

    ``ancestor_hashes`` maps height -> canonical-ancestor hash for the
    importing branch (at least ``MAX_OMMER_DEPTH + 1`` generations);
    ``resolve_header(hash)`` returns a known :class:`BlockHeader` or None;
    ``already_included`` answers membership for uncle hashes used earlier
    on this branch.

    Each uncle must be (a) committed by the header, (b) at distance 1-6,
    (c) a child of an ancestor — i.e. a genuine sibling branch — while not
    being an ancestor itself, (d) a consensus-valid header in its own
    right, and (e) never included before.
    """
    if not block.consistent_ommers_root():
        raise ValidationError("bad-ommers-root", "header commitment mismatch")
    if len(block.ommers) > MAX_OMMERS_PER_BLOCK:
        raise ValidationError(
            "too-many-ommers", f"{len(block.ommers)} > {MAX_OMMERS_PER_BLOCK}"
        )
    seen = set()
    for ommer in block.ommers:
        ommer_hash = ommer.block_hash
        if ommer_hash in seen:
            raise ValidationError("duplicate-ommer", ommer_hash.hex()[:12])
        seen.add(ommer_hash)
        if already_included(ommer_hash):
            raise ValidationError(
                "ommer-already-included", ommer_hash.hex()[:12]
            )
        distance = block.number - ommer.number
        if not 1 <= distance <= MAX_OMMER_DEPTH:
            raise ValidationError(
                "bad-ommer-depth", f"distance {distance}"
            )
        if ancestor_hashes.get(ommer.number) == ommer_hash:
            raise ValidationError(
                "ommer-is-ancestor", ommer_hash.hex()[:12]
            )
        expected_parent = ancestor_hashes.get(ommer.number - 1)
        if expected_parent is None or ommer.parent_hash != expected_parent:
            raise ValidationError(
                "ommer-not-sibling",
                f"parent not the height-{ommer.number - 1} ancestor",
            )
        parent_header = resolve_header(ommer.parent_hash)
        if parent_header is None:
            raise ValidationError("ommer-parent-unknown", "")
        # The uncle must have been a consensus-valid block attempt.
        expected_difficulty = config.compute_difficulty(
            parent_header.difficulty,
            parent_header.timestamp,
            ommer.timestamp,
            ommer.number,
        )
        if ommer.difficulty != expected_difficulty:
            raise ValidationError("bad-ommer-difficulty", "")


def first_validation_error(
    block: Block, parent: Block, config: ChainConfig
) -> Optional[str]:
    """Non-raising wrapper returning the first failure's reason code."""
    try:
        validate_header(block, parent, config)
        validate_body(block, config)
    except ValidationError as exc:
        return exc.reason
    return None
