"""Per-chain protocol configuration and fork schedules.

A "hard fork" in the paper's sense is a change to these parameters activated
at a block height.  Two nodes whose configurations disagree about a past
activation will reject each other's blocks — that disagreement *is* the
network partition the paper studies.

The two presets mirror the real schedules:

``ETH_CONFIG``
    accepts the DAO irregular state change at block 1,920,000 (July 20,
    2016), reprices state-access gas at 2,463,000 (Nov 22, 2016, EIP-150),
    and enables EIP-155 replay protection at 2,675,000 (chain id 1).

``ETC_CONFIG``
    rejects the DAO state change, reprices gas at 3,000,000 (Jan 13, 2017),
    and adds replay protection (chain id 61) at the same fork — the fork
    the paper notes "lasted much longer than ETH's — 3,583 blocks versus
    86".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .difficulty import HOMESTEAD_RULE, DifficultyRule, make_fast_rule
from .gas import FRONTIER_SCHEDULE, TANGERINE_SCHEDULE, GasSchedule
from .types import Wei, to_wei

__all__ = [
    "ChainConfig",
    "ETH_CONFIG",
    "ETC_CONFIG",
    "PRE_FORK_CONFIG",
    "DAO_FORK_BLOCK",
    "BLOCK_REWARD",
]

#: Height of the DAO hard fork (July 20, 2016).
DAO_FORK_BLOCK = 1_920_000

#: Static block reward in force throughout the paper's measurement window:
#: "each block mined earns the winner 5 ether" (Section 2.1).
BLOCK_REWARD: Wei = to_wei(5, "ether")

#: Uncle (ommer) inclusion reward fraction: 1/32 of the block reward per
#: uncle referenced, paid to the including miner.
NEPHEW_REWARD_DIVISOR = 32

#: Unix timestamp of the DAO fork, used to anchor simulated clocks to the
#: paper's calendar axis (2016-07-20 13:20:40 UTC).
DAO_FORK_TIMESTAMP = 1_469_020_840

#: Header marker pro-fork clients stamp into the fork block and the nine
#: after it; anti-fork clients reject any block carrying it.
DAO_EXTRA_DATA = b"dao-hard-fork"
DAO_EXTRA_DATA_RANGE = 10


@dataclass(frozen=True)
class ChainConfig:
    """Everything consensus-relevant that can differ between ETH and ETC."""

    name: str
    chain_id: int
    #: Block at which this chain applies (or explicitly refuses) the DAO
    #: irregular state change.  ``dao_fork_support`` picks the side.
    dao_fork_block: int = DAO_FORK_BLOCK
    dao_fork_support: bool = True
    #: EIP-150 gas repricing activation height (None = never).
    gas_reprice_block: Optional[int] = None
    #: EIP-155 replay-protection activation height (None = never).  After
    #: this height the chain *accepts* chain-id transactions; legacy
    #: unprotected transactions remain valid for backwards compatibility,
    #: exactly the opt-in scheme the paper describes.
    replay_protection_block: Optional[int] = None
    #: Difficulty-bomb delay in blocks (ECIP-1010 for ETC).
    bomb_delay: int = 0
    difficulty_rule: DifficultyRule = HOMESTEAD_RULE
    block_reward: Wei = BLOCK_REWARD
    target_block_time: int = 14

    def dao_extra_data(self, block_number: int) -> Optional[bytes]:
        """Required header extra-data near the DAO fork (or None).

        Real clients enforced exactly this: pro-fork geth required the
        marker ``dao-hard-fork`` in the extra-data of the fork block and
        the nine after it, and anti-fork clients rejected blocks carrying
        it.  The marker is what forces the chains to diverge even before
        state roots differ, and what lets a node *identify* which side a
        peer's chain is on.
        """
        in_window = (
            self.dao_fork_block
            <= block_number
            < self.dao_fork_block + DAO_EXTRA_DATA_RANGE
        )
        if in_window and self.dao_fork_support:
            return DAO_EXTRA_DATA
        return None

    def rejects_extra_data(self, block_number: int, extra_data: bytes) -> bool:
        """Would this chain refuse a block for its DAO marker (or lack)?"""
        required = self.dao_extra_data(block_number)
        if required is not None:
            return extra_data != required
        in_window = (
            self.dao_fork_block
            <= block_number
            < self.dao_fork_block + DAO_EXTRA_DATA_RANGE
        )
        if in_window and not self.dao_fork_support:
            return extra_data == DAO_EXTRA_DATA
        return False

    def gas_schedule(self, block_number: int) -> GasSchedule:
        """The opcode gas schedule in force at ``block_number``."""
        if (
            self.gas_reprice_block is not None
            and block_number >= self.gas_reprice_block
        ):
            return TANGERINE_SCHEDULE
        return FRONTIER_SCHEDULE

    def replay_protection_active(self, block_number: int) -> bool:
        return (
            self.replay_protection_block is not None
            and block_number >= self.replay_protection_block
        )

    def accepts_transaction_chain_id(
        self, tx_chain_id: Optional[int], block_number: int
    ) -> bool:
        """Validity of a transaction's chain-id field on this chain.

        * Legacy (no chain id): always valid — this is the replay hole.
        * EIP-155 (chain id set): valid only after activation and only with
          a matching id.
        """
        if tx_chain_id is None:
            return True
        if not self.replay_protection_active(block_number):
            return False
        return tx_chain_id == self.chain_id

    def compute_difficulty(
        self,
        parent_difficulty: int,
        parent_timestamp: int,
        timestamp: int,
        block_number: int,
    ) -> int:
        return self.difficulty_rule(
            parent_difficulty,
            parent_timestamp,
            timestamp,
            block_number,
            self.bomb_delay,
        )

    @property
    def fast_difficulty(self):
        """The inlined difficulty kernel for this chain's rule + bomb delay.

        Selected (and memoized) once per ``(rule, bomb_delay)`` pair; the
        hot per-block loops call this closure instead of walking
        :meth:`compute_difficulty`'s dispatch chain.  Trajectory-identical
        by construction — see :func:`repro.chain.difficulty.make_fast_rule`.
        """
        return make_fast_rule(self.difficulty_rule, self.bomb_delay)

    def fork_summary(self) -> str:
        """Human-readable fork schedule (README / reports)."""
        parts = [f"{self.name} (chain id {self.chain_id})"]
        side = "applies" if self.dao_fork_support else "rejects"
        parts.append(f"  DAO fork @ {self.dao_fork_block}: {side} state change")
        if self.gas_reprice_block is not None:
            parts.append(f"  EIP-150 gas repricing @ {self.gas_reprice_block}")
        if self.replay_protection_block is not None:
            parts.append(
                f"  EIP-155 replay protection @ {self.replay_protection_block}"
            )
        return "\n".join(parts)


ETH_CONFIG = ChainConfig(
    name="ETH",
    chain_id=1,
    dao_fork_support=True,
    gas_reprice_block=2_463_000,
    replay_protection_block=2_675_000,
)

ETC_CONFIG = ChainConfig(
    name="ETC",
    chain_id=61,
    dao_fork_support=False,
    gas_reprice_block=3_000_000,
    replay_protection_block=3_000_000,
    bomb_delay=2_000_000,
)

#: The single pre-fork network both sides share.  Consensus-identical to
#: ETH below the DAO block; used to build the common prefix.
PRE_FORK_CONFIG = replace(ETH_CONFIG, name="pre-fork")
