"""The state-transition function: applying transactions and blocks.

``apply_transaction`` is where a rebroadcast transaction either lands or
bounces: the checks it performs (signature recovery, chain-id acceptance,
nonce match, balance sufficiency) are exactly the conditions the paper
states for a successful echo — "if the source account still had sufficient
credit, it would be processed as a valid transaction" (Section 3.3).

``apply_block`` executes a full block against a state copy: transactions in
order, then the 5-ether coinbase reward.  Both chains run this same code
with different :class:`~repro.chain.config.ChainConfig` values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..evm.vm import EVM, BlockEnvironment, Message
from .block import Block
from .config import ChainConfig
from .gas import intrinsic_gas
from .receipt import ExecutionStatus, Receipt
from .state import StateDB
from .transaction import SignedTransaction, TransactionError
from .types import Address, Wei

__all__ = [
    "TransactionRejected",
    "apply_transaction",
    "apply_block",
    "validate_transaction_for_chain",
]


class TransactionRejected(TransactionError):
    """The transaction cannot even begin executing on this chain.

    Distinct from a failed execution (which still lands on chain, consumes
    gas, and produces a receipt): a rejected transaction never enters a
    block.  Rejection reasons are stable strings used by the mempool and
    the echo analysis.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def validate_transaction_for_chain(
    state: StateDB,
    tx: SignedTransaction,
    config: ChainConfig,
    block_number: int,
) -> Optional[str]:
    """Pre-execution validity check; returns a rejection reason or None.

    Shared by the mempool (admission) and the processor (execution), so a
    transaction accepted into a block is always executable.
    """
    if not tx.verify():
        return "invalid-signature"
    if not config.accepts_transaction_chain_id(tx.payload.chain_id, block_number):
        return "wrong-chain-id"
    sender = tx.sender
    expected_nonce = state.nonce_of(sender)
    if tx.nonce < expected_nonce:
        return "nonce-too-low"
    if tx.nonce > expected_nonce:
        return "nonce-too-high"
    if tx.gas_limit < intrinsic_gas(tx.data, tx.payload.is_contract_creation):
        return "intrinsic-gas-too-high"
    upfront = tx.value + tx.gas_limit * tx.gas_price
    if state.balance_of(sender) < upfront:
        return "insufficient-funds"
    return None


def apply_transaction(
    state: StateDB,
    tx: SignedTransaction,
    config: ChainConfig,
    env: BlockEnvironment,
) -> Receipt:
    """Execute one transaction, mutating ``state``; returns its receipt.

    Raises :class:`TransactionRejected` if the transaction is not valid on
    this chain at this state (it would never have been mined).
    """
    reason = validate_transaction_for_chain(state, tx, config, env.block_number)
    if reason is not None:
        raise TransactionRejected(reason)

    sender = tx.sender
    gas_cost = tx.gas_limit * tx.gas_price
    state.debit(sender, gas_cost)  # buy gas up front
    state.increment_nonce(sender)

    base_gas = intrinsic_gas(tx.data, tx.payload.is_contract_creation)
    execution_gas = tx.gas_limit - base_gas

    evm = EVM(state, env)
    message = Message(
        sender=sender,
        to=tx.to,
        value=tx.value,
        data=b"" if tx.payload.is_contract_creation else tx.data,
        gas=execution_gas,
        origin=sender,
        gas_price=tx.gas_price,
        code=tx.data if tx.payload.is_contract_creation else None,
    )
    result = evm.execute(message)

    gas_used = base_gas + result.gas_used
    # Refund rule: storage-clear/selfdestruct refunds capped at half of the
    # gas actually used.
    refund = min(result.gas_refund, gas_used // 2)
    gas_used -= refund

    # Return the unused portion of the gas purchase; pay the miner the rest.
    state.credit(sender, (tx.gas_limit - gas_used) * tx.gas_price)
    state.credit(env.coinbase, gas_used * tx.gas_price)

    if result.success:
        status = ExecutionStatus.SUCCESS
    elif result.error == "reverted":
        status = ExecutionStatus.REVERTED
    elif result.gas_left == 0 and result.error and "gas" in result.error:
        status = ExecutionStatus.OUT_OF_GAS
    else:
        status = ExecutionStatus.ERROR

    return Receipt(
        tx_hash=tx.tx_hash,
        block_number=env.block_number,
        chain_name=env.chain_name,
        status=status,
        gas_used=gas_used,
        sender=sender,
        to=tx.to,
        contract_address=result.created_address,
        logs=tuple(result.logs),
        value_transferred=tx.value if result.success else 0,
    )


@dataclass
class BlockResult:
    """Outcome of executing a block's transactions against a state."""

    receipts: Tuple[Receipt, ...]
    gas_used: int
    fees_paid: Wei


def apply_block(
    state: StateDB,
    block: Block,
    config: ChainConfig,
    irregular_transfers: Optional[List[Tuple[Address, Address]]] = None,
) -> BlockResult:
    """Execute ``block`` on ``state``: txs in order, then the block reward.

    ``irregular_transfers`` carries DAO-fork style state edits applied
    *before* transactions when this block is a fork-activation block on a
    chain that supports the fork (``(source, destination)`` pairs).
    """
    env = BlockEnvironment(
        block_number=block.number,
        timestamp=block.timestamp,
        difficulty=block.difficulty,
        coinbase=block.coinbase,
        gas_limit=block.header.gas_limit,
        chain_name=config.name,
        schedule=config.gas_schedule(block.number),
    )

    if (
        irregular_transfers
        and config.dao_fork_support
        and block.number == config.dao_fork_block
    ):
        for source, destination in irregular_transfers:
            state.apply_irregular_transfer(source, destination)

    receipts = []
    total_gas = 0
    total_fees: Wei = 0
    for tx in block.transactions:
        receipt = apply_transaction(state, tx, config, env)
        receipts.append(receipt)
        total_gas += receipt.gas_used
        total_fees += receipt.gas_used * tx.gas_price

    state.credit(block.coinbase, config.block_reward)

    # Uncle economics (Yellow Paper §11.3): each referenced uncle's miner
    # earns (8 - distance)/8 of the block reward, and the includer earns
    # an extra 1/32 per uncle — the incentive that makes losing a
    # transient-fork race survivable.
    for ommer in block.ommers:
        distance = block.number - ommer.number
        uncle_reward = config.block_reward * (8 - distance) // 8
        state.credit(ommer.coinbase, uncle_reward)
        state.credit(block.coinbase, config.block_reward // 32)

    return BlockResult(
        receipts=tuple(receipts), gas_used=total_gas, fees_paid=total_fees
    )
