"""Transaction receipts: the per-transaction execution record.

Receipts let the analysis layer distinguish *successful* contract calls from
reverted ones and account for gas actually consumed.  They also record the
replay provenance flag used by tests: a receipt knows which chain executed
the transaction, so an echoed transaction produces receipts on both chains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .types import Address, Hash32, Wei

__all__ = ["LogEntry", "Receipt", "ExecutionStatus"]


class ExecutionStatus:
    """Outcome codes for executed transactions."""

    SUCCESS = "success"
    REVERTED = "reverted"
    OUT_OF_GAS = "out-of-gas"
    ERROR = "error"

    ALL = (SUCCESS, REVERTED, OUT_OF_GAS, ERROR)


@dataclass(frozen=True)
class LogEntry:
    """An EVM LOG record (event)."""

    address: Address
    topics: Tuple[int, ...]
    data: bytes


@dataclass(frozen=True)
class Receipt:
    """Execution summary for one transaction within one block."""

    tx_hash: Hash32
    block_number: int
    chain_name: str
    status: str
    gas_used: int
    sender: Address
    to: Optional[Address]
    #: Address of the contract created, if this was a creation.
    contract_address: Optional[Address] = None
    logs: Tuple[LogEntry, ...] = field(default_factory=tuple)
    #: Wei actually moved (zero when execution reverted).
    value_transferred: Wei = 0

    def __post_init__(self) -> None:
        if self.status not in ExecutionStatus.ALL:
            raise ValueError(f"unknown execution status {self.status!r}")
        if self.gas_used < 0:
            raise ValueError("gas used must be non-negative")

    @property
    def succeeded(self) -> bool:
        return self.status == ExecutionStatus.SUCCESS

    @property
    def created_contract(self) -> bool:
        return self.contract_address is not None
