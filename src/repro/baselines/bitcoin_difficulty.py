"""Baseline difficulty-adjustment algorithms: Bitcoin and Bitcoin Cash.

The paper's core mechanism finding (Observation 2) is that Ethereum's
per-block difficulty adjustment digested a 99% hashpower loss in ~two
days.  How protocol-dependent is that?  These baselines answer the
ablation: the same exodus under

* **Bitcoin's rule** — retarget once per 2016 blocks by the ratio of
  actual to expected elapsed time, clamped to [1/4, 4x].  After a 99%
  hashpower drop mid-window, the *remaining* window takes ~100x longer to
  finish, so recovery takes months (this is precisely why Bitcoin Cash
  could not launch with plain Bitcoin rules);
* **Bitcoin Cash's EDA** (emergency difficulty adjustment, the rule BCH
  actually shipped for the August 2017 fork the paper cites) — Bitcoin's
  rule plus: if the last 6 blocks took more than 12 hours, cut difficulty
  by 20%.

Both implement the same interface as the Ethereum rules so the ablation
benchmark can race all three through the identical scenario.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

__all__ = [
    "BitcoinDifficulty",
    "EmergencyDifficulty",
    "RecoveryOutcome",
    "simulate_recovery",
    "ethereum_recovery_stepper",
]

#: Bitcoin parameters, rescaled onto a 14-second target so all three
#: algorithms chase the same block rate (the comparison is about the
#: *adjustment rule*, not the target).
RETARGET_WINDOW = 2016
MAX_RETARGET_FACTOR = 4.0


class BitcoinDifficulty:
    """Windowed retargeting (Bitcoin consensus, rescaled target)."""

    def __init__(self, target_block_time: float = 14.0) -> None:
        self.target_block_time = target_block_time
        self._window_start_time: Optional[float] = None
        self._blocks_in_window = 0

    def next_difficulty(
        self, difficulty: int, block_timestamp: float
    ) -> int:
        """Feed each block as it is found; returns difficulty for the next."""
        if self._window_start_time is None:
            self._window_start_time = block_timestamp
        self._blocks_in_window += 1
        if self._blocks_in_window < RETARGET_WINDOW:
            return difficulty
        actual = block_timestamp - self._window_start_time
        expected = RETARGET_WINDOW * self.target_block_time
        ratio = max(
            1.0 / MAX_RETARGET_FACTOR, min(MAX_RETARGET_FACTOR, expected / actual)
        )
        self._window_start_time = block_timestamp
        self._blocks_in_window = 0
        return max(1, int(difficulty * ratio))


class EmergencyDifficulty(BitcoinDifficulty):
    """Bitcoin Cash's EDA: windowed retarget + a fast escape hatch."""

    EDA_BLOCKS = 6
    EDA_THRESHOLD_HOURS = 12.0
    EDA_CUT = 0.80  # multiply difficulty by this (a 20% cut)

    def __init__(self, target_block_time: float = 14.0) -> None:
        super().__init__(target_block_time)
        # Scale the 12-hour / 6-block trigger from Bitcoin's 600 s target
        # onto ours so the rule's *relative* sensitivity is preserved.
        scale = target_block_time / 600.0
        self._eda_threshold_seconds = self.EDA_THRESHOLD_HOURS * 3600.0 * scale
        self._recent: List[float] = []

    def next_difficulty(
        self, difficulty: int, block_timestamp: float
    ) -> int:
        difficulty = super().next_difficulty(difficulty, block_timestamp)
        self._recent.append(block_timestamp)
        if len(self._recent) > self.EDA_BLOCKS + 1:
            self._recent.pop(0)
        if len(self._recent) == self.EDA_BLOCKS + 1:
            elapsed = self._recent[-1] - self._recent[0]
            if elapsed > self._eda_threshold_seconds:
                difficulty = max(1, int(difficulty * self.EDA_CUT))
        return difficulty


@dataclass
class RecoveryOutcome:
    """How one rule digested the hashpower exodus."""

    rule_name: str
    #: Seconds until the block rate returned within 25% of target
    #: (sustained), or None within the horizon.
    recovery_seconds: Optional[float]
    blocks_produced: int
    peak_interval_seconds: float

    @property
    def recovery_days(self) -> Optional[float]:
        return None if self.recovery_seconds is None else self.recovery_seconds / 86_400


def simulate_recovery(
    rule_name: str,
    next_difficulty: Callable[[int, float], int],
    initial_difficulty: int,
    hashrate: float,
    horizon_seconds: float = 90 * 86_400.0,
    target_block_time: float = 14.0,
    seed: int = 7,
) -> RecoveryOutcome:
    """Drive any difficulty rule through the post-fork scenario.

    The chain starts at ``initial_difficulty`` (sized for the pre-fork
    network) with only ``hashrate`` remaining.  Recovery = the first time
    a trailing window of 50 blocks averages within 25% of the target.
    """
    rng = random.Random(seed)
    difficulty = initial_difficulty
    time_now = 0.0
    blocks = 0
    peak = 0.0
    recent: List[float] = []
    recovery: Optional[float] = None
    while time_now < horizon_seconds:
        interval = rng.expovariate(hashrate / difficulty)
        time_now += interval
        blocks += 1
        peak = max(peak, interval)
        recent.append(interval)
        if len(recent) > 50:
            recent.pop(0)
        if (
            recovery is None
            and len(recent) == 50
            and sum(recent) / 50 <= target_block_time * 1.25
        ):
            recovery = time_now
            break
        difficulty = next_difficulty(difficulty, time_now)
    return RecoveryOutcome(
        rule_name=rule_name,
        recovery_seconds=recovery,
        blocks_produced=blocks,
        peak_interval_seconds=peak,
    )


def ethereum_recovery_stepper(bomb_delay: int = 10**9):
    """Adapt the Homestead rule to the baseline stepper interface."""
    from ..chain.difficulty import homestead_difficulty

    state = {"last_timestamp": 0.0, "number": 0}

    def next_difficulty(difficulty: int, block_timestamp: float) -> int:
        parent_ts = int(state["last_timestamp"])
        ts = max(int(block_timestamp), parent_ts + 1)
        state["last_timestamp"] = ts
        state["number"] += 1
        return homestead_difficulty(
            difficulty, parent_ts, ts, state["number"], bomb_delay
        )

    return next_difficulty
