"""Baseline echo detector: the naive two-pass hash join.

The obvious way to find rebroadcasts is to materialize each chain's full
transaction set and intersect by hash, then look timestamps up again to
attribute direction.  It produces identical answers to the streaming
:class:`~repro.core.echoes.EchoDetector` (the ablation test asserts this)
but needs both datasets resident and makes two passes — the comparison the
ablation benchmark quantifies.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..core.echoes import SAME_TIME_WINDOW, Echo
from ..data.records import TxRecord

__all__ = ["naive_echo_join"]


def naive_echo_join(
    records: Iterable[TxRecord],
    same_time_window: int = SAME_TIME_WINDOW,
) -> List[Echo]:
    """Two-pass join over a full record set.

    Pass 1 buckets first-sightings per chain by hash; pass 2 intersects
    hash sets pairwise and emits one echo per (hash, later chain).
    """
    first_seen: Dict[str, Dict[bytes, int]] = {}
    for record in records:
        chain_map = first_seen.setdefault(record.chain, {})
        existing = chain_map.get(record.tx_hash)
        if existing is None or record.timestamp < existing:
            chain_map[record.tx_hash] = record.timestamp

    echoes: List[Echo] = []
    chains = sorted(first_seen)
    for i, chain_a in enumerate(chains):
        for chain_b in chains[i + 1 :]:
            shared = set(first_seen[chain_a]) & set(first_seen[chain_b])
            for tx_hash in shared:
                ts_a = first_seen[chain_a][tx_hash]
                ts_b = first_seen[chain_b][tx_hash]
                if ts_a <= ts_b:
                    origin, origin_ts = chain_a, ts_a
                    destination, echo_ts = chain_b, ts_b
                else:
                    origin, origin_ts = chain_b, ts_b
                    destination, echo_ts = chain_a, ts_a
                echoes.append(
                    Echo(
                        tx_hash=tx_hash,
                        origin_chain=origin,
                        echo_chain=destination,
                        origin_timestamp=origin_ts,
                        echo_timestamp=echo_ts,
                        same_time=abs(echo_ts - origin_ts) <= same_time_window,
                    )
                )
    echoes.sort(key=lambda e: (e.echo_timestamp, e.tx_hash))
    return echoes
