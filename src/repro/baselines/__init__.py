"""Comparator algorithms for the ablation benchmarks."""

from .bitcoin_difficulty import (
    BitcoinDifficulty,
    EmergencyDifficulty,
    RecoveryOutcome,
    ethereum_recovery_stepper,
    simulate_recovery,
)
from .naive_echo import naive_echo_join

__all__ = [
    "BitcoinDifficulty",
    "EmergencyDifficulty",
    "RecoveryOutcome",
    "simulate_recovery",
    "ethereum_recovery_stepper",
    "naive_echo_join",
]
