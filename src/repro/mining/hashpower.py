"""Hashpower accounting and Poisson mining mathematics.

Proof-of-work mining is a memoryless lottery: a miner computing ``h``
hashes/second against difficulty ``d`` finds blocks as a Poisson process
with rate ``h / d``.  Everything quantitative in the paper reduces to this
identity:

* Figure 1's blocks-per-hour is ``3600 * H / d`` for network hashrate H;
* Figure 3's expected hashes per USD is ``(d / reward_ether) / price_usd``;
* a miner's share of blocks equals its share of hashrate (Figure 5).

:class:`HashpowerLedger` tracks who contributes how much hashrate to a
network at a given moment and answers the two questions simulators ask:
"when is the next block?" and "who mined it?".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

__all__ = [
    "GH",
    "TH",
    "HashpowerLedger",
    "sample_block_interval",
    "winner_weighted_choice",
]

#: Convenience hashrate units (hashes/second).
GH = 1e9
TH = 1e12


def sample_block_interval(
    difficulty: int, hashrate: float, rng: random.Random
) -> float:
    """Draw the next inter-block time: Exponential(mean = difficulty/hashrate).

    Raises ``ValueError`` on non-positive hashrate — the caller (e.g. a
    chain that lost all its miners) must handle the "no next block" case
    explicitly rather than receive infinity from a distribution.
    """
    if hashrate <= 0:
        raise ValueError("cannot sample block interval with zero hashrate")
    mean = difficulty / hashrate
    return rng.expovariate(1.0 / mean)


def winner_weighted_choice(
    weights: Dict[str, float], rng: random.Random
) -> str:
    """Pick a key with probability proportional to its weight."""
    total = sum(weights.values())
    if total <= 0:
        raise ValueError("no positive weights to choose from")
    point = rng.random() * total
    cumulative = 0.0
    last_key = None
    for key, weight in weights.items():
        cumulative += weight
        last_key = key
        if point < cumulative:
            return key
    return last_key  # floating-point tail


@dataclass
class _Contribution:
    hashrate: float


class HashpowerLedger:
    """Mutable registry of per-contributor hashrate on one network.

    Contributors are identified by opaque string ids (miner names or pool
    names).  The ledger is the single source of truth for "how fast is
    this network" in both simulators.
    """

    def __init__(self) -> None:
        self._contributions: Dict[str, _Contribution] = {}

    def set_hashrate(self, contributor: str, hashrate: float) -> None:
        """Set a contributor's hashrate; zero removes it."""
        if hashrate < 0:
            raise ValueError("hashrate must be non-negative")
        if hashrate == 0:
            self._contributions.pop(contributor, None)
        else:
            self._contributions[contributor] = _Contribution(hashrate)

    def add_hashrate(self, contributor: str, delta: float) -> None:
        current = self.hashrate_of(contributor)
        self.set_hashrate(contributor, max(0.0, current + delta))

    def remove(self, contributor: str) -> None:
        self._contributions.pop(contributor, None)

    def hashrate_of(self, contributor: str) -> float:
        entry = self._contributions.get(contributor)
        return entry.hashrate if entry else 0.0

    @property
    def total(self) -> float:
        return sum(c.hashrate for c in self._contributions.values())

    def contributors(self) -> List[str]:
        return list(self._contributions)

    def shares(self) -> Dict[str, float]:
        """Normalized hashrate shares (empty dict when idle)."""
        total = self.total
        if total <= 0:
            return {}
        return {
            name: entry.hashrate / total
            for name, entry in self._contributions.items()
        }

    def sample_winner(self, rng: random.Random) -> str:
        """Who mined the next block (probability = hashrate share)."""
        return winner_weighted_choice(
            {name: c.hashrate for name, c in self._contributions.items()}, rng
        )

    def sample_interval(self, difficulty: int, rng: random.Random) -> float:
        return sample_block_interval(difficulty, self.total, rng)

    def expected_blocks(self, difficulty: int, seconds: float) -> float:
        """Expected block count over a window at constant difficulty."""
        if difficulty <= 0:
            raise ValueError("difficulty must be positive")
        return self.total * seconds / difficulty

    def __len__(self) -> int:
        return len(self._contributions)

    def __contains__(self, contributor: str) -> bool:
        return contributor in self._contributions
