"""Miners, hashpower, pools, and chain-selection strategies."""

from .hashpower import GH, TH, HashpowerLedger, sample_block_interval
from .miner import Miner, MinerAllegiance
from .payout import PPLNSPayout, PayoutScheme, ProportionalPayout, Share
from .pool import MiningPool, PoolDirectory, PoolMember
from .strategy import (
    ChainEconomics,
    RationalSwitching,
    hashes_per_usd,
    profitability_usd_per_second,
)

__all__ = [
    "HashpowerLedger",
    "sample_block_interval",
    "GH",
    "TH",
    "Miner",
    "MinerAllegiance",
    "MiningPool",
    "PoolDirectory",
    "PoolMember",
    "PayoutScheme",
    "ProportionalPayout",
    "PPLNSPayout",
    "Share",
    "ChainEconomics",
    "RationalSwitching",
    "hashes_per_usd",
    "profitability_usd_per_second",
]
