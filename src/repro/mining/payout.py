"""Pool payout schemes.

The paper (Section 3.3, "Pool mining") describes why pools exist — solo
mining income is "highly variable ... essentially a lottery" — and how they
work: members submit *shares* (blocks above a reduced difficulty target,
mined with the pool's header) proving their effort, and the pool splits each
block reward "proportional to mining effort".

We implement the two schemes that dominated 2016-era Ethereum pools:

* **Proportional**: each found block's reward is split by shares submitted
  since the previous found block (a "round").
* **PPLNS** (pay-per-last-N-shares): rewards are split over the trailing N
  shares regardless of round boundaries, damping pool-hopping.

Both preserve the paper-relevant invariant that the *block's coinbase is
the pool's address* — that is the only signal the on-chain analysis can
see, and why Figure 5 measures pools rather than individual miners.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List

from ..chain.types import Wei

__all__ = [
    "Share",
    "PayoutScheme",
    "ProportionalPayout",
    "PPLNSPayout",
]


@dataclass(frozen=True)
class Share:
    """One unit of proven effort submitted by a pool member.

    ``weight`` scales with the share's difficulty target so that members on
    different share targets are compensated fairly.
    """

    member: str
    weight: float = 1.0


class PayoutScheme:
    """Interface: record shares, then split each block reward."""

    def record_share(self, share: Share) -> None:
        raise NotImplementedError

    def split_reward(self, reward: Wei) -> Dict[str, Wei]:
        """Distribute ``reward`` wei across members; resets round state as
        the scheme requires.  The sum of the returned values never exceeds
        ``reward`` (integer rounding dust stays with the pool operator).
        """
        raise NotImplementedError


class ProportionalPayout(PayoutScheme):
    """Split by shares submitted within the current round."""

    def __init__(self) -> None:
        self._round_shares: List[Share] = []

    def record_share(self, share: Share) -> None:
        self._round_shares.append(share)

    def split_reward(self, reward: Wei) -> Dict[str, Wei]:
        weights: Dict[str, float] = {}
        for share in self._round_shares:
            weights[share.member] = weights.get(share.member, 0.0) + share.weight
        self._round_shares = []
        return _split_by_weight(reward, weights)


class PPLNSPayout(PayoutScheme):
    """Split by the trailing ``window`` shares across round boundaries."""

    def __init__(self, window: int = 1000) -> None:
        if window <= 0:
            raise ValueError("PPLNS window must be positive")
        self._window: Deque[Share] = deque(maxlen=window)

    def record_share(self, share: Share) -> None:
        self._window.append(share)

    def split_reward(self, reward: Wei) -> Dict[str, Wei]:
        weights: Dict[str, float] = {}
        for share in self._window:
            weights[share.member] = weights.get(share.member, 0.0) + share.weight
        return _split_by_weight(reward, weights)


def _split_by_weight(reward: Wei, weights: Dict[str, float]) -> Dict[str, Wei]:
    total = sum(weights.values())
    if total <= 0:
        return {}
    return {
        member: int(reward * weight / total)
        for member, weight in weights.items()
    }
