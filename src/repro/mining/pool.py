"""Mining pools: aggregation of member hashpower under one coinbase.

A pool is the unit of observation in Figure 5: blocks carry the pool's
address in their coinbase, so on-chain analysis sees pools, not members.
:class:`MiningPool` aggregates member hashrate, simulates share submission
statistically, and pays out block rewards through a pluggable
:class:`~repro.mining.payout.PayoutScheme`.

:class:`PoolDirectory` maps coinbase addresses back to pool names — the
reproduction's stand-in for the etherscan-style tagging the authors used to
identify "the top mining pools' addresses before the fork".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..chain.crypto import PrivateKey
from ..chain.types import Address, Wei
from .payout import PayoutScheme, ProportionalPayout, Share

__all__ = ["PoolMember", "MiningPool", "PoolDirectory"]


@dataclass
class PoolMember:
    """One miner's membership in a pool."""

    name: str
    hashrate: float
    earned: Wei = 0


class MiningPool:
    """A named pool with members, a coinbase address, and a payout scheme.

    The pool's total hashrate is the sum of its members'; the pool exposes
    the same interface a solo miner would (a name, a coinbase, a hashrate)
    so simulators treat both uniformly.
    """

    def __init__(
        self,
        name: str,
        payout: Optional[PayoutScheme] = None,
        fee_fraction: float = 0.01,
    ) -> None:
        if not 0 <= fee_fraction < 1:
            raise ValueError("pool fee must be in [0, 1)")
        self.name = name
        self.payout = payout or ProportionalPayout()
        self.fee_fraction = fee_fraction
        self.key = PrivateKey.from_seed(f"pool:{name}")
        self.members: Dict[str, PoolMember] = {}
        self.operator_earned: Wei = 0
        self.blocks_won = 0

    @property
    def coinbase(self) -> Address:
        """The address stamped into every block this pool wins."""
        return self.key.address

    @property
    def hashrate(self) -> float:
        return sum(member.hashrate for member in self.members.values())

    def join(self, member_name: str, hashrate: float) -> PoolMember:
        if hashrate <= 0:
            raise ValueError("member hashrate must be positive")
        member = PoolMember(name=member_name, hashrate=hashrate)
        self.members[member_name] = member
        return member

    def leave(self, member_name: str) -> None:
        self.members.pop(member_name, None)

    def set_member_hashrate(self, member_name: str, hashrate: float) -> None:
        if member_name not in self.members:
            raise KeyError(f"unknown member {member_name!r}")
        if hashrate <= 0:
            self.leave(member_name)
        else:
            self.members[member_name].hashrate = hashrate

    def record_effort(self, seconds: float, share_rate: float = 0.01) -> None:
        """Simulate share submission for a time window, statistically.

        Rather than drawing individual Poisson share events (wasteful at
        month scale), each member's expected share count over the window is
        recorded as a single weighted share — an exact substitution for
        payout purposes, since all schemes are linear in share weight.
        """
        for member in self.members.values():
            expected_shares = member.hashrate * seconds * share_rate
            if expected_shares > 0:
                self.payout.record_share(
                    Share(member=member.name, weight=expected_shares)
                )

    def on_block_won(self, reward: Wei) -> Dict[str, Wei]:
        """Distribute a block reward; returns the per-member payout map."""
        self.blocks_won += 1
        fee = int(reward * self.fee_fraction)
        self.operator_earned += fee
        payouts = self.payout.split_reward(reward - fee)
        for member_name, amount in payouts.items():
            if member_name in self.members:
                self.members[member_name].earned += amount
        # Rounding dust accrues to the operator.
        self.operator_earned += (reward - fee) - sum(payouts.values())
        return payouts


class PoolDirectory:
    """Registry resolving coinbase addresses to pool names.

    The paper identifies pools by their payout addresses ("we can examine
    the 'winner' of each block, which contains the address to which the 5
    ether award are transferred").  This directory provides that mapping
    for simulated chains, plus registration of solo miners so the analysis
    can distinguish tagged from anonymous coinbases.
    """

    def __init__(self) -> None:
        self._by_address: Dict[Address, str] = {}

    def register_pool(self, pool: MiningPool) -> None:
        self._by_address[pool.coinbase] = pool.name

    def register_address(self, address: Address, name: str) -> None:
        self._by_address[address] = name

    def name_for(self, coinbase: Address) -> Optional[str]:
        return self._by_address.get(coinbase)

    def label_for(self, coinbase: Address) -> str:
        """A stable label: the pool name, or a truncated address."""
        return self._by_address.get(coinbase) or coinbase.hex()[:10]

    def __len__(self) -> int:
        return len(self._by_address)

    def __contains__(self, coinbase: Address) -> bool:
        return coinbase in self._by_address
