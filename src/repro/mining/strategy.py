"""Chain-selection strategies: the behaviour behind Figures 1 and 3.

The paper's market-efficiency analysis (Section 3.3) assumes miners are
rational: "the rational choice of which to participate in is based on both
the probability of winning in each (i.e., the inverse of the difficulty)
and the exchange rate to traditional currencies."  This module implements
that decision rule plus the frictions that make the dynamics realistic:

* ideological miners never switch (the ETC die-hards and the ETH faithful);
* profit-driven miners compare **expected USD per second** across chains
  and re-point their rigs with finite agility (inertia), producing the
  gradual difficulty see-saw visible in the two weeks after the fork
  (Figure 1, middle) rather than an instantaneous jump;
* an optional exogenous alternative (Zcash in late October 2016) can pull
  profit miners off both chains, reproducing Figure 3's dip.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from .miner import Miner, MinerAllegiance

__all__ = [
    "ChainEconomics",
    "profitability_usd_per_second",
    "hashes_per_usd",
    "RationalSwitching",
]


@dataclass(frozen=True)
class ChainEconomics:
    """The inputs to a mining decision for one chain at one moment."""

    name: str
    difficulty: int
    price_usd: float  # USD per coin
    block_reward_ether: float = 5.0

    def usd_per_hash(self) -> float:
        """Expected revenue per hash computed on this chain.

        One hash wins a block with probability ``1/difficulty``; a block
        pays ``reward * price`` USD.
        """
        if self.difficulty <= 0:
            return 0.0
        return self.block_reward_ether * self.price_usd / self.difficulty


def profitability_usd_per_second(
    economics: ChainEconomics, hashrate: float
) -> float:
    """Expected USD/second for a miner pointing ``hashrate`` at a chain."""
    return economics.usd_per_hash() * hashrate


def hashes_per_usd(economics: ChainEconomics) -> float:
    """Figure 3's metric: expected hashes a miner must compute per 1 USD.

    The paper computes "the average number of hashes to earn one ether
    (i.e., the difficulty divided by 5, as each block earns 5 ether)"
    divided by the USD exchange rate.
    """
    revenue = economics.usd_per_hash()
    if revenue <= 0:
        return float("inf")
    return 1.0 / revenue


class RationalSwitching:
    """The per-epoch decision rule applied to a miner population.

    Each epoch (e.g. daily), every profit-allegiance miner compares the
    chains' expected revenue; if the best alternative beats the current
    chain by more than ``threshold`` (relative), the miner switches with
    probability ``miner.agility``.  Ideological miners only move in one
    direction: onto their home chain if they are somehow elsewhere.
    """

    def __init__(self, threshold: float = 0.03, seed: int = 0) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold
        self.rng = random.Random(seed)

    def decide(
        self,
        miner: Miner,
        options: Dict[str, ChainEconomics],
    ) -> str:
        """Return the chain ``miner`` mines next epoch."""
        if miner.allegiance == MinerAllegiance.PRO_FORK:
            return "ETH" if "ETH" in options else miner.chain
        if miner.allegiance == MinerAllegiance.ANTI_FORK:
            return "ETC" if "ETC" in options else miner.chain

        current = options.get(miner.chain)
        if current is None:
            # Current chain vanished (e.g. pre-fork network after the
            # split): adopt the most profitable option outright.
            return max(options.values(), key=lambda e: e.usd_per_hash()).name

        best = max(options.values(), key=lambda e: e.usd_per_hash())
        if best.name == miner.chain:
            return miner.chain
        current_revenue = current.usd_per_hash()
        if current_revenue <= 0:
            return best.name
        gain = best.usd_per_hash() / current_revenue - 1.0
        if gain > self.threshold and self.rng.random() < miner.agility:
            return best.name
        return miner.chain

    def apply_epoch(
        self,
        miners: Dict[str, Miner],
        options: Dict[str, ChainEconomics],
    ) -> Dict[str, int]:
        """Run one decision epoch over a population; returns switch counts
        per destination chain (diagnostics for the scenario narrator)."""
        switches: Dict[str, int] = {}
        for miner in miners.values():
            destination = self.decide(miner, options)
            if destination != miner.chain:
                switches[destination] = switches.get(destination, 0) + 1
                miner.chain = destination
        return switches
