"""Miner entities: hashpower owners who choose a chain and a coinbase.

A :class:`Miner` is the decision-making unit of the paper's economics.  It
owns hashrate, mines either solo (its own coinbase) or through a pool (the
pool's coinbase), and — after the fork creates a choice — allocates its
hashrate to ETH or ETC per its :mod:`strategy <repro.mining.strategy>`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..chain.crypto import PrivateKey
from ..chain.types import Address, Wei

__all__ = ["Miner", "MinerAllegiance"]


class MinerAllegiance:
    """Why a miner mines where it mines (drives post-fork behaviour).

    The DAO fork was ideological: one side held "code is law" (stay on the
    chain with the attacker's transactions — ETC), the other prioritized
    recovering the stolen funds (ETH).  Most hashpower, though, simply
    follows profit.  These labels parameterize the scenario populations.
    """

    PRO_FORK = "pro-fork"  # upgrades immediately, mines ETH
    ANTI_FORK = "anti-fork"  # refuses the fork, mines ETC
    PROFIT = "profit"  # mines whichever pays better
    ALL = (PRO_FORK, ANTI_FORK, PROFIT)


@dataclass
class Miner:
    """One hashpower owner.

    ``chain`` is the network currently being mined ("ETH"/"ETC"; before the
    fork, the single pre-fork network).  ``pool`` is the pool name if the
    miner mines pooled, else None (solo).
    """

    name: str
    hashrate: float
    allegiance: str = MinerAllegiance.PROFIT
    chain: str = "pre-fork"
    pool: Optional[str] = None
    #: Probability per decision epoch that a profit miner acts on a
    #: profitability gap (inertia: real miners do not re-point instantly).
    agility: float = 0.15
    earned: Dict[str, Wei] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.hashrate <= 0:
            raise ValueError("miner hashrate must be positive")
        if self.allegiance not in MinerAllegiance.ALL:
            raise ValueError(f"unknown allegiance {self.allegiance!r}")
        self.key = PrivateKey.from_seed(f"miner:{self.name}")

    @property
    def coinbase(self) -> Address:
        """Solo-mining payout address (pools override with their own)."""
        return self.key.address

    @property
    def is_pooled(self) -> bool:
        return self.pool is not None

    def credit(self, chain: str, amount: Wei) -> None:
        self.earned[chain] = self.earned.get(chain, 0) + amount

    def total_earned(self, chain: str) -> Wei:
        return self.earned.get(chain, 0)
