"""Minimal calldata ABI used by the scenario contracts.

Real Ethereum contracts dispatch on a 4-byte keccak selector followed by
32-byte-aligned arguments.  Our scenario contracts use the same word-aligned
layout with whole-word selectors, which keeps the hand-written assembly
simple while preserving what matters to the analysis: calls carry non-empty
``data`` and are therefore classified as contract transactions (Figure 2,
bottom panel).
"""

from __future__ import annotations

from typing import Tuple

from ..chain.types import Address

__all__ = ["encode_call", "decode_words", "word"]

_WORD = 32


def word(value) -> bytes:
    """Encode one 32-byte argument word from an int or Address."""
    if isinstance(value, Address):
        return bytes(12) + bytes(value)
    if isinstance(value, int):
        if value < 0:
            raise ValueError("ABI words are unsigned")
        return value.to_bytes(_WORD, "big")
    raise TypeError(f"cannot ABI-encode {type(value)!r}")


def encode_call(selector: int, *args) -> bytes:
    """Build calldata: a selector word followed by argument words."""
    return word(selector) + b"".join(word(arg) for arg in args)


def decode_words(data: bytes) -> Tuple[int, ...]:
    """Split calldata back into integer words (zero-padded at the tail)."""
    padded = data + b"\x00" * ((-len(data)) % _WORD)
    return tuple(
        int.from_bytes(padded[i : i + _WORD], "big")
        for i in range(0, len(padded), _WORD)
    )
