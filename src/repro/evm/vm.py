"""The EVM interpreter.

A gas-metered 256-bit stack machine executing the opcode subset defined in
:mod:`repro.evm.opcodes`.  It is faithful where fidelity matters to the
paper:

* value-carrying CALLs transfer ether, forward gas (with the 2300-gas
  stipend), and execute the callee's code — which is exactly the mechanism
  the DAO attacker's reentrancy exploited (Section 2.1's history);
* failed frames revert their state mutations but consume their gas;
* the gas schedule is supplied per block by the chain configuration, so the
  EIP-150 repricing forks (the 86- and 3,583-block fork events in
  Section 2.1) change real execution behaviour.

The interpreter is reentrant-safe and depth-limited (1024 frames) like the
real machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional

from ..chain.crypto import keccak256
from ..chain.gas import FRONTIER_SCHEDULE, GasSchedule
from ..chain.receipt import LogEntry
from ..chain.state import InsufficientBalance, StateDB
from ..chain.types import Address, Hash32, Wei
from . import opcodes as ops
from .memory import Memory
from .stack import Stack, StackError, WORD_MASK

__all__ = [
    "BlockEnvironment",
    "Message",
    "ExecutionResult",
    "EVM",
    "EVMError",
    "OutOfGas",
    "InvalidOpcode",
    "derive_contract_address",
    "MAX_CALL_DEPTH",
]

MAX_CALL_DEPTH = 1024
_SIGN_BIT = 2**255
_ADDRESS_MASK = 2**160 - 1

# The interpreter recurses one Python call chain (~6 frames) per EVM call
# frame; a contract legitimately reaching the protocol's 1024-deep call
# stack therefore needs ~7k Python frames, above CPython's default 1000
# cap.  Raise it once, high enough for the protocol limit plus headroom.
import sys as _sys

if _sys.getrecursionlimit() < 20_000:
    _sys.setrecursionlimit(20_000)


class EVMError(Exception):
    """Any condition that aborts the current frame."""


class OutOfGas(EVMError):
    pass


class InvalidOpcode(EVMError):
    pass


class _Revert(Exception):
    """Internal signal: REVERT opcode (state rolls back, gas is returned)."""

    def __init__(self, data: bytes) -> None:
        super().__init__("execution reverted")
        self.data = data


class _Stop(Exception):
    """Internal signal: STOP/RETURN (normal halt)."""

    def __init__(self, data: bytes) -> None:
        super().__init__("execution halted")
        self.data = data


@dataclass(frozen=True)
class BlockEnvironment:
    """Block-level context visible to contracts (NUMBER, TIMESTAMP, ...)."""

    block_number: int = 0
    timestamp: int = 0
    difficulty: int = 131_072
    coinbase: Address = Address.zero()
    gas_limit: int = 4_700_000
    chain_name: str = "test"
    schedule: GasSchedule = FRONTIER_SCHEDULE
    #: Resolver for the BLOCKHASH opcode; defaults to a synthetic digest.
    block_hash_fn: Optional[Callable[[int], Hash32]] = None

    def block_hash(self, number: int) -> Hash32:
        if self.block_hash_fn is not None:
            return self.block_hash_fn(number)
        return keccak256(b"blockhash:" + number.to_bytes(8, "big"))


@dataclass(frozen=True)
class Message:
    """One call frame's inputs."""

    sender: Address
    to: Optional[Address]  # None = contract creation
    value: Wei
    data: bytes
    gas: int
    origin: Optional[Address] = None
    gas_price: Wei = 0
    #: Init code for creation frames.
    code: Optional[bytes] = None

    @property
    def is_create(self) -> bool:
        return self.to is None


@dataclass
class ExecutionResult:
    """Outcome of a frame (or of a whole transaction's top frame)."""

    success: bool
    gas_used: int
    gas_left: int
    return_data: bytes = b""
    error: Optional[str] = None
    logs: List[LogEntry] = field(default_factory=list)
    created_address: Optional[Address] = None
    gas_refund: int = 0
    #: Total opcodes executed (ablation metrics / DoS experiments).
    ops_executed: int = 0


def derive_contract_address(sender: Address, nonce: int) -> Address:
    """CREATE address derivation: ``keccak(sender, nonce)[12:]``."""
    digest = keccak256(bytes(sender) + nonce.to_bytes(8, "big"))
    return Address(digest[12:])


class _Frame:
    """Mutable execution state of one call frame."""

    __slots__ = (
        "stack",
        "memory",
        "pc",
        "gas",
        "code",
        "msg",
        "address",
        "valid_jumpdests",
        "refund",
        "ops_executed",
    )

    def __init__(self, msg: Message, code: bytes, address: Address) -> None:
        self.stack = Stack()
        self.memory = Memory()
        self.pc = 0
        self.gas = msg.gas
        self.code = code
        self.msg = msg
        self.address = address
        self.valid_jumpdests = _scan_jumpdests(code)
        self.refund = 0
        self.ops_executed = 0

    def charge(self, amount: int) -> None:
        if amount > self.gas:
            self.gas = 0
            raise OutOfGas(f"needed {amount} gas")
        self.gas -= amount

    def charge_memory(self, schedule: GasSchedule, offset: int, size: int) -> None:
        new_words = self.memory.expansion_words(offset, size)
        if new_words:
            self.charge(new_words * schedule.memory_word)


def _scan_jumpdests(code: bytes) -> frozenset:
    """Valid JUMPDEST offsets (PUSH data bytes are not jump targets)."""
    dests = set()
    index = 0
    push1 = ops.OPCODES["PUSH1"]
    push32 = ops.OPCODES["PUSH32"]
    jumpdest = ops.OPCODES["JUMPDEST"]
    while index < len(code):
        byte = code[index]
        if byte == jumpdest:
            dests.add(index)
        if push1 <= byte <= push32:
            index += byte - push1 + 1
        index += 1
    return frozenset(dests)


def _to_signed(value: int) -> int:
    return value - 2**256 if value & _SIGN_BIT else value


def _from_signed(value: int) -> int:
    return value & WORD_MASK


def _word_to_address(word: int) -> Address:
    return Address((word & _ADDRESS_MASK).to_bytes(20, "big"))


def _address_to_word(address: Address) -> int:
    return int.from_bytes(address, "big")


class EVM:
    """Executes messages against a :class:`StateDB` under a block env."""

    def __init__(self, state: StateDB, env: BlockEnvironment) -> None:
        self.state = state
        self.env = env
        self.schedule = env.schedule

    # -- public entry points -------------------------------------------------

    def execute(self, msg: Message, depth: int = 0) -> ExecutionResult:
        """Run one message (call or create) with full revert semantics."""
        if depth > MAX_CALL_DEPTH:
            # The call fails *at the boundary*: no child executes and the
            # forwarded gas returns to the caller (matching real clients —
            # this is what made pre-Homestead "call depth attacks" cheap).
            return ExecutionResult(
                success=False, gas_used=0, gas_left=msg.gas, error="call depth"
            )
        if msg.is_create:
            return self._execute_create(msg, depth)
        return self._execute_call(msg, depth)

    # -- frame runners ---------------------------------------------------------

    def _execute_call(self, msg: Message, depth: int) -> ExecutionResult:
        snapshot = self.state.snapshot()
        try:
            if msg.value:
                self.state.transfer(msg.sender, msg.to, msg.value)
        except InsufficientBalance:
            self.state.revert(snapshot)
            return ExecutionResult(
                success=False,
                gas_used=0,
                gas_left=msg.gas,
                error="insufficient balance",
            )

        code = self.state.code_of(msg.to)
        if not code:
            self.state.discard_snapshot(snapshot)
            return ExecutionResult(success=True, gas_used=0, gas_left=msg.gas)

        frame = _Frame(msg, code, msg.to)
        return self._run(frame, snapshot, depth)

    def _execute_create(self, msg: Message, depth: int) -> ExecutionResult:
        if msg.code is None:
            return ExecutionResult(
                success=False, gas_used=msg.gas, gas_left=0, error="no init code"
            )
        outer = self.state.snapshot()
        inner = self.state.snapshot()
        if depth == 0:
            # Top-level creation: the transaction processor already bumped
            # the sender's nonce, and the address commits to the *pre-tx*
            # nonce (keccak(sender, tx.nonce) — how wallets predict
            # contract addresses before deployment confirms).
            nonce = self.state.nonce_of(msg.sender) - 1
            new_address = derive_contract_address(msg.sender, max(nonce, 0))
        else:
            nonce = self.state.nonce_of(msg.sender)
            new_address = derive_contract_address(msg.sender, nonce)
            self.state.increment_nonce(msg.sender)
        try:
            if msg.value:
                self.state.transfer(msg.sender, new_address, msg.value)
        except InsufficientBalance:
            self.state.revert(outer)
            return ExecutionResult(
                success=False,
                gas_used=0,
                gas_left=msg.gas,
                error="insufficient balance",
            )

        init_msg = replace(msg, to=new_address)
        frame = _Frame(init_msg, msg.code, new_address)
        result = self._run(frame, inner, depth)
        if not result.success:
            self.state.discard_snapshot(outer)
            return result

        # The init code's return data becomes the contract's body; charge a
        # per-byte deposit like the real protocol (200 gas/byte).  Homestead
        # fails the whole creation when the deposit cannot be paid.
        deposit = 200 * len(result.return_data)
        if deposit > result.gas_left:
            self.state.revert(outer)
            return ExecutionResult(
                success=False,
                gas_used=msg.gas,
                gas_left=0,
                error="code deposit out of gas",
                ops_executed=result.ops_executed,
            )
        self.state.discard_snapshot(outer)
        self.state.set_code(new_address, result.return_data)
        return ExecutionResult(
            success=True,
            gas_used=result.gas_used + deposit,
            gas_left=result.gas_left - deposit,
            return_data=result.return_data,
            logs=result.logs,
            created_address=new_address,
            gas_refund=result.gas_refund,
            ops_executed=result.ops_executed,
        )

    def _run(self, frame: _Frame, snapshot: int, depth: int) -> ExecutionResult:
        logs: List[LogEntry] = []
        try:
            return_data = self._interpret(frame, logs, depth)
            self.state.discard_snapshot(snapshot)
            return ExecutionResult(
                success=True,
                gas_used=frame.msg.gas - frame.gas,
                gas_left=frame.gas,
                return_data=return_data,
                logs=logs,
                gas_refund=frame.refund,
                ops_executed=frame.ops_executed,
            )
        except _Revert as revert:
            self.state.revert(snapshot)
            return ExecutionResult(
                success=False,
                gas_used=frame.msg.gas - frame.gas,
                gas_left=frame.gas,
                return_data=revert.data,
                error="reverted",
                ops_executed=frame.ops_executed,
            )
        except (EVMError, StackError) as exc:
            # Exceptional halt: revert state, consume all gas.
            self.state.revert(snapshot)
            return ExecutionResult(
                success=False,
                gas_used=frame.msg.gas,
                gas_left=0,
                error=str(exc) or type(exc).__name__,
                ops_executed=frame.ops_executed,
            )

    # -- the dispatch loop -------------------------------------------------------

    def _interpret(self, frame: _Frame, logs: List[LogEntry], depth: int) -> bytes:
        try:
            while True:
                if frame.pc >= len(frame.code):
                    return b""  # implicit STOP
                opcode = frame.code[frame.pc]
                frame.pc += 1
                frame.ops_executed += 1
                self._dispatch(frame, opcode, logs, depth)
        except _Stop as stop:
            return stop.data

    def _dispatch(
        self, frame: _Frame, opcode: int, logs: List[LogEntry], depth: int
    ) -> None:
        schedule = self.schedule
        stack = frame.stack

        # PUSH / DUP / SWAP ranges first (hot path).
        if 0x60 <= opcode <= 0x7F:
            width = opcode - 0x60 + 1
            frame.charge(schedule.verylow)
            operand = frame.code[frame.pc : frame.pc + width]
            frame.pc += width
            stack.push(int.from_bytes(operand, "big"))
            return
        if 0x80 <= opcode <= 0x8F:
            frame.charge(schedule.verylow)
            stack.dup(opcode - 0x80 + 1)
            return
        if 0x90 <= opcode <= 0x9F:
            frame.charge(schedule.verylow)
            stack.swap(opcode - 0x90 + 1)
            return

        handler = _HANDLERS.get(opcode)
        if handler is None:
            raise InvalidOpcode(f"opcode 0x{opcode:02x}")
        handler(self, frame, logs, depth)

    # -- opcode implementations ---------------------------------------------

    def _op_stop(self, frame, logs, depth):
        raise _Stop(b"")

    def _binary(self, frame, cost, fn):
        frame.charge(cost)
        a = frame.stack.pop()
        b = frame.stack.pop()
        frame.stack.push(fn(a, b))

    def _op_add(self, frame, logs, depth):
        self._binary(frame, self.schedule.verylow, lambda a, b: a + b)

    def _op_mul(self, frame, logs, depth):
        self._binary(frame, self.schedule.low, lambda a, b: a * b)

    def _op_sub(self, frame, logs, depth):
        self._binary(frame, self.schedule.verylow, lambda a, b: a - b)

    def _op_div(self, frame, logs, depth):
        self._binary(frame, self.schedule.low, lambda a, b: a // b if b else 0)

    def _op_sdiv(self, frame, logs, depth):
        def sdiv(a, b):
            if b == 0:
                return 0
            sa, sb = _to_signed(a), _to_signed(b)
            quotient = abs(sa) // abs(sb)
            if (sa < 0) != (sb < 0):
                quotient = -quotient
            return _from_signed(quotient)

        self._binary(frame, self.schedule.low, sdiv)

    def _op_mod(self, frame, logs, depth):
        self._binary(frame, self.schedule.low, lambda a, b: a % b if b else 0)

    def _op_addmod(self, frame, logs, depth):
        frame.charge(self.schedule.mid)
        a, b, n = frame.stack.pop(), frame.stack.pop(), frame.stack.pop()
        frame.stack.push((a + b) % n if n else 0)

    def _op_mulmod(self, frame, logs, depth):
        frame.charge(self.schedule.mid)
        a, b, n = frame.stack.pop(), frame.stack.pop(), frame.stack.pop()
        frame.stack.push((a * b) % n if n else 0)

    def _op_exp(self, frame, logs, depth):
        base = frame.stack.pop()
        exponent = frame.stack.pop()
        byte_len = (exponent.bit_length() + 7) // 8
        frame.charge(10 + 10 * byte_len)
        frame.stack.push(pow(base, exponent, 2**256))

    def _op_lt(self, frame, logs, depth):
        self._binary(frame, self.schedule.verylow, lambda a, b: int(a < b))

    def _op_gt(self, frame, logs, depth):
        self._binary(frame, self.schedule.verylow, lambda a, b: int(a > b))

    def _op_slt(self, frame, logs, depth):
        self._binary(
            frame,
            self.schedule.verylow,
            lambda a, b: int(_to_signed(a) < _to_signed(b)),
        )

    def _op_sgt(self, frame, logs, depth):
        self._binary(
            frame,
            self.schedule.verylow,
            lambda a, b: int(_to_signed(a) > _to_signed(b)),
        )

    def _op_eq(self, frame, logs, depth):
        self._binary(frame, self.schedule.verylow, lambda a, b: int(a == b))

    def _op_iszero(self, frame, logs, depth):
        frame.charge(self.schedule.verylow)
        frame.stack.push(int(frame.stack.pop() == 0))

    def _op_and(self, frame, logs, depth):
        self._binary(frame, self.schedule.verylow, lambda a, b: a & b)

    def _op_or(self, frame, logs, depth):
        self._binary(frame, self.schedule.verylow, lambda a, b: a | b)

    def _op_xor(self, frame, logs, depth):
        self._binary(frame, self.schedule.verylow, lambda a, b: a ^ b)

    def _op_not(self, frame, logs, depth):
        frame.charge(self.schedule.verylow)
        frame.stack.push(~frame.stack.pop())

    def _op_byte(self, frame, logs, depth):
        def get_byte(position, word):
            if position >= 32:
                return 0
            return (word >> (8 * (31 - position))) & 0xFF

        self._binary(frame, self.schedule.verylow, get_byte)

    def _op_sha3(self, frame, logs, depth):
        offset = frame.stack.pop()
        size = frame.stack.pop()
        words = (size + 31) // 32
        frame.charge(self.schedule.sha3 + self.schedule.sha3_word * words)
        frame.charge_memory(self.schedule, offset, size)
        data = frame.memory.read(offset, size)
        frame.stack.push(int.from_bytes(keccak256(data), "big"))

    # -- environment ---------------------------------------------------------

    def _op_address(self, frame, logs, depth):
        frame.charge(self.schedule.base)
        frame.stack.push(_address_to_word(frame.address))

    def _op_balance(self, frame, logs, depth):
        frame.charge(self.schedule.balance)
        address = _word_to_address(frame.stack.pop())
        frame.stack.push(self.state.balance_of(address))

    def _op_origin(self, frame, logs, depth):
        frame.charge(self.schedule.base)
        origin = frame.msg.origin or frame.msg.sender
        frame.stack.push(_address_to_word(origin))

    def _op_caller(self, frame, logs, depth):
        frame.charge(self.schedule.base)
        frame.stack.push(_address_to_word(frame.msg.sender))

    def _op_callvalue(self, frame, logs, depth):
        frame.charge(self.schedule.base)
        frame.stack.push(frame.msg.value)

    def _op_calldataload(self, frame, logs, depth):
        frame.charge(self.schedule.verylow)
        offset = frame.stack.pop()
        chunk = frame.msg.data[offset : offset + 32]
        chunk = chunk + b"\x00" * (32 - len(chunk))
        frame.stack.push(int.from_bytes(chunk, "big"))

    def _op_calldatasize(self, frame, logs, depth):
        frame.charge(self.schedule.base)
        frame.stack.push(len(frame.msg.data))

    def _op_calldatacopy(self, frame, logs, depth):
        dest = frame.stack.pop()
        offset = frame.stack.pop()
        size = frame.stack.pop()
        words = (size + 31) // 32
        frame.charge(self.schedule.verylow + self.schedule.copy_word * words)
        frame.charge_memory(self.schedule, dest, size)
        chunk = frame.msg.data[offset : offset + size]
        chunk = chunk + b"\x00" * (size - len(chunk))
        frame.memory.write(dest, chunk)

    def _op_codesize(self, frame, logs, depth):
        frame.charge(self.schedule.base)
        frame.stack.push(len(frame.code))

    def _op_codecopy(self, frame, logs, depth):
        dest = frame.stack.pop()
        offset = frame.stack.pop()
        size = frame.stack.pop()
        words = (size + 31) // 32
        frame.charge(self.schedule.verylow + self.schedule.copy_word * words)
        frame.charge_memory(self.schedule, dest, size)
        chunk = frame.code[offset : offset + size]
        chunk = chunk + b"\x00" * (size - len(chunk))
        frame.memory.write(dest, chunk)

    def _op_gasprice(self, frame, logs, depth):
        frame.charge(self.schedule.base)
        frame.stack.push(frame.msg.gas_price)

    def _op_extcodesize(self, frame, logs, depth):
        frame.charge(self.schedule.extcode)
        address = _word_to_address(frame.stack.pop())
        frame.stack.push(len(self.state.code_of(address)))

    def _op_blockhash(self, frame, logs, depth):
        frame.charge(20)
        number = frame.stack.pop()
        if (
            number >= self.env.block_number
            or self.env.block_number - number > 256
        ):
            frame.stack.push(0)
        else:
            frame.stack.push(int.from_bytes(self.env.block_hash(number), "big"))

    def _op_coinbase(self, frame, logs, depth):
        frame.charge(self.schedule.base)
        frame.stack.push(_address_to_word(self.env.coinbase))

    def _op_timestamp(self, frame, logs, depth):
        frame.charge(self.schedule.base)
        frame.stack.push(self.env.timestamp)

    def _op_number(self, frame, logs, depth):
        frame.charge(self.schedule.base)
        frame.stack.push(self.env.block_number)

    def _op_difficulty(self, frame, logs, depth):
        frame.charge(self.schedule.base)
        frame.stack.push(self.env.difficulty)

    def _op_gaslimit(self, frame, logs, depth):
        frame.charge(self.schedule.base)
        frame.stack.push(self.env.gas_limit)

    # -- stack / memory / storage ------------------------------------------

    def _op_pop(self, frame, logs, depth):
        frame.charge(self.schedule.base)
        frame.stack.pop()

    def _op_mload(self, frame, logs, depth):
        frame.charge(self.schedule.verylow)
        offset = frame.stack.pop()
        frame.charge_memory(self.schedule, offset, 32)
        frame.stack.push(frame.memory.read_word(offset))

    def _op_mstore(self, frame, logs, depth):
        frame.charge(self.schedule.verylow)
        offset = frame.stack.pop()
        value = frame.stack.pop()
        frame.charge_memory(self.schedule, offset, 32)
        frame.memory.write_word(offset, value)

    def _op_mstore8(self, frame, logs, depth):
        frame.charge(self.schedule.verylow)
        offset = frame.stack.pop()
        value = frame.stack.pop()
        frame.charge_memory(self.schedule, offset, 1)
        frame.memory.write_byte(offset, value)

    def _op_sload(self, frame, logs, depth):
        frame.charge(self.schedule.sload)
        slot = frame.stack.pop()
        frame.stack.push(self.state.storage_at(frame.address, slot))

    def _op_sstore(self, frame, logs, depth):
        slot = frame.stack.pop()
        value = frame.stack.pop()
        current = self.state.storage_at(frame.address, slot)
        if current == 0 and value != 0:
            frame.charge(self.schedule.sstore_set)
        else:
            frame.charge(self.schedule.sstore_reset)
            if current != 0 and value == 0:
                frame.refund += self.schedule.sstore_refund
        self.state.set_storage(frame.address, slot, value)

    def _op_jump(self, frame, logs, depth):
        frame.charge(self.schedule.mid)
        dest = frame.stack.pop()
        if dest not in frame.valid_jumpdests:
            raise EVMError(f"invalid jump destination {dest}")
        frame.pc = dest

    def _op_jumpi(self, frame, logs, depth):
        frame.charge(self.schedule.high)
        dest = frame.stack.pop()
        condition = frame.stack.pop()
        if condition:
            if dest not in frame.valid_jumpdests:
                raise EVMError(f"invalid jump destination {dest}")
            frame.pc = dest

    def _op_pc(self, frame, logs, depth):
        frame.charge(self.schedule.base)
        frame.stack.push(frame.pc - 1)

    def _op_msize(self, frame, logs, depth):
        frame.charge(self.schedule.base)
        frame.stack.push(len(frame.memory))

    def _op_gas(self, frame, logs, depth):
        frame.charge(self.schedule.base)
        frame.stack.push(frame.gas)

    def _op_jumpdest(self, frame, logs, depth):
        frame.charge(self.schedule.jumpdest)

    # -- logging ---------------------------------------------------------------

    def _log(self, frame, logs, topic_count):
        offset = frame.stack.pop()
        size = frame.stack.pop()
        topics = tuple(frame.stack.pop() for _ in range(topic_count))
        frame.charge(
            self.schedule.log
            + self.schedule.log_topic * topic_count
            + self.schedule.log_data_byte * size
        )
        frame.charge_memory(self.schedule, offset, size)
        data = frame.memory.read(offset, size)
        logs.append(LogEntry(address=frame.address, topics=topics, data=data))

    def _op_log0(self, frame, logs, depth):
        self._log(frame, logs, 0)

    def _op_log1(self, frame, logs, depth):
        self._log(frame, logs, 1)

    def _op_log2(self, frame, logs, depth):
        self._log(frame, logs, 2)

    def _op_log3(self, frame, logs, depth):
        self._log(frame, logs, 3)

    def _op_log4(self, frame, logs, depth):
        self._log(frame, logs, 4)

    # -- calls and creation -----------------------------------------------------

    def _op_create(self, frame, logs, depth):
        frame.charge(self.schedule.create)
        value = frame.stack.pop()
        offset = frame.stack.pop()
        size = frame.stack.pop()
        frame.charge_memory(self.schedule, offset, size)
        init_code = frame.memory.read(offset, size)

        gas_for_child = frame.gas
        if self.schedule.cap_call_gas:
            gas_for_child = frame.gas - frame.gas // 64
        frame.gas -= gas_for_child

        child = Message(
            sender=frame.address,
            to=None,
            value=value,
            data=b"",
            gas=gas_for_child,
            origin=frame.msg.origin or frame.msg.sender,
            gas_price=frame.msg.gas_price,
            code=init_code,
        )
        result = self.execute(child, depth + 1)
        frame.gas += result.gas_left
        frame.refund += result.gas_refund
        frame.ops_executed += result.ops_executed
        if result.success and result.created_address is not None:
            logs.extend(result.logs)
            frame.stack.push(_address_to_word(result.created_address))
        else:
            frame.stack.push(0)

    def _op_call(self, frame, logs, depth):
        requested_gas = frame.stack.pop()
        to = _word_to_address(frame.stack.pop())
        value = frame.stack.pop()
        in_offset = frame.stack.pop()
        in_size = frame.stack.pop()
        out_offset = frame.stack.pop()
        out_size = frame.stack.pop()

        cost = self.schedule.call
        if value > 0:
            cost += self.schedule.call_value
            if not self.state.exists(to):
                cost += self.schedule.call_new_account
        frame.charge(cost)
        frame.charge_memory(self.schedule, in_offset, in_size)
        frame.charge_memory(self.schedule, out_offset, out_size)

        available = frame.gas
        if self.schedule.cap_call_gas:
            available = frame.gas - frame.gas // 64
        gas_for_child = min(requested_gas, available)
        frame.gas -= gas_for_child
        if value > 0:
            gas_for_child += self.schedule.call_stipend

        call_data = frame.memory.read(in_offset, in_size)
        child = Message(
            sender=frame.address,
            to=to,
            value=value,
            data=call_data,
            gas=gas_for_child,
            origin=frame.msg.origin or frame.msg.sender,
            gas_price=frame.msg.gas_price,
        )
        result = self.execute(child, depth + 1)
        frame.gas += result.gas_left
        frame.refund += result.gas_refund
        frame.ops_executed += result.ops_executed
        if result.success:
            logs.extend(result.logs)
        if out_size and result.return_data:
            frame.memory.write(
                out_offset, result.return_data[:out_size].ljust(out_size, b"\x00")
            )
        frame.stack.push(int(result.success))

    def _op_return(self, frame, logs, depth):
        offset = frame.stack.pop()
        size = frame.stack.pop()
        frame.charge_memory(self.schedule, offset, size)
        raise _Stop(frame.memory.read(offset, size))

    def _op_revert(self, frame, logs, depth):
        offset = frame.stack.pop()
        size = frame.stack.pop()
        frame.charge_memory(self.schedule, offset, size)
        raise _Revert(frame.memory.read(offset, size))

    def _op_selfdestruct(self, frame, logs, depth):
        frame.charge(self.schedule.selfdestruct)
        beneficiary = _word_to_address(frame.stack.pop())
        balance = self.state.balance_of(frame.address)
        if balance:
            self.state.transfer(frame.address, beneficiary, balance)
        self.state.delete_account(frame.address)
        frame.refund += self.schedule.selfdestruct_refund
        raise _Stop(b"")


def _build_handlers():
    table = {}
    named = {
        "STOP": EVM._op_stop,
        "ADD": EVM._op_add,
        "MUL": EVM._op_mul,
        "SUB": EVM._op_sub,
        "DIV": EVM._op_div,
        "SDIV": EVM._op_sdiv,
        "MOD": EVM._op_mod,
        "ADDMOD": EVM._op_addmod,
        "MULMOD": EVM._op_mulmod,
        "EXP": EVM._op_exp,
        "LT": EVM._op_lt,
        "GT": EVM._op_gt,
        "SLT": EVM._op_slt,
        "SGT": EVM._op_sgt,
        "EQ": EVM._op_eq,
        "ISZERO": EVM._op_iszero,
        "AND": EVM._op_and,
        "OR": EVM._op_or,
        "XOR": EVM._op_xor,
        "NOT": EVM._op_not,
        "BYTE": EVM._op_byte,
        "SHA3": EVM._op_sha3,
        "ADDRESS": EVM._op_address,
        "BALANCE": EVM._op_balance,
        "ORIGIN": EVM._op_origin,
        "CALLER": EVM._op_caller,
        "CALLVALUE": EVM._op_callvalue,
        "CALLDATALOAD": EVM._op_calldataload,
        "CALLDATASIZE": EVM._op_calldatasize,
        "CALLDATACOPY": EVM._op_calldatacopy,
        "CODESIZE": EVM._op_codesize,
        "CODECOPY": EVM._op_codecopy,
        "GASPRICE": EVM._op_gasprice,
        "EXTCODESIZE": EVM._op_extcodesize,
        "BLOCKHASH": EVM._op_blockhash,
        "COINBASE": EVM._op_coinbase,
        "TIMESTAMP": EVM._op_timestamp,
        "NUMBER": EVM._op_number,
        "DIFFICULTY": EVM._op_difficulty,
        "GASLIMIT": EVM._op_gaslimit,
        "POP": EVM._op_pop,
        "MLOAD": EVM._op_mload,
        "MSTORE": EVM._op_mstore,
        "MSTORE8": EVM._op_mstore8,
        "SLOAD": EVM._op_sload,
        "SSTORE": EVM._op_sstore,
        "JUMP": EVM._op_jump,
        "JUMPI": EVM._op_jumpi,
        "PC": EVM._op_pc,
        "MSIZE": EVM._op_msize,
        "GAS": EVM._op_gas,
        "JUMPDEST": EVM._op_jumpdest,
        "LOG0": EVM._op_log0,
        "LOG1": EVM._op_log1,
        "LOG2": EVM._op_log2,
        "LOG3": EVM._op_log3,
        "LOG4": EVM._op_log4,
        "CREATE": EVM._op_create,
        "CALL": EVM._op_call,
        "RETURN": EVM._op_return,
        "REVERT": EVM._op_revert,
        "SELFDESTRUCT": EVM._op_selfdestruct,
    }
    for name, method in named.items():
        table[ops.OPCODES[name]] = method
    return table


_HANDLERS = _build_handlers()
