"""The EVM's 256-bit word stack (max depth 1024)."""

from __future__ import annotations

from typing import List

__all__ = ["Stack", "StackError", "WORD_MASK", "MAX_STACK_DEPTH"]

WORD_MASK = 2**256 - 1
MAX_STACK_DEPTH = 1024


class StackError(Exception):
    """Stack underflow or overflow — both abort execution."""


class Stack:
    """A bounded LIFO of 256-bit unsigned words."""

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: List[int] = []

    def push(self, value: int) -> None:
        if len(self._items) >= MAX_STACK_DEPTH:
            raise StackError("stack overflow (depth 1024)")
        self._items.append(value & WORD_MASK)

    def pop(self) -> int:
        if not self._items:
            raise StackError("stack underflow")
        return self._items.pop()

    def peek(self, depth: int = 0) -> int:
        """Read the item ``depth`` positions below the top without popping."""
        if depth >= len(self._items):
            raise StackError("stack underflow on peek")
        return self._items[-1 - depth]

    def dup(self, position: int) -> None:
        """DUPn: copy the ``position``-th item (1-based) to the top."""
        if position < 1 or position > len(self._items):
            raise StackError(f"DUP{position} underflow")
        self.push(self._items[-position])

    def swap(self, position: int) -> None:
        """SWAPn: exchange the top with the item ``position`` below it."""
        if position < 1 or len(self._items) < position + 1:
            raise StackError(f"SWAP{position} underflow")
        self._items[-1], self._items[-1 - position] = (
            self._items[-1 - position],
            self._items[-1],
        )

    def __len__(self) -> int:
        return len(self._items)

    def as_list(self) -> List[int]:
        """Copy of the stack, bottom first (tracing/tests)."""
        return list(self._items)
