"""A miniature, gas-metered Ethereum Virtual Machine.

Implements the opcode subset needed to run the reproduction's scenario
contracts — including the DAO-style reentrancy exploit — with faithful
call/revert semantics and per-era gas schedules.
"""

from .abi import decode_words, encode_call
from .opcodes import assemble, disassemble
from .vm import (
    EVM,
    BlockEnvironment,
    ExecutionResult,
    Message,
    derive_contract_address,
)

__all__ = [
    "EVM",
    "BlockEnvironment",
    "Message",
    "ExecutionResult",
    "derive_contract_address",
    "assemble",
    "disassemble",
    "encode_call",
    "decode_words",
]
