"""EVM linear memory with word-granularity gas expansion.

Memory grows in 32-byte words and each newly touched word costs gas — the
"each byte of memory the code uses costs gas" behaviour the paper summarizes
in Section 2.1.  Expansion cost here is linear (the quadratic term matters
only for multi-kilobyte frames, which none of our scenario contracts touch).
"""

from __future__ import annotations

__all__ = ["Memory"]

_WORD = 32


class Memory:
    """A byte-addressable, zero-initialized, growable memory."""

    __slots__ = ("_data",)

    def __init__(self) -> None:
        self._data = bytearray()

    def __len__(self) -> int:
        return len(self._data)

    @property
    def active_words(self) -> int:
        return len(self._data) // _WORD

    def expansion_words(self, offset: int, size: int) -> int:
        """How many new words an access of ``size`` bytes at ``offset`` adds.

        Used by the interpreter to charge memory gas *before* growing.
        """
        if size == 0:
            return 0
        needed = (offset + size + _WORD - 1) // _WORD
        return max(0, needed - self.active_words)

    def _grow(self, offset: int, size: int) -> None:
        if size == 0:
            return
        needed = (offset + size + _WORD - 1) // _WORD * _WORD
        if needed > len(self._data):
            self._data.extend(b"\x00" * (needed - len(self._data)))

    def read(self, offset: int, size: int) -> bytes:
        self._grow(offset, size)
        return bytes(self._data[offset : offset + size])

    def write(self, offset: int, value: bytes) -> None:
        self._grow(offset, len(value))
        self._data[offset : offset + len(value)] = value

    def read_word(self, offset: int) -> int:
        return int.from_bytes(self.read(offset, _WORD), "big")

    def write_word(self, offset: int, value: int) -> None:
        self.write(offset, (value % 2**256).to_bytes(_WORD, "big"))

    def write_byte(self, offset: int, value: int) -> None:
        self.write(offset, bytes([value & 0xFF]))
