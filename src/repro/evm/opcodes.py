"""EVM opcode table and a small assembler.

The byte values match the real EVM so that disassemblies read like public
Ethereum tooling output.  Only the subset needed by this reproduction is
defined — enough to express value transfers, storage, control flow, hashing,
logging, contract creation and inter-contract calls (the ingredients of the
DAO-style reentrancy scenario and the paper's "contract transaction"
classification).
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["OPCODES", "OPCODE_NAMES", "assemble", "disassemble", "op"]

OPCODES: Dict[str, int] = {
    "STOP": 0x00,
    "ADD": 0x01,
    "MUL": 0x02,
    "SUB": 0x03,
    "DIV": 0x04,
    "SDIV": 0x05,
    "MOD": 0x06,
    "ADDMOD": 0x08,
    "MULMOD": 0x09,
    "EXP": 0x0A,
    "LT": 0x10,
    "GT": 0x11,
    "SLT": 0x12,
    "SGT": 0x13,
    "EQ": 0x14,
    "ISZERO": 0x15,
    "AND": 0x16,
    "OR": 0x17,
    "XOR": 0x18,
    "NOT": 0x19,
    "BYTE": 0x1A,
    "SHA3": 0x20,
    "ADDRESS": 0x30,
    "BALANCE": 0x31,
    "ORIGIN": 0x32,
    "CALLER": 0x33,
    "CALLVALUE": 0x34,
    "CALLDATALOAD": 0x35,
    "CALLDATASIZE": 0x36,
    "CALLDATACOPY": 0x37,
    "CODESIZE": 0x38,
    "CODECOPY": 0x39,
    "GASPRICE": 0x3A,
    "EXTCODESIZE": 0x3B,
    "BLOCKHASH": 0x40,
    "COINBASE": 0x41,
    "TIMESTAMP": 0x42,
    "NUMBER": 0x43,
    "DIFFICULTY": 0x44,
    "GASLIMIT": 0x45,
    "POP": 0x50,
    "MLOAD": 0x51,
    "MSTORE": 0x52,
    "MSTORE8": 0x53,
    "SLOAD": 0x54,
    "SSTORE": 0x55,
    "JUMP": 0x56,
    "JUMPI": 0x57,
    "PC": 0x58,
    "MSIZE": 0x59,
    "GAS": 0x5A,
    "JUMPDEST": 0x5B,
    # PUSH1..PUSH32 = 0x60..0x7f, DUP1..DUP16 = 0x80..0x8f,
    # SWAP1..SWAP16 = 0x90..0x9f — generated below.
    "LOG0": 0xA0,
    "LOG1": 0xA1,
    "LOG2": 0xA2,
    "LOG3": 0xA3,
    "LOG4": 0xA4,
    "CREATE": 0xF0,
    "CALL": 0xF1,
    "RETURN": 0xF3,
    "REVERT": 0xFD,
    "SELFDESTRUCT": 0xFF,
}

for _n in range(1, 33):
    OPCODES[f"PUSH{_n}"] = 0x60 + _n - 1
for _n in range(1, 17):
    OPCODES[f"DUP{_n}"] = 0x80 + _n - 1
    OPCODES[f"SWAP{_n}"] = 0x90 + _n - 1

OPCODE_NAMES: Dict[int, str] = {code: name for name, code in OPCODES.items()}


def op(name: str) -> int:
    """Opcode byte for ``name`` (raises KeyError for unknown mnemonics)."""
    return OPCODES[name]


def _encode_push(value: int) -> List[int]:
    """Smallest PUSHn encoding of a non-negative integer."""
    if value < 0 or value >= 2**256:
        raise ValueError("push operand out of 256-bit range")
    width = max(1, (value.bit_length() + 7) // 8)
    return [OPCODES[f"PUSH{width}"], *value.to_bytes(width, "big")]


def assemble(source: str) -> bytes:
    """Assemble whitespace-separated mnemonics into bytecode.

    * Integer literals (decimal or ``0x``-hex) become minimal PUSH
      instructions.
    * An explicit ``PUSHn`` mnemonic consumes the next token as its operand,
      encoded in exactly ``n`` bytes.
    * ``name:`` defines a label at the current offset (emitting a JUMPDEST);
      ``@name`` references it as a fixed-width ``PUSH2`` of the offset, so
      forward references assemble in a single sizing pass.
    * ``;`` starts a comment running to end of line.

    Example::

        assemble(\"\"\"
            CALLVALUE ISZERO @skip JUMPI
            CALLER SLOAD CALLVALUE ADD CALLER SSTORE   ; credit sender
            skip: STOP
        \"\"\")
    """
    tokens: List[str] = []
    for line in source.splitlines():
        code_part = line.split(";", 1)[0]
        tokens.extend(code_part.split())

    # Pass 1: compute the byte offset of every token, recording labels.
    # Label references are fixed-size (PUSH2 + 2 bytes), so sizing is exact.
    labels: Dict[str, int] = {}
    offset = 0
    index = 0
    sized: List[tuple] = []  # (kind, payload)
    while index < len(tokens):
        token = tokens[index]
        upper = token.upper()
        if token.endswith(":"):
            name = token[:-1]
            if not name or name.upper() in OPCODES:
                raise ValueError(f"bad label {token!r}")
            if name in labels:
                raise ValueError(f"duplicate label {name!r}")
            labels[name] = offset
            sized.append(("op", OPCODES["JUMPDEST"]))
            offset += 1
        elif token.startswith("@"):
            sized.append(("label-ref", token[1:]))
            offset += 3  # PUSH2 + 2 operand bytes
        elif upper.startswith("PUSH") and upper in OPCODES and upper != "PUSH":
            width = int(upper[4:])
            index += 1
            if index >= len(tokens):
                raise ValueError(f"{upper} missing operand")
            operand = int(tokens[index], 0)
            sized.append(("pushn", (width, operand)))
            offset += 1 + width
        elif upper in OPCODES:
            sized.append(("op", OPCODES[upper]))
            offset += 1
        else:
            try:
                value = int(token, 0)
            except ValueError:
                raise ValueError(f"unknown mnemonic {token!r}") from None
            encoded = _encode_push(value)
            sized.append(("bytes", bytes(encoded)))
            offset += len(encoded)
        index += 1

    # Pass 2: emit, resolving label references.
    output = bytearray()
    for kind, payload in sized:
        if kind == "op":
            output.append(payload)
        elif kind == "bytes":
            output.extend(payload)
        elif kind == "pushn":
            width, operand = payload
            output.append(OPCODES[f"PUSH{width}"])
            output.extend(operand.to_bytes(width, "big"))
        elif kind == "label-ref":
            if payload not in labels:
                raise ValueError(f"undefined label {payload!r}")
            output.append(OPCODES["PUSH2"])
            output.extend(labels[payload].to_bytes(2, "big"))
    return bytes(output)


def disassemble(code: bytes) -> str:
    """Render bytecode as one instruction per line (debugging aid)."""
    lines: List[str] = []
    index = 0
    while index < len(code):
        byte = code[index]
        name = OPCODE_NAMES.get(byte, f"UNKNOWN_{byte:02x}")
        if name.startswith("PUSH"):
            width = byte - 0x60 + 1
            operand = code[index + 1 : index + 1 + width]
            lines.append(f"{index:04x}: {name} 0x{operand.hex() or '00'}")
            index += 1 + width
        else:
            lines.append(f"{index:04x}: {name}")
            index += 1
    return "\n".join(lines)
