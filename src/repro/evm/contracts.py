"""Scenario contract library.

These hand-assembled contracts exercise the EVM in the ways the paper's
history requires:

* :func:`vulnerable_bank_code` is a DAO-style deposit/withdraw vault whose
  ``withdraw`` sends ether *before* zeroing the caller's balance — the
  reentrancy pattern the June 2016 attacker exploited for ~$50M
  (Section 2.1).
* :func:`reentrancy_attacker_code` is the exploit: its fallback function
  re-enters ``withdraw`` while the vault's bookkeeping still shows a
  balance.
* :func:`counter_code` and :func:`ledger_code` are benign workhorses used
  by the transaction-mix workload (Figure 2's contract-call fraction).
* :func:`gas_guzzler_code` loops over cheap state-reading opcodes — the
  shape of the autumn-2016 DoS contracts whose repricing caused the hard
  forks compared in Section 2.1 (86 vs 3,583 orphaned blocks).

Contracts are deployed through init code built by :func:`deploy_wrapper`,
which returns the body code at construction like real deployment bytecode.
"""

from __future__ import annotations

from ..chain.types import Address
from .opcodes import assemble

__all__ = [
    "SEL_DEPOSIT",
    "SEL_WITHDRAW",
    "SEL_ATTACK",
    "SEL_INCREMENT",
    "SEL_TRANSFER",
    "deploy_wrapper",
    "vulnerable_bank_code",
    "reentrancy_attacker_code",
    "counter_code",
    "ledger_code",
    "gas_guzzler_code",
]

#: Whole-word call selectors (see :mod:`repro.evm.abi`).
SEL_DEPOSIT = 1
SEL_WITHDRAW = 2
SEL_ATTACK = 1
SEL_INCREMENT = 1
SEL_TRANSFER = 1


def deploy_wrapper(body: bytes) -> bytes:
    """Init code that returns ``body`` as the deployed contract.

    Layout: ``[copier][body]``; the copier CODECOPYs the body into memory
    and RETURNs it, exactly like compiler-emitted deployment bytecode.
    """
    # The copier below is 11 bytes: PUSH2 len, PUSH2 off, PUSH1 0,
    # CODECOPY, PUSH2 len, PUSH1 0, RETURN -- but assembling with labels is
    # clearer; compute the prologue size after assembly by fixed-point.
    prologue_size = 0
    while True:
        prologue = assemble(
            f"""
            PUSH2 {len(body)} PUSH2 {prologue_size} PUSH1 0 CODECOPY
            PUSH2 {len(body)} PUSH1 0 RETURN
            """
        )
        if len(prologue) == prologue_size:
            return prologue + body
        prologue_size = len(prologue)


def vulnerable_bank_code() -> bytes:
    """The DAO-style vault.

    * selector 1 (``deposit``): ``balances[caller] += callvalue`` — the
      caller's address doubles as the storage slot.
    * selector 2 (``withdraw``): sends the caller's full balance via a
      value CALL that forwards all remaining gas, **then** zeroes the
      balance.  A contract caller can re-enter during the send.
    * empty calldata (fallback): accepts plain ether transfers.
    """
    return assemble(
        """
        CALLDATASIZE ISZERO @fallback JUMPI
        PUSH1 0 CALLDATALOAD
        DUP1 1 EQ @deposit JUMPI
        DUP1 2 EQ @withdraw JUMPI
        STOP

        deposit:
            POP
            CALLER SLOAD CALLVALUE ADD CALLER SSTORE
            STOP

        withdraw:
            POP
            ; CALL(gas, caller, balances[caller], 0, 0, 0, 0)
            0 0 0 0
            CALLER SLOAD
            CALLER
            GAS
            CALL
            POP
            ; zero the balance only AFTER the send -- the reentrancy bug
            0 CALLER SSTORE
            STOP

        fallback:
            STOP
        """
    )


def reentrancy_attacker_code(
    bank: Address, max_reentries: int = 3
) -> bytes:
    """The exploit contract targeting a :func:`vulnerable_bank_code` vault.

    * selector 1 (``attack``): deposits the attached ether into the bank,
      then triggers ``withdraw``.
    * fallback: invoked when the bank sends ether mid-``withdraw``;
      re-enters ``withdraw`` until ``max_reentries`` nested claims have
      been made.  Each re-entry drains one extra multiple of the deposit.

    Storage layout: slot 0 = re-entry counter.
    """
    bank_word = int.from_bytes(bank, "big")
    return assemble(
        f"""
        CALLDATASIZE ISZERO @fallback JUMPI
        PUSH1 0 CALLDATALOAD
        1 EQ @attack JUMPI
        STOP

        attack:
            ; bank.deposit{{value: callvalue}}()
            1 PUSH1 0 MSTORE
            0 0 32 0 CALLVALUE PUSH20 {bank_word:#x} GAS CALL POP
            ; reset the re-entry counter, then bank.withdraw()
            0 PUSH1 0 SSTORE
            2 PUSH1 0 MSTORE
            0 0 32 0 0 PUSH20 {bank_word:#x} GAS CALL POP
            STOP

        fallback:
            ; receiving ether from the bank: re-enter withdraw while the
            ; counter is below the bound (push order makes LT compute
            ; counter < max_reentries)
            {max_reentries} PUSH1 0 SLOAD LT ISZERO @done JUMPI
            PUSH1 0 SLOAD 1 ADD PUSH1 0 SSTORE
            2 PUSH1 0 MSTORE
            0 0 32 0 0 PUSH20 {bank_word:#x} GAS CALL POP
            STOP

        done:
            STOP
        """
    )


def counter_code() -> bytes:
    """Increment storage slot 0 on every call (benign contract workload)."""
    return assemble(
        """
        PUSH1 0 SLOAD 1 ADD PUSH1 0 SSTORE
        STOP
        """
    )


def ledger_code() -> bytes:
    """A toy token: selector 1 transfers ``amount`` to ``to``.

    calldata: [selector=1][to: word][amount: word].  Balances are keyed by
    address-as-slot.  Credits are unchecked mints when the caller lacks
    funds, which keeps workload generation simple while still producing
    storage-heavy contract calls.
    """
    return assemble(
        """
        CALLDATASIZE ISZERO @done JUMPI
        PUSH1 0 CALLDATALOAD 1 EQ ISZERO @done JUMPI
        ; amount = calldata[2], to = calldata[1]
        PUSH1 64 CALLDATALOAD                 ; amount
        ; debit caller if funded (no underflow: skip debit when short)
        DUP1 CALLER SLOAD LT @credit JUMPI    ; if balance < amount skip debit
        CALLER SLOAD DUP2 SWAP1 SUB CALLER SSTORE

        credit:
            ; balances[to] += amount
            PUSH1 32 CALLDATALOAD SLOAD ADD
            PUSH1 32 CALLDATALOAD SSTORE
            STOP

        done:
            STOP
        """
    )


def gas_guzzler_code(iterations: int = 200) -> bytes:
    """A DoS-shaped contract: a loop of underpriced state-reading opcodes.

    Before EIP-150, EXTCODESIZE cost 20 gas, so a cheap transaction could
    force thousands of disk-touching reads; after repricing (700 gas) the
    same loop exhausts its gas budget ~35x sooner.  The ablation benchmark
    runs this contract under both schedules to reproduce the economics that
    forced the November 2016 / January 2017 forks.
    """
    return assemble(
        f"""
        ; slot 0 counts completed iterations (observable progress)
        0
        loop:
            DUP1 {iterations} EQ @done JUMPI
            CALLER EXTCODESIZE POP     ; the underpriced state read
            CALLER BALANCE POP
            1 ADD
            @loop JUMP

        done:
            PUSH1 0 SSTORE
            STOP
        """
    )
