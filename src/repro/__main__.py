"""Command-line entry point: ``python -m repro``.

Subcommands:

``observations``
    Run a compact reproduction (configurable horizon) and print the
    paper's six-observation scoreboard.

``figure N``
    Regenerate one of the paper's figures (1-5) as a text table, with
    optional CSV output.

``fork-lengths``
    Print the Section 2.1 fork-length comparison (86 vs 3,583 blocks).

``run-all``
    Produce all five figures plus the observation scoreboard in one
    parallel, cached pass through :mod:`repro.harness` — ``--jobs N``
    workers, results content-addressed under ``--cache-dir`` so a
    second invocation is served from cache, and a JSON run manifest
    written for observability.

``fault-sweep``
    Run the robustness grid (churn rate x link loss x split duration)
    of fault-injected partition scenarios through the same pool and
    cache, writing ``robustness.txt``/``.csv``/``.json`` with per-cell
    recovery times and a reproducibility digest.

``topology-sweep``
    Run the topology realism grid (uniform / power-law / geo-clustered
    / ring / small-world graph families) of partition scenarios plus
    DEthna-style topology-inference probes through the same pool and
    cache, writing ``topology.txt``/``.csv``/``.json`` with per-family
    stabilization times, degree statistics, inference precision/recall,
    and a reproducibility digest.

``bench``
    Benchmark the performance kernels (batched block production, fast
    difficulty rules, event-loop and transport fast paths) against the
    retained seed-state implementations; write canonical
    ``BENCH_<name>.json`` regression reports and exit nonzero if any
    fast/reference result digests diverge.

``serve``
    Start the long-running scenario service (:mod:`repro.serve`): an
    asyncio HTTP/JSON server that accepts scenario jobs, dedupes
    identical configs into one running job, streams progress over SSE,
    persists results to a durable SQLite store, and enforces per-tenant
    admission quotas.

``trace``
    Run one partition (or chaos-partition) scenario with the
    :mod:`repro.obs` layer fully enabled: export every trace event as
    JSONL (``--out``) and print deterministic stats plus the wall-time
    span profile (``--stats``).

The full-fidelity runs live in ``benchmarks/``; this CLI trades horizon
for latency so a first look takes tens of seconds, not minutes.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional


def _add_chunked_arguments(parser: argparse.ArgumentParser) -> None:
    """The chunked/resumable sweep flags shared by run-all + fault-sweep."""
    parser.add_argument("--chunk-size", type=int, default=None,
                        metavar="N",
                        help="run through the sweep ledger in chunks of N "
                             "jobs: crash-safe, resumable (--resume), and "
                             "shareable by concurrent processes; unset = "
                             "the classic single-shot path")
    parser.add_argument("--resume", action="store_true",
                        help="continue an interrupted chunked run from "
                             "its ledger instead of starting over")
    parser.add_argument("--max-quarantined", type=int, default=None,
                        metavar="N",
                        help="fail the sweep (exit 1) once more than N "
                             "chunks are quarantined; unset = complete "
                             "degraded (exit 4) no matter how many")
    parser.add_argument("--ledger-dir", type=str, default=None,
                        help="sweep-ledger directory (default: under "
                             "<output-dir>)")
    parser.add_argument("--lease-seconds", type=float, default=300.0,
                        help="chunk lease duration; a crashed claimant's "
                             "chunk becomes claimable again after this")
    parser.add_argument("--retry-backoff", type=float, default=0.0,
                        metavar="SECONDS",
                        help="base delay before a job's first retry, "
                             "doubling per further retry with "
                             "deterministic seeded jitter (0 = retry "
                             "immediately, the default)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'Stick a fork in it' (HotNets 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    obs = sub.add_parser(
        "observations", help="run the reproduction and print the scoreboard"
    )
    obs.add_argument("--days", type=int, default=270,
                     help="simulated days after the fork (default 270, the "
                          "paper's window; shorter runs are faster but the "
                          "nine-month observations 3 and 6 need the full "
                          "horizon)")
    obs.add_argument("--seed", type=int, default=2016_07_20)

    fig = sub.add_parser("figure", help="regenerate one figure")
    fig.add_argument("number", type=int, choices=range(1, 6))
    fig.add_argument("--days", type=int, default=150)
    fig.add_argument("--seed", type=int, default=2016_07_20)
    fig.add_argument("--sample-days", type=int, default=7)
    fig.add_argument("--csv", type=str, default=None,
                     help="also write the series to this CSV path")

    sub.add_parser("fork-lengths",
                   help="the Section 2.1 fork-length comparison")

    runall = sub.add_parser(
        "run-all",
        help="all five figures + the scoreboard in one parallel, "
             "cached pass",
    )
    runall.add_argument("--days", type=int, default=150)
    runall.add_argument("--seed", type=int, default=2016_07_20)
    runall.add_argument("--sample-days", type=int, default=7)
    runall.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = in-process serial)")
    runall.add_argument("--cache-dir", type=str, default=".repro-cache",
                        help="content-addressed result cache location")
    runall.add_argument("--no-cache", action="store_true",
                        help="recompute everything; never read or write "
                             "the cache")
    runall.add_argument("--output-dir", type=str, default="runs",
                        help="where figure tables and the scoreboard land")
    runall.add_argument("--manifest", type=str, default=None,
                        help="run-manifest path (default: "
                             "<output-dir>/manifest.json)")
    runall.add_argument("--timeout", type=float, default=900.0,
                        help="per-job deadline in seconds before the "
                             "worker is killed and the job retried")
    runall.add_argument("--retries", type=int, default=1,
                        help="extra attempts after a timeout or crash")
    runall.add_argument("--cache-max-bytes", type=int, default=None,
                        help="after the run, evict least-recently-stored "
                             "cache entries until the cache fits this "
                             "many bytes")
    _add_chunked_arguments(runall)
    # run-all only (not shared with fault-sweep: that sweep's cells are
    # message-level chaos scenarios, not day-loop fork simulations, so
    # there is no horizon to checkpoint within).
    runall.add_argument("--horizon-chunk-days", type=int, default=None,
                        metavar="D",
                        help="additionally split the simulation itself "
                             "into checkpointed chunks of D days, so an "
                             "interrupted run resumes mid-horizon instead "
                             "of re-mining from day zero; requires "
                             "--chunk-size and the cache")

    sweep = sub.add_parser(
        "fault-sweep",
        help="grid of fault-injected partition runs (chaos testing)",
    )
    sweep.add_argument("--nodes", type=int, default=30)
    sweep.add_argument("--miners", type=int, default=8)
    sweep.add_argument("--seed", type=int, default=2016_07_20)
    sweep.add_argument("--horizon", type=float, default=3600.0,
                       help="simulated seconds past the fork per cell")
    sweep.add_argument("--churn", type=float, nargs="+",
                       default=[0.0, 0.005],
                       help="churn axis: crashes per simulated second")
    sweep.add_argument("--loss", type=float, nargs="+", default=[0.0, 0.1],
                       help="loss axis: extra region-wide loss fraction")
    sweep.add_argument("--split", type=float, nargs="+",
                       default=[0.0, 600.0],
                       help="split axis: cross-region cut duration (s)")
    sweep.add_argument("--no-resilience", action="store_true",
                       help="control arm: legacy protocol under fire")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = in-process serial)")
    sweep.add_argument("--cache-dir", type=str, default=".repro-cache")
    sweep.add_argument("--no-cache", action="store_true")
    sweep.add_argument("--output-dir", type=str, default="runs")
    sweep.add_argument("--manifest", type=str, default=None,
                       help="manifest path (default: "
                            "<output-dir>/fault-sweep-manifest.json)")
    sweep.add_argument("--timeout", type=float, default=900.0)
    sweep.add_argument("--retries", type=int, default=1)
    sweep.add_argument("--max-events", type=int, default=None,
                       help="per-cell event budget; a cell that exceeds "
                            "it fails (mainly for fault-injection tests "
                            "of the quarantine path)")
    _add_chunked_arguments(sweep)

    topo = sub.add_parser(
        "topology-sweep",
        help="partition/stabilization scenario across topology families "
             "(degree skew, geo-clustering) plus marked-transaction "
             "topology inference",
    )
    topo.add_argument("--nodes", type=int, default=30)
    topo.add_argument("--miners", type=int, default=8)
    topo.add_argument("--seed", type=int, default=2016_07_20)
    topo.add_argument("--horizon", type=float, default=3600.0,
                      help="simulated seconds past the fork per cell")
    topo.add_argument("--degree", type=int, default=8,
                      help="target degree (mean/lattice/power-law floor)")
    topo.add_argument("--topologies", type=str, nargs="+",
                      default=["uniform", "powerlaw", "geo"],
                      choices=["uniform", "powerlaw", "geo", "ring",
                               "smallworld"],
                      help="topology families to sweep, in order")
    topo.add_argument("--gamma", type=float, default=2.2,
                      help="power-law exponent (measurements: 2-2.5)")
    topo.add_argument("--intra-bias", type=float, default=0.7,
                      help="geo: probability an edge stays in-region")
    topo.add_argument("--no-infer", action="store_true",
                      help="skip the marked-transaction inference cells")
    topo.add_argument("--infer-probes", type=int, default=5,
                      help="marked transactions injected per target node")
    topo.add_argument("--jobs", type=int, default=1,
                      help="worker processes (1 = in-process serial)")
    topo.add_argument("--cache-dir", type=str, default=".repro-cache")
    topo.add_argument("--no-cache", action="store_true")
    topo.add_argument("--output-dir", type=str, default="runs")
    topo.add_argument("--manifest", type=str, default=None,
                      help="manifest path (default: "
                           "<output-dir>/topology-sweep-manifest.json)")
    topo.add_argument("--timeout", type=float, default=900.0)
    topo.add_argument("--retries", type=int, default=1)
    _add_chunked_arguments(topo)

    trace = sub.add_parser(
        "trace",
        help="run one scenario fully instrumented; export the trace "
             "stream and print deterministic stats",
    )
    trace.add_argument("--scenario", type=str, default="partition",
                       choices=["partition", "chaos-partition"],
                       help="which message-level scenario to trace")
    trace.add_argument("--out", type=str, default=None,
                       help="write every trace event to this JSONL path")
    trace.add_argument("--stats", action="store_true",
                       help="print per-kind event counts, counter totals, "
                            "digests, and the span profile")
    trace.add_argument("--nodes", type=int, default=20)
    trace.add_argument("--miners", type=int, default=6)
    trace.add_argument("--seed", type=int, default=2016_07_20)
    trace.add_argument("--horizon", type=float, default=1800.0,
                       help="simulated seconds past the fork")
    trace.add_argument("--churn", type=float, default=0.005,
                       help="chaos only: crashes per simulated second")
    trace.add_argument("--loss", type=float, default=0.1,
                       help="chaos only: extra region-wide loss fraction")
    trace.add_argument("--split", type=float, default=300.0,
                       help="chaos only: cross-region cut duration (s)")
    trace.add_argument("--ring", type=int, default=4096,
                       help="ring-buffer capacity for in-memory capture")

    serve = sub.add_parser(
        "serve",
        help="long-running multi-tenant scenario service: HTTP/JSON "
             "job submission with dedupe, durable results, SSE "
             "progress streaming, and per-tenant quotas",
    )
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8734,
                       help="listen port (0 binds an ephemeral port; "
                            "the bound port is printed on startup)")
    serve.add_argument("--cache-dir", type=str, default=".repro-cache",
                       help="content-addressed result cache shared "
                            "with run-all")
    serve.add_argument("--no-cache", action="store_true",
                       help="run every job without the pickle cache")
    serve.add_argument("--db", type=str, default=".repro-serve.db",
                       help="durable SQLite job/result store (WAL); "
                            "'none' disables durability")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes per job (1 = in-thread "
                            "serial execution)")
    serve.add_argument("--exec-threads", type=int, default=4,
                       help="concurrent jobs the server executes")
    serve.add_argument("--timeout", type=float, default=900.0,
                       help="per-job deadline (seconds)")
    serve.add_argument("--retries", type=int, default=1)
    serve.add_argument("--retry-backoff", type=float, default=0.0,
                       metavar="SECONDS",
                       help="base delay before a job's first retry, "
                            "doubling per further retry with "
                            "deterministic seeded jitter (0 = retry "
                            "immediately)")
    serve.add_argument("--max-inflight", type=int, default=16,
                       help="server-wide cap on queued+running jobs")
    serve.add_argument("--tenant-max-inflight", type=int, default=2,
                       help="running jobs allowed per tenant")
    serve.add_argument("--tenant-max-queued", type=int, default=8,
                       help="queued jobs allowed per tenant")
    serve.add_argument("--cache-max-bytes", type=int, default=None,
                       help="maintenance loop prunes the cache to this "
                            "size (LRU by mtime); unset = unbounded")
    serve.add_argument("--maintenance-interval", type=float, default=60.0,
                       help="seconds between cache maintenance passes")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       help="seconds to wait for in-flight jobs on "
                            "shutdown")
    serve.add_argument("--allow-kind", action="append", default=None,
                       metavar="KIND",
                       help="extend the served job kinds (repeatable); "
                            "default: the public experiment kinds")

    bench = sub.add_parser(
        "bench",
        help="benchmark the fast kernels against the seed-state "
             "reference implementations; write BENCH_*.json and fail "
             "on any digest divergence",
    )
    from .perf.bench import add_bench_arguments

    add_bench_arguments(bench)
    return parser


def _run_simulation(days: int, seed: int):
    from .sim.engine import ForkSimConfig, ForkSimulation

    print(f"simulating {days} days from the fork (seed {seed})...",
          file=sys.stderr)
    start = time.time()
    result = ForkSimulation(
        ForkSimConfig(days=days, prefork_days=7, seed=seed)
    ).run()
    print(f"done in {time.time() - start:.0f}s", file=sys.stderr)
    return result


def _echo_detector(result):
    from .core import EchoDetector
    from .core.metrics import trace_transactions_per_day
    from .scenarios.replay_attack import ReplayWorkload, ReplayWorkloadConfig

    eth = trace_transactions_per_day(result.eth_trace, result.fork_timestamp)
    etc = trace_transactions_per_day(result.etc_trace, result.fork_timestamp)
    workload = ReplayWorkload(ReplayWorkloadConfig(days=result.config.days))
    records, _ = workload.generate(eth.values, etc.values)
    detector = EchoDetector()
    detector.observe_records(records)
    return detector


def cmd_observations(args) -> int:
    from .core.observations import evaluate_all
    from .scenarios.partition_event import (
        PartitionScenario,
        PartitionScenarioConfig,
    )

    if args.days < 270:
        print(
            f"note: observations 3 and 6 are nine-month claims; at "
            f"{args.days} days they may rightly fail to reproduce",
            file=sys.stderr,
        )
    result = _run_simulation(args.days, args.seed)
    detector = _echo_detector(result)
    print("running the message-level partition scenario...", file=sys.stderr)
    partition = PartitionScenario(PartitionScenarioConfig()).run()

    print()
    for observation in evaluate_all(result, partition, detector):
        print(observation.render())
    return 0


def cmd_figure(args) -> int:
    from .core import figure_1, figure_2, figure_3, figure_4, figure_5

    result = _run_simulation(args.days, args.seed)
    generators = {1: figure_1, 2: figure_2, 3: figure_3, 5: figure_5}
    if args.number == 4:
        figure = figure_4(result, _echo_detector(result))
    else:
        figure = generators[args.number](result)
    print()
    print(figure.render(sample_days=args.sample_days))
    if args.csv:
        try:
            rows = figure.write_csv(args.csv)
        except OSError as exc:
            print(f"error: cannot write CSV to {args.csv}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"\nwrote {rows} rows to {args.csv}", file=sys.stderr)
    return 0


def _check_chunked_arguments(args) -> Optional[str]:
    """Validate the shared chunked-sweep flags; an error string or None."""
    if args.chunk_size is not None and args.chunk_size < 1:
        return "--chunk-size must be >= 1"
    if args.max_quarantined is not None and args.max_quarantined < 0:
        return "--max-quarantined must be >= 0"
    if args.lease_seconds <= 0:
        return "--lease-seconds must be > 0"
    if args.retry_backoff < 0:
        return "--retry-backoff must be >= 0"
    if args.resume and args.chunk_size is None:
        return "--resume requires --chunk-size"
    return None


def _report_chunked(result) -> int:
    """Print a ChunkedSweepResult's outcome; returns its exit code."""
    print()
    if result.manifest is not None:
        print(result.manifest.summary())
        for path in result.manifest.outputs:
            print(f"  wrote {path}")
    if result.error:
        print(f"  {result.error}", file=sys.stderr)
    for entry in result.quarantined:
        print(
            f"  quarantined chunk {entry['chunk_id'][:12]} "
            f"({entry['label']}): {entry['error']}",
            file=sys.stderr,
        )
    print(f"  sweep {result.state} (exit {result.exit_code})",
          file=sys.stderr)
    return result.exit_code


def cmd_run_all(args) -> int:
    from .harness import ProgressReporter, run_all, run_all_chunked

    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.retries < 0:
        print("error: --retries must be >= 0", file=sys.stderr)
        return 2
    error = _check_chunked_arguments(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.horizon_chunk_days is not None:
        if args.horizon_chunk_days < 1:
            print("error: --horizon-chunk-days must be >= 1",
                  file=sys.stderr)
            return 2
        if args.chunk_size is None:
            print("error: --horizon-chunk-days requires --chunk-size "
                  "(it rides on the sweep ledger)", file=sys.stderr)
            return 2
        if args.no_cache:
            print("error: --horizon-chunk-days cannot be combined with "
                  "--no-cache; simulate chunks chain their checkpoints "
                  "through the cache", file=sys.stderr)
            return 2
    if args.chunk_size is not None:
        from .harness import LedgerError

        try:
            result = run_all_chunked(
                days=args.days,
                seed=args.seed,
                prefork_days=7,
                jobs=args.jobs,
                cache_dir=None if args.no_cache else args.cache_dir,
                output_dir=args.output_dir,
                manifest_path=args.manifest,
                timeout=args.timeout,
                retries=args.retries,
                sample_days=args.sample_days,
                progress=ProgressReporter(),
                retry_backoff=args.retry_backoff,
                chunk_size=args.chunk_size,
                resume=args.resume,
                max_quarantined=args.max_quarantined,
                ledger_dir=args.ledger_dir,
                lease_seconds=args.lease_seconds,
                horizon_chunk_days=args.horizon_chunk_days,
            )
        except LedgerError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return _report_chunked(result)
    manifest = run_all(
        days=args.days,
        seed=args.seed,
        prefork_days=7,
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        output_dir=args.output_dir,
        manifest_path=args.manifest,
        timeout=args.timeout,
        retries=args.retries,
        sample_days=args.sample_days,
        progress=ProgressReporter(),
        cache_max_bytes=args.cache_max_bytes,
        retry_backoff=args.retry_backoff,
    )
    print()
    print(manifest.summary())
    for path in manifest.outputs:
        print(f"  wrote {path}")
    return 1 if manifest.failures else 0


def cmd_fault_sweep(args) -> int:
    from .harness import (
        FaultSweepConfig,
        ProgressReporter,
        run_fault_sweep,
        run_fault_sweep_chunked,
    )

    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.retries < 0:
        print("error: --retries must be >= 0", file=sys.stderr)
        return 2
    if args.max_events is not None and args.max_events < 1:
        print("error: --max-events must be >= 1", file=sys.stderr)
        return 2
    error = _check_chunked_arguments(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    config_kwargs = dict(
        num_nodes=args.nodes,
        num_miners=args.miners,
        post_fork_horizon=args.horizon,
        seed=args.seed,
        churn_rates=tuple(args.churn),
        loss_rates=tuple(args.loss),
        split_durations=tuple(args.split),
        resilience=not args.no_resilience,
    )
    if args.max_events is not None:
        config_kwargs["max_events"] = args.max_events
    config = FaultSweepConfig(**config_kwargs)
    if args.chunk_size is not None:
        from .harness import LedgerError

        try:
            result = run_fault_sweep_chunked(
                config,
                jobs=args.jobs,
                cache_dir=None if args.no_cache else args.cache_dir,
                output_dir=args.output_dir,
                manifest_path=args.manifest,
                timeout=args.timeout,
                retries=args.retries,
                progress=ProgressReporter(),
                retry_backoff=args.retry_backoff,
                chunk_size=args.chunk_size,
                resume=args.resume,
                max_quarantined=args.max_quarantined,
                ledger_dir=args.ledger_dir,
                lease_seconds=args.lease_seconds,
            )
        except LedgerError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return _report_chunked(result)
    manifest = run_fault_sweep(
        config,
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        output_dir=args.output_dir,
        manifest_path=args.manifest,
        timeout=args.timeout,
        retries=args.retries,
        progress=ProgressReporter(),
        retry_backoff=args.retry_backoff,
    )
    print()
    print(manifest.summary())
    for path in manifest.outputs:
        print(f"  wrote {path}")
    return 1 if manifest.failures else 0


def cmd_topology_sweep(args) -> int:
    from .harness import (
        ProgressReporter,
        TopologySweepConfig,
        run_topology_sweep,
        run_topology_sweep_chunked,
    )

    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.retries < 0:
        print("error: --retries must be >= 0", file=sys.stderr)
        return 2
    if args.infer_probes < 1:
        print("error: --infer-probes must be >= 1", file=sys.stderr)
        return 2
    error = _check_chunked_arguments(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        config = TopologySweepConfig(
            num_nodes=args.nodes,
            num_miners=args.miners,
            post_fork_horizon=args.horizon,
            seed=args.seed,
            target_degree=args.degree,
            topologies=tuple(args.topologies),
            gamma=args.gamma,
            intra_bias=args.intra_bias,
            include_inference=not args.no_infer,
            infer_probes=args.infer_probes,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.chunk_size is not None:
        from .harness import LedgerError

        try:
            result = run_topology_sweep_chunked(
                config,
                jobs=args.jobs,
                cache_dir=None if args.no_cache else args.cache_dir,
                output_dir=args.output_dir,
                manifest_path=args.manifest,
                timeout=args.timeout,
                retries=args.retries,
                progress=ProgressReporter(),
                retry_backoff=args.retry_backoff,
                chunk_size=args.chunk_size,
                resume=args.resume,
                max_quarantined=args.max_quarantined,
                ledger_dir=args.ledger_dir,
                lease_seconds=args.lease_seconds,
            )
        except LedgerError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return _report_chunked(result)
    manifest = run_topology_sweep(
        config,
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        output_dir=args.output_dir,
        manifest_path=args.manifest,
        timeout=args.timeout,
        retries=args.retries,
        progress=ProgressReporter(),
        retry_backoff=args.retry_backoff,
    )
    print()
    print(manifest.summary())
    for path in manifest.outputs:
        print(f"  wrote {path}")
    return 1 if manifest.failures else 0


def cmd_trace(args) -> int:
    from .harness.faultsweep import FaultSweepConfig
    from .obs import Observability
    from .scenarios.partition_event import (
        PartitionScenario,
        PartitionScenarioConfig,
    )

    if args.scenario == "chaos-partition":
        sweep = FaultSweepConfig(
            num_nodes=args.nodes,
            num_miners=args.miners,
            post_fork_horizon=args.horizon,
            seed=args.seed,
        )
        config = sweep.cell_config(args.churn, args.loss, args.split)
    else:
        config = PartitionScenarioConfig(
            num_nodes=args.nodes,
            num_miners=args.miners,
            post_fork_horizon=args.horizon,
            seed=args.seed,
        )

    sink = None
    if args.out:
        try:
            sink = open(args.out, "w")
        except OSError as exc:
            print(f"error: cannot open {args.out}: {exc}", file=sys.stderr)
            return 1
    try:
        obs = Observability.enabled(capacity=args.ring, sink=sink)
        print(
            f"tracing {args.scenario} ({args.nodes} nodes, seed "
            f"{args.seed})...",
            file=sys.stderr,
        )
        PartitionScenario(config, obs=obs).run()
    finally:
        if sink is not None:
            sink.close()

    summary = obs.tracer.summary()
    print(f"{summary['events']} trace events "
          f"(digest {summary['digest'][:16]}...)")
    if args.out:
        print(f"wrote {summary['events']} events to {args.out}")
    if args.stats:
        print("\nevents by kind:")
        for kind, count in summary["by_kind"].items():
            print(f"  {kind:<22} {count:>10}")
        dump = obs.metrics.dump()
        print("\ncounters:")
        for name, value in dump["counters"].items():
            print(f"  {name:<28} {value:>10}")
        print(f"\nmetrics digest: {obs.metrics.digest()}")
        print(f"trace digest:   {obs.tracer.digest()}")
        print("\nspan profile (wall time, non-deterministic):")
        print(obs.profile.report())
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from .serve.app import DEFAULT_ALLOWED_KINDS
    from .serve.server import ScenarioServer, ServeConfig

    for name, value in (("--port", args.port), ("--workers", args.workers),
                        ("--exec-threads", args.exec_threads),
                        ("--max-inflight", args.max_inflight),
                        ("--tenant-max-inflight", args.tenant_max_inflight)):
        if value < 0 or (value < 1 and name not in ("--port",)):
            print(f"error: {name} must be >= 1", file=sys.stderr)
            return 2
    if args.tenant_max_queued < 0:
        print("error: --tenant-max-queued must be >= 0", file=sys.stderr)
        return 2
    if args.retry_backoff < 0:
        print("error: --retry-backoff must be >= 0", file=sys.stderr)
        return 2
    if args.cache_max_bytes is not None and args.cache_max_bytes < 0:
        print("error: --cache-max-bytes must be >= 0", file=sys.stderr)
        return 2
    allowed = None
    if args.allow_kind:
        allowed = tuple(dict.fromkeys(
            (*DEFAULT_ALLOWED_KINDS, *args.allow_kind)
        ))
    config = ServeConfig(
        host=args.host,
        port=args.port,
        cache_dir=None if args.no_cache else args.cache_dir,
        db_path=None if args.db.lower() == "none" else args.db,
        workers=args.workers,
        timeout=args.timeout,
        retries=args.retries,
        retry_backoff=args.retry_backoff,
        max_threads=args.exec_threads,
        max_inflight=args.max_inflight,
        tenant_max_inflight=args.tenant_max_inflight,
        tenant_max_queued=args.tenant_max_queued,
        cache_max_bytes=args.cache_max_bytes,
        maintenance_interval=args.maintenance_interval,
        drain_timeout=args.drain_timeout,
        allowed_kinds=allowed,
    )
    try:
        return asyncio.run(ScenarioServer(config).serve_forever())
    except KeyboardInterrupt:  # platforms without signal-handler support
        return 0


def cmd_bench(args) -> int:
    from .perf.bench import bench_from_args

    return bench_from_args(args)


def cmd_fork_lengths(_args) -> int:
    from .scenarios.dos_forks import compare_upgrade_forks

    eth, etc = compare_upgrade_forks()
    print(f"{'fork':>28} {'branch blocks':>14} {'paper':>8}")
    print(f"{eth.config.name:>28} {eth.minority_branch_length:>14d} {'86':>8}")
    print(f"{etc.config.name:>28} {etc.minority_branch_length:>14d} {'3583':>8}")
    return 0


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "observations": cmd_observations,
        "figure": cmd_figure,
        "fork-lengths": cmd_fork_lengths,
        "run-all": cmd_run_all,
        "fault-sweep": cmd_fault_sweep,
        "topology-sweep": cmd_topology_sweep,
        "trace": cmd_trace,
        "serve": cmd_serve,
        "bench": cmd_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
