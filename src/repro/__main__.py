"""Command-line entry point: ``python -m repro``.

Subcommands:

``observations``
    Run a compact reproduction (configurable horizon) and print the
    paper's six-observation scoreboard.

``figure N``
    Regenerate one of the paper's figures (1-5) as a text table, with
    optional CSV output.

``fork-lengths``
    Print the Section 2.1 fork-length comparison (86 vs 3,583 blocks).

The full-fidelity runs live in ``benchmarks/``; this CLI trades horizon
for latency so a first look takes tens of seconds, not minutes.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'Stick a fork in it' (HotNets 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    obs = sub.add_parser(
        "observations", help="run the reproduction and print the scoreboard"
    )
    obs.add_argument("--days", type=int, default=270,
                     help="simulated days after the fork (default 270, the "
                          "paper's window; shorter runs are faster but the "
                          "nine-month observations 3 and 6 need the full "
                          "horizon)")
    obs.add_argument("--seed", type=int, default=2016_07_20)

    fig = sub.add_parser("figure", help="regenerate one figure")
    fig.add_argument("number", type=int, choices=range(1, 6))
    fig.add_argument("--days", type=int, default=150)
    fig.add_argument("--seed", type=int, default=2016_07_20)
    fig.add_argument("--sample-days", type=int, default=7)
    fig.add_argument("--csv", type=str, default=None,
                     help="also write the series to this CSV path")

    sub.add_parser("fork-lengths",
                   help="the Section 2.1 fork-length comparison")
    return parser


def _run_simulation(days: int, seed: int):
    from .sim.engine import ForkSimConfig, ForkSimulation

    print(f"simulating {days} days from the fork (seed {seed})...",
          file=sys.stderr)
    start = time.time()
    result = ForkSimulation(
        ForkSimConfig(days=days, prefork_days=7, seed=seed)
    ).run()
    print(f"done in {time.time() - start:.0f}s", file=sys.stderr)
    return result


def _echo_detector(result):
    from .core import EchoDetector
    from .core.metrics import trace_transactions_per_day
    from .scenarios.replay_attack import ReplayWorkload, ReplayWorkloadConfig

    eth = trace_transactions_per_day(result.eth_trace, result.fork_timestamp)
    etc = trace_transactions_per_day(result.etc_trace, result.fork_timestamp)
    workload = ReplayWorkload(ReplayWorkloadConfig(days=result.config.days))
    records, _ = workload.generate(eth.values, etc.values)
    detector = EchoDetector()
    detector.observe_records(records)
    return detector


def cmd_observations(args) -> int:
    from .core.observations import evaluate_all
    from .scenarios.partition_event import (
        PartitionScenario,
        PartitionScenarioConfig,
    )

    if args.days < 270:
        print(
            f"note: observations 3 and 6 are nine-month claims; at "
            f"{args.days} days they may rightly fail to reproduce",
            file=sys.stderr,
        )
    result = _run_simulation(args.days, args.seed)
    detector = _echo_detector(result)
    print("running the message-level partition scenario...", file=sys.stderr)
    partition = PartitionScenario(PartitionScenarioConfig()).run()

    print()
    for observation in evaluate_all(result, partition, detector):
        print(observation.render())
    return 0


def cmd_figure(args) -> int:
    from .core import figure_1, figure_2, figure_3, figure_4, figure_5

    result = _run_simulation(args.days, args.seed)
    generators = {1: figure_1, 2: figure_2, 3: figure_3, 5: figure_5}
    if args.number == 4:
        figure = figure_4(result, _echo_detector(result))
    else:
        figure = generators[args.number](result)
    print()
    print(figure.render(sample_days=args.sample_days))
    if args.csv:
        rows = figure.write_csv(args.csv)
        print(f"\nwrote {rows} rows to {args.csv}", file=sys.stderr)
    return 0


def cmd_fork_lengths(_args) -> int:
    from .scenarios.dos_forks import compare_upgrade_forks

    eth, etc = compare_upgrade_forks()
    print(f"{'fork':>28} {'branch blocks':>14} {'paper':>8}")
    print(f"{eth.config.name:>28} {eth.minority_branch_length:>14d} {'86':>8}")
    print(f"{etc.config.name:>28} {etc.minority_branch_length:>14d} {'3583':>8}")
    return 0


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "observations": cmd_observations,
        "figure": cmd_figure,
        "fork-lengths": cmd_fork_lengths,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
