"""Struct-of-arrays accounting for the obs-disabled hot paths.

The seed kept per-node telemetry in a plain ``dict`` — every counter
bump on the message hot path paid a string hash, a dict probe, and a
boxed-int store.  :class:`NodeStats` keeps the same counters in
``__slots__`` storage, so the hot sites increment a fixed slot
(``stats.blocks_imported += 1``) while every existing reader keeps
working: the class implements the read side of the mapping protocol
(``stats["blocks_mined"]``, ``stats.get(key, 0)``, iteration,
``dict(stats)``), because the scenarios, the robustness report, and the
tests all read telemetry by key.

This is the "struct" half of struct-of-arrays; the "arrays" are the
nodes — each field lives at the same slot offset in every node, instead
of each node carrying its own hash table of boxed counters.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Tuple

__all__ = ["NodeStats"]


class NodeStats:
    """Fixed-field per-node counters with a dict-compatible read side."""

    __slots__ = (
        "blocks_imported",
        "blocks_mined",
        "txs_admitted",
        "handshakes_refused",
        "disconnects_incompatible",
        "dials_started",
        "dials_timed_out",
        "peers_evicted_unresponsive",
        "peers_banned",
        "head_reannounces",
    )

    def __init__(self) -> None:
        for field in self.__slots__:
            setattr(self, field, 0)

    # -- mapping protocol (read/write by key, for the telemetry readers) --

    def __getitem__(self, key: str) -> int:
        try:
            return getattr(self, key)
        except (AttributeError, TypeError):
            raise KeyError(key) from None

    def __setitem__(self, key: str, value: int) -> None:
        if key not in self.__slots__:
            raise KeyError(key)
        setattr(self, key, value)

    def get(self, key: str, default: Any = None) -> Any:
        if key in self.__slots__:
            return getattr(self, key)
        return default

    def __contains__(self, key: object) -> bool:
        return key in self.__slots__

    def __iter__(self) -> Iterator[str]:
        return iter(self.__slots__)

    def __len__(self) -> int:
        return len(self.__slots__)

    def keys(self) -> Tuple[str, ...]:
        return self.__slots__

    def values(self) -> Tuple[int, ...]:
        return tuple(getattr(self, field) for field in self.__slots__)

    def items(self) -> Tuple[Tuple[str, int], ...]:
        return tuple(
            (field, getattr(self, field)) for field in self.__slots__
        )

    def as_dict(self) -> Dict[str, int]:
        return {field: getattr(self, field) for field in self.__slots__}

    def __eq__(self, other: object) -> bool:
        if isinstance(other, NodeStats):
            return self.items() == other.items()
        if isinstance(other, dict):
            return self.as_dict() == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in self.items())
        return f"NodeStats({body})"
