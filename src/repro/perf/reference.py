"""Seed-state reference implementations, and the switches to them.

Honest speedup numbers need an honest baseline: the code paths the
repository shipped *before* the kernels landed, not a strawman.  Each
optimized layer therefore keeps its original implementation alive —
``BlockProducer.advance_one`` / ``_run_until_reference``,
``PoolLandscape.make_sampler_reference``,
``Simulator._run_until_observed``, and the full ``Network.send`` body —
and this module provides the swaps that route a whole run through them:

* :func:`reference_block_loop` — fork-sim block production on the
  per-block loop with the original sampler closures.
* :func:`reference_event_loop` — message-level scenarios on the
  pre-optimization transport path.
* :class:`ReferenceSimulator` — a drop-in :class:`Simulator` pinned to
  the original event loop; inject via the scenarios'
  ``simulator_factory`` seam.

All three are trajectory-preserving by construction: the reference and
fast arms consume RNG draws in the same order and produce bit-identical
results, which the benchmarks assert by comparing digests.
"""

from __future__ import annotations

import heapq
import itertools
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Callable, Iterator, List, Optional, Tuple

from ..net.network import Network
from ..net.simulator import EventHandle, SimulationError
from ..net.simulator import _callback_label, _INF
from ..sim.blockprod import BlockProducer
from ..sim.population import PoolLandscape

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import Observability

__all__ = [
    "ReferenceSimulator",
    "reference_block_loop",
    "reference_event_loop",
]


class ReferenceSimulator:
    """The seed-state :class:`~repro.net.simulator.Simulator`, verbatim.

    A standalone class (not a subclass) so nothing about the optimized
    engine leaks into the baseline: dict-backed instances (the hot
    paths' ``__slots__`` layout would speed the original loop's
    attribute traffic too), the original per-event enqueue (constructor
    call, separate validation branches, separate counter/tracer tests),
    and the original peek-then-pop ``run_until``.  Duck-type compatible
    with :class:`~repro.net.simulator.Simulator`; inject via the
    scenarios' ``simulator_factory`` seam.  Trajectory-identical to the
    hot paths — only the constant factors differ.  NaN/±inf validation
    is kept (it is a correctness fix, not an optimization), in the
    seed's two-branch form.
    """

    def __init__(
        self,
        start_time: float = 0.0,
        obs: Optional["Observability"] = None,
    ) -> None:
        self.now = start_time
        self._queue: List[Tuple[float, int, EventHandle]] = []
        self._sequence = itertools.count()
        self.events_processed = 0
        self.obs = obs
        self._tracer = obs.tracer if obs is not None else None
        if obs is not None and obs.metrics is not None:
            self._ctr_scheduled = obs.metrics.counter("sim.events.scheduled")
            self._ctr_fired = obs.metrics.counter("sim.events.fired")
            self._ctr_cancelled = obs.metrics.counter("sim.events.cancelled")
        else:
            self._ctr_scheduled = None
            self._ctr_fired = None
            self._ctr_cancelled = None

    def schedule(
        self, delay: float, callback: Callable, *args: Any
    ) -> EventHandle:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        if delay != delay or delay == _INF:
            raise SimulationError(
                f"event delay must be finite, got {delay!r}"
            )
        seq = next(self._sequence)
        handle = EventHandle(self.now + delay, callback, args, seq)
        heapq.heappush(self._queue, (handle.time, seq, handle))
        if self._ctr_scheduled is not None:
            self._ctr_scheduled.inc()
        if self._tracer is not None:
            self._tracer.emit(
                self.now,
                "event.scheduled",
                at=handle.time,
                fn=_callback_label(callback),
                seq=seq,
            )
        return handle

    def schedule_at(
        self, time: float, callback: Callable, *args: Any
    ) -> EventHandle:
        if time != time:
            raise SimulationError(f"event time must be finite, got {time!r}")
        return self.schedule(max(0.0, time - self.now), callback, *args)

    @property
    def pending(self) -> int:
        return len(self._queue)

    def _note_cancelled(self, handle: EventHandle) -> None:
        if self._ctr_cancelled is not None:
            self._ctr_cancelled.inc()
        if self._tracer is not None:
            self._tracer.emit(self.now, "event.cancelled", seq=handle.seq)

    def _note_fired(self, handle: EventHandle) -> None:
        if self._ctr_fired is not None:
            self._ctr_fired.inc()
        if self._tracer is not None:
            self._tracer.emit(
                self.now,
                "event.fired",
                fn=_callback_label(handle.callback),
                seq=handle.seq,
            )

    def step(self) -> bool:
        while self._queue:
            time, _, handle = heapq.heappop(self._queue)
            if handle.cancelled:
                if self.obs is not None:
                    self._note_cancelled(handle)
                continue
            self.now = time
            self.events_processed += 1
            if self.obs is not None:
                self._note_fired(handle)
            handle.callback(*handle.args)
            return True
        return False

    def run_until(
        self, end_time: float, max_events: Optional[int] = None
    ) -> int:
        processed = 0
        while self._queue:
            time, _, handle = self._queue[0]
            if time > end_time:
                break
            if handle.cancelled:
                heapq.heappop(self._queue)
                if self.obs is not None:
                    self._note_cancelled(handle)
                continue
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"exceeded {max_events} events before t={end_time}"
                )
            heapq.heappop(self._queue)
            self.now = time
            self.events_processed += 1
            if self.obs is not None:
                self._note_fired(handle)
            handle.callback(*handle.args)
            processed += 1
        self.now = max(self.now, end_time)
        return processed

    def run_all(self, max_events: int = 10_000_000) -> int:
        processed = 0
        while self._queue:
            if processed >= max_events and any(
                not handle.cancelled for _, _, handle in self._queue
            ):
                raise SimulationError(f"exceeded {max_events} events")
            if not self.step():
                break
            processed += 1
        return processed


@contextmanager
def reference_block_loop() -> Iterator[None]:
    """Run block production on the seed-state code paths.

    Flips :attr:`BlockProducer.use_batch_kernel` off (``run_until``
    falls back to the per-block ``advance_one`` loop) and swaps
    :meth:`PoolLandscape.make_sampler` for the retained
    :meth:`~PoolLandscape.make_sampler_reference`.  Class-level patches,
    restored on exit — don't nest with concurrent fast-path runs in the
    same process.
    """
    saved_kernel = BlockProducer.use_batch_kernel
    saved_sampler = PoolLandscape.make_sampler
    BlockProducer.use_batch_kernel = False
    PoolLandscape.make_sampler = PoolLandscape.make_sampler_reference
    try:
        yield
    finally:
        BlockProducer.use_batch_kernel = saved_kernel
        PoolLandscape.make_sampler = saved_sampler


@contextmanager
def reference_event_loop() -> Iterator[None]:
    """Run the message layer on the seed-state code paths.

    Three class-wide swaps put every message on the original machinery:

    * :attr:`Network.use_fast_path` off — every send walks the full
      fault/trace/metrics branch ladder, and ``send_wave`` degenerates
      to the per-send loop (no delivery-wave kernels, no inline
      sampler, no inline scheduling);
    * :meth:`FullNode.receive` -> :meth:`FullNode.receive_reference` —
      delivery dispatches through the seed ``isinstance`` ladder
      instead of the exact-type table;
    * :meth:`RoutingTable.observe` -> ``observe_reference`` — the
      per-message bucket index is recomputed from the 256-bit digests
      instead of memoized;
    * the four hot block-sync handlers (``_on_new_block``,
      ``_on_blocks``, ``_on_new_block_hashes``, ``_on_get_blocks``) ->
      their retained ``*_reference`` seed bodies — every served or
      announced block pays the full ``_adopt_block``/``import_block``
      call chain and the per-call index lookups the seed paid.

    Combine with :class:`ReferenceSimulator` (via the scenarios'
    ``simulator_factory``) to put the whole event layer on the
    reference loop.  Class-level patches, restored on exit — don't nest
    with concurrent fast-path runs in the same process.
    """
    from ..net.kademlia import RoutingTable
    from ..net.node import FullNode

    saved_fast_path = Network.use_fast_path
    saved_receive = FullNode.receive
    saved_observe = RoutingTable.observe
    saved_handlers = {
        name: getattr(FullNode, name)
        for name in (
            "_on_new_block",
            "_on_blocks",
            "_on_new_block_hashes",
            "_on_get_blocks",
        )
    }
    Network.use_fast_path = False
    FullNode.receive = FullNode.receive_reference
    RoutingTable.observe = RoutingTable.observe_reference
    for name in saved_handlers:
        setattr(FullNode, name, getattr(FullNode, f"{name}_reference"))
    try:
        yield
    finally:
        Network.use_fast_path = saved_fast_path
        FullNode.receive = saved_receive
        RoutingTable.observe = saved_observe
        for name, saved in saved_handlers.items():
            setattr(FullNode, name, saved)
