"""Performance kernels and their regression gate.

The fast paths live where the hot loops are — the batched block
kernel in :meth:`repro.sim.blockprod.BlockProducer.advance_batch`, the
inlined difficulty rules in :func:`repro.chain.difficulty.make_fast_rule`,
the tightened event loop in :meth:`repro.net.simulator.Simulator.run_until`,
the calendar-queue engine in :class:`repro.net.bucketqueue.BucketSimulator`,
and the plain-transport fast path plus delivery-wave kernels in
:class:`repro.net.network.Network`.  This package holds what keeps them
honest:

:mod:`repro.perf.reference`
    The seed-state implementations, kept verbatim, plus context managers
    that swap them in process-wide.  Every benchmark times fast-vs-
    reference on the *same* workload and every differential test asserts
    the two arms produce bit-identical trajectories.

:mod:`repro.perf.bench`
    The benchmark harness behind ``python -m repro bench``: canonical
    ``BENCH_<name>.json`` regression reports with wall times, throughput,
    result digests, and a hard failure when the arms' digests diverge.

:mod:`repro.perf.soa`
    Struct-of-arrays accounting structs used by the hot paths (per-node
    telemetry counters in slot storage instead of per-node dicts).

Re-exports resolve lazily (PEP 562): the hot-path modules (``net``,
``sim``) import :mod:`repro.perf.soa` at class-definition time, and an
eager ``from .bench import ...`` here would close an import cycle back
through the scenario layer.
"""

from typing import TYPE_CHECKING

__all__ = [
    "BENCH_SCHEMA",
    "NodeStats",
    "ReferenceSimulator",
    "add_bench_arguments",
    "bench_from_args",
    "main",
    "reference_block_loop",
    "reference_event_loop",
    "run_bench",
    "validate_report",
]

#: attribute name -> submodule that defines it.
_EXPORTS = {
    "BENCH_SCHEMA": "bench",
    "add_bench_arguments": "bench",
    "bench_from_args": "bench",
    "main": "bench",
    "run_bench": "bench",
    "validate_report": "bench",
    "NodeStats": "soa",
    "ReferenceSimulator": "reference",
    "reference_block_loop": "reference",
    "reference_event_loop": "reference",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


if TYPE_CHECKING:  # pragma: no cover - static-analysis imports only
    from .bench import (  # noqa: F401
        BENCH_SCHEMA,
        add_bench_arguments,
        bench_from_args,
        main,
        run_bench,
        validate_report,
    )
    from .reference import (  # noqa: F401
        ReferenceSimulator,
        reference_block_loop,
        reference_event_loop,
    )
    from .soa import NodeStats  # noqa: F401
