"""Performance kernels and their regression gate.

The fast paths live where the hot loops are — the batched block
kernel in :meth:`repro.sim.blockprod.BlockProducer.advance_batch`, the
inlined difficulty rules in :func:`repro.chain.difficulty.make_fast_rule`,
the tightened event loop in :meth:`repro.net.simulator.Simulator.run_until`,
and the plain-transport fast path in :meth:`repro.net.network.Network.send`.
This package holds what keeps them honest:

:mod:`repro.perf.reference`
    The seed-state implementations, kept verbatim, plus context managers
    that swap them in process-wide.  Every benchmark times fast-vs-
    reference on the *same* workload and every differential test asserts
    the two arms produce bit-identical trajectories.

:mod:`repro.perf.bench`
    The benchmark harness behind ``python -m repro bench``: canonical
    ``BENCH_<name>.json`` regression reports with wall times, throughput,
    result digests, and a hard failure when the arms' digests diverge.
"""

from .bench import (
    BENCH_SCHEMA,
    add_bench_arguments,
    bench_from_args,
    main,
    run_bench,
    validate_report,
)
from .reference import (
    ReferenceSimulator,
    reference_block_loop,
    reference_event_loop,
)

__all__ = [
    "BENCH_SCHEMA",
    "ReferenceSimulator",
    "add_bench_arguments",
    "bench_from_args",
    "main",
    "reference_block_loop",
    "reference_event_loop",
    "run_bench",
    "validate_report",
]
